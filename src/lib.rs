//! # StreamWorks
//!
//! A from-scratch Rust reproduction of **StreamWorks: A System for Dynamic
//! Graph Search** (Choudhury, Holder, Chin, Ray, Beus, Feo — SIGMOD 2013):
//! continuous subgraph-pattern queries over dynamic, multi-relational,
//! timestamped graphs, answered incrementally with the Subgraph Join Tree
//! (SJ-Tree) decomposition algorithm.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `streamworks-graph` | dynamic multi-relational graph store |
//! | [`summarize`] | `streamworks-summarize` | streaming degree/type/triad statistics |
//! | [`query`] | `streamworks-query` | query graphs, DSL, planner, SJ-Tree shape |
//! | [`engine`] | `streamworks-core` | builder-configured engine, query handles & lifecycle, per-query subscriptions, unified ingest |
//! | [`baseline`] | `streamworks-baseline` | repeated-search and naive baselines |
//! | [`workloads`] | `streamworks-workloads` | synthetic cyber / news / random streams |
//! | [`report`] | `streamworks-report` | event tables, map/grid views, DOT export, statistics reports |
//!
//! The most common entry points are re-exported at the top level. The
//! [`architecture`] page maps the paper's components onto the crates and
//! shows the end-to-end data flow (ingest → dispatch → shards → fan-in →
//! sinks); migration tables for APIs removed before 1.0 (the pre-0.2
//! `process*` family, `with_defaults`, the `QueryId`-indexed accessors)
//! live in `docs/MIGRATION.md`.
//!
//! ## The service API in one example
//!
//! The engine is built through a validating builder, queries are registered
//! and come back as generation-tagged [`QueryHandle`]s with a full lifecycle
//! (pause / resume / deregister), each query can carry its own typed
//! subscriptions, and events of any shape — single, slice, iterator — go
//! through the unified `ingest` surface:
//!
//! ```
//! use streamworks::{ContinuousQueryEngine, CountingSink, EdgeEvent, Timestamp};
//!
//! let mut engine = ContinuousQueryEngine::builder()
//!     .prune_every(512)
//!     .build()
//!     .unwrap();
//!
//! let pairs = engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//!
//! // Per-query subscription: this tenant sees only `pairs` matches.
//! let (sink, seen) = CountingSink::new();
//! engine.subscribe(pairs, sink).unwrap();
//!
//! let matches = engine.ingest(&[
//!     EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(10)),
//!     EdgeEvent::new("a2", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(20)),
//! ]).unwrap();
//! assert_eq!(matches.len(), 2); // (a1, a2) and (a2, a1)
//! assert_eq!(seen.get(), 2);
//!
//! // Lifecycle: paused queries cost nothing per event; deregistering frees
//! // all partial-match memory and makes the handle permanently stale.
//! engine.pause(pairs).unwrap();
//! engine.resume(pairs).unwrap();
//! engine.deregister(pairs).unwrap();
//! assert!(engine.metrics(pairs).is_err());
//! ```
//!
//! ## Scaling one hot query across cores
//!
//! `ParallelRunner` shards a *registry* of queries across threads; for the
//! single-hot-query regime the paper targets, [`EngineBuilder::shards`]
//! instead shards *one query's* SJ-Tree match state by join-key hash. The
//! emitted match multiset is identical for every shard count, and a
//! tenant's subscription still observes one stream-ordered feed:
//!
//! ```
//! use streamworks::{ContinuousQueryEngine, EdgeEvent, Timestamp};
//!
//! let mut engine = ContinuousQueryEngine::builder().shards(4).build().unwrap();
//! let pairs = engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//! let matches = engine.ingest(&[
//!     EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(10)),
//!     EdgeEvent::new("a2", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(20)),
//! ]).unwrap();
//! assert_eq!(matches.len(), 2); // exactly what the 1-thread engine reports
//! assert_eq!(engine.shard_metrics(pairs).unwrap().unwrap().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[doc = include_str!("../ARCHITECTURE.md")]
pub mod architecture {}

/// Dynamic multi-relational graph substrate (`streamworks-graph`).
pub mod graph {
    pub use streamworks_graph::*;
}

/// Streaming graph summarization (`streamworks-summarize`).
pub mod summarize {
    pub use streamworks_summarize::*;
}

/// Query model, DSL, selectivity estimation and SJ-Tree planning
/// (`streamworks-query`).
pub mod query {
    pub use streamworks_query::*;
}

/// Incremental SJ-Tree matcher and continuous-query engine (`streamworks-core`).
pub mod engine {
    pub use streamworks_core::*;
}

/// Baseline matchers and independent match verification (`streamworks-baseline`).
pub mod baseline {
    pub use streamworks_baseline::*;
}

/// Synthetic workload generators and canonical paper queries
/// (`streamworks-workloads`).
pub mod workloads {
    pub use streamworks_workloads::*;
}

/// Reporting and export: event tables, map/grid views, match-progression
/// timelines and Graphviz DOT export (`streamworks-report`).
pub mod report {
    pub use streamworks_report::*;
}

pub use streamworks_core::{
    clear_endpoint, failpoint, memory_sink_contents, register_endpoint, reset_memory_sink,
    AdaptiveConfig, AdaptiveReplanner, BufferingSink, CallbackSink, ChannelSink, CollectingSink,
    ContinuousQueryEngine, CountingSink, DeliveryCursor, EngineBuilder, EngineConfig, EngineError,
    EngineMetrics, EventBatch, EventSink, Ingest, MatchBuffer, MatchCounter, MatchEvent,
    MetricsRegistry, ParallelRunner, QueryHandle, QueryId, QueryMetrics, RetryPolicy, ShardFailure,
    ShardFailurePolicy, ShardMetrics, ShardedMatcher, SinkOverflow, SinkSpec, Stage, StageSnapshot,
    SubscriptionHealth, SubscriptionId, TelemetryLevel, TelemetrySnapshot, TraceSpan, Transport,
};
pub use streamworks_graph::{
    AttrValue, Attrs, Direction, Duration, DynamicGraph, EdgeEvent, EdgeId, Timestamp, VertexId,
};
pub use streamworks_query::{
    parse_query, parse_rpq, Planner, Predicate, QueryGraph, QueryGraphBuilder, QueryPlan, RpqQuery,
    SelectivityOrdered, TreeShapeKind,
};
pub use streamworks_summarize::{GraphSummary, SummaryConfig};
