//! # StreamWorks
//!
//! A from-scratch Rust reproduction of **StreamWorks: A System for Dynamic
//! Graph Search** (Choudhury, Holder, Chin, Ray, Beus, Feo — SIGMOD 2013):
//! continuous subgraph-pattern queries over dynamic, multi-relational,
//! timestamped graphs, answered incrementally with the Subgraph Join Tree
//! (SJ-Tree) decomposition algorithm.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`graph`] | `streamworks-graph` | dynamic multi-relational graph store |
//! | [`summarize`] | `streamworks-summarize` | streaming degree/type/triad statistics |
//! | [`query`] | `streamworks-query` | query graphs, DSL, planner, SJ-Tree shape |
//! | [`engine`] | `streamworks-core` | incremental matcher + continuous query engine |
//! | [`baseline`] | `streamworks-baseline` | repeated-search and naive baselines |
//! | [`workloads`] | `streamworks-workloads` | synthetic cyber / news / random streams |
//! | [`report`] | `streamworks-report` | event tables, map/grid views, DOT export, statistics reports |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use streamworks::{ContinuousQueryEngine, EdgeEvent, Timestamp};
//!
//! let mut engine = ContinuousQueryEngine::with_defaults();
//! engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//! engine.process(&EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions",
//!                                Timestamp::from_secs(10)));
//! let matches = engine.process(&EdgeEvent::new("a2", "Article", "rust", "Keyword",
//!                                              "mentions", Timestamp::from_secs(20)));
//! assert_eq!(matches.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Dynamic multi-relational graph substrate (`streamworks-graph`).
pub mod graph {
    pub use streamworks_graph::*;
}

/// Streaming graph summarization (`streamworks-summarize`).
pub mod summarize {
    pub use streamworks_summarize::*;
}

/// Query model, DSL, selectivity estimation and SJ-Tree planning
/// (`streamworks-query`).
pub mod query {
    pub use streamworks_query::*;
}

/// Incremental SJ-Tree matcher and continuous-query engine (`streamworks-core`).
pub mod engine {
    pub use streamworks_core::*;
}

/// Baseline matchers and independent match verification (`streamworks-baseline`).
pub mod baseline {
    pub use streamworks_baseline::*;
}

/// Synthetic workload generators and canonical paper queries
/// (`streamworks-workloads`).
pub mod workloads {
    pub use streamworks_workloads::*;
}

/// Reporting and export: event tables, map/grid views, match-progression
/// timelines and Graphviz DOT export (`streamworks-report`).
pub mod report {
    pub use streamworks_report::*;
}

pub use streamworks_core::{
    AdaptiveConfig, AdaptiveReplanner, ContinuousQueryEngine, EngineConfig, EventSink, MatchEvent,
    ParallelRunner, QueryId, QueryMetrics,
};
pub use streamworks_graph::{
    AttrValue, Attrs, Direction, Duration, DynamicGraph, EdgeEvent, EdgeId, Timestamp, VertexId,
};
pub use streamworks_query::{
    parse_query, Planner, Predicate, QueryGraph, QueryGraphBuilder, QueryPlan, SelectivityOrdered,
    TreeShapeKind,
};
pub use streamworks_summarize::{GraphSummary, SummaryConfig};
