//! The CLI subcommands.
//!
//! Every command is a plain function from parsed [`Options`] to the text it
//! would print, so the behaviour is unit-testable without spawning processes;
//! `main` only dispatches and prints.

use std::fmt;
use std::path::Path;

use crate::options::{OptionError, Options};
use streamworks_core::{
    ContinuousQueryEngine, EngineError, MatchEvent, MetricsRegistry, RetryPolicy,
    ShardFailurePolicy, SinkSpec, TelemetryLevel,
};
use streamworks_query::{
    estimate_shape_cost, BalancedPairs, CostBasedOrdered, DecompositionStrategy, LeftDeepEdgeChain,
    Planner, QueryError, QueryGraph, SelectivityEstimator, SelectivityOrdered, TreeShapeKind,
    TriadWedges,
};
use streamworks_report::{
    query_graph_to_dot, sjtree_to_dot, summary_report, EventTable, EventTableSpec, Table,
};
use streamworks_workloads::{
    read_trace_file, write_trace_file, CitationChainGenerator, CitationConfig, CyberConfig,
    CyberTrafficGenerator, LateralMovementConfig, LateralMovementGenerator, NewsConfig,
    NewsStreamGenerator, RandomConfig, TraceError,
};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Unknown or missing subcommand.
    Usage(String),
    /// Option parsing / validation failed.
    Options(OptionError),
    /// A query file could not be parsed.
    Query(QueryError),
    /// The engine rejected a registration or configuration.
    Engine(EngineError),
    /// A trace could not be read or written.
    Trace(TraceError),
    /// Filesystem access failed.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Options(e) => write!(f, "{e}"),
            CliError::Query(e) => write!(f, "query error: {e}"),
            CliError::Engine(e) => write!(f, "engine error: {e}"),
            CliError::Trace(e) => write!(f, "trace error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<OptionError> for CliError {
    fn from(e: OptionError) -> Self {
        CliError::Options(e)
    }
}
impl From<QueryError> for CliError {
    fn from(e: QueryError) -> Self {
        CliError::Query(e)
    }
}
impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}
impl From<TraceError> for CliError {
    fn from(e: TraceError) -> Self {
        CliError::Trace(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Usage text shown for `--help`, no arguments or unknown subcommands.
pub fn usage() -> String {
    "\
streamworks-cli — continuous graph-pattern search over dynamic graphs

USAGE:
  streamworks-cli <command> [options]

COMMANDS:
  generate   --kind cyber|news|random|lateral|citations --out <trace.jsonl>
             [--edges N] [--seed N]
             Generate a synthetic edge trace (JSON lines). `lateral` plants
             multi-hop intrusion chains (login flow* exploit), `citations`
             plants article citation chains — both targets for RPQ queries.
  plan       --query <q.swq> [--trace <trace.jsonl>] [--strategy <name>]
             [--tree left-deep|balanced] [--dot-query <f>] [--dot-tree <f>]
             Parse a DSL query, plan it (optionally against trace statistics)
             and print the SJ-Tree plan with its cost estimate.
  run        --query <q.swq> [--query <q2.swq> ...] --trace <trace.jsonl>
             [--strategy <name>] [--batch N] [--limit N] [--shards N]
             [--failure-policy fail-fast|degrade] [--channel-capacity N]
             [--no-share] [--csv <out.csv>] [--jsonl <out>]
             [--durable-sink <path.log>] [--retry-policy <spec>]
             Register the queries and replay the trace in batches of N events
             (default 1024), printing the event table and per-query metrics.
             --shards N > 1 spreads each query's match state over N worker
             threads (join-key sharding); results are identical to --shards 1.
             --failure-policy picks what a crashed shard worker does to the
             run: fail-fast (default) aborts with a structured error, degrade
             transplants the dead shard's state onto survivors and keeps
             replaying. --channel-capacity bounds the routing channels
             (backpressure instead of unbounded queues).
             Structurally identical leaf primitives across the registered
             queries share one local search per event (the summary reports
             the dedup ratio and searches saved); --no-share disables the
             shared index. Results are identical either way.
             Query files starting with `RPQ` are registered as windowed
             regular path queries (`RPQ <name> WINDOW <dur> PATH <regex>`)
             instead of fixed-shape SJ-Tree patterns; both kinds can be
             mixed in one run.
             --durable-sink appends every match to a durable log file with
             an acknowledged delivery cursor (one file per query: the path
             as given for a single query, `<path>.q<id>` each when several
             are registered). --retry-policy governs delivery retries:
             `default` (4 attempts, capped exponential backoff), `none`
             (one strike quarantines), or `max,base-ms,cap-ms,timeout-ms`.
             --telemetry samples per-stage latency histograms and trace
             spans (every 64th event; tune with --sample-every N).
             --metrics-json replaces the human summary with the full
             telemetry snapshot as JSON; --metrics-every N prints a compact
             metrics line after every N batches (both imply --telemetry).
  stats      --query <q.swq> [--query <q2.swq> ...] --trace <trace.jsonl>
             [--strategy <name>] [--batch N] [--shards N] [--sample-every N]
             [--json]
             Replay the trace with telemetry enabled and print the unified
             metrics registry in Prometheus text format (or JSON with
             --json): event counters, per-stage latency histograms,
             per-query match counters, shard skew and delivery lag.
  summarize  --trace <trace.jsonl> [--triads N]
             Ingest the trace and print the graph statistics report.

STRATEGIES: selectivity (default), cost, triads, blind, balanced-pairs
"
    .to_owned()
}

fn strategy_by_name(name: &str) -> Result<Box<dyn DecompositionStrategy>, CliError> {
    match name {
        "selectivity" | "selectivity-ordered" => Ok(Box::new(SelectivityOrdered::default())),
        "cost" | "cost-based" => Ok(Box::new(CostBasedOrdered::default())),
        "triads" | "triad-wedges" => Ok(Box::new(TriadWedges::default())),
        "blind" | "edge-chain" | "left-deep-edge-chain" => Ok(Box::new(LeftDeepEdgeChain)),
        "balanced-pairs" => Ok(Box::new(BalancedPairs)),
        other => Err(CliError::Usage(format!(
            "unknown strategy `{other}` (expected selectivity, cost, triads, blind or balanced-pairs)"
        ))),
    }
}

fn tree_kind_by_name(name: &str) -> Result<TreeShapeKind, CliError> {
    match name {
        "left-deep" | "leftdeep" => Ok(TreeShapeKind::LeftDeep),
        "balanced" => Ok(TreeShapeKind::Balanced),
        other => Err(CliError::Usage(format!(
            "unknown tree shape `{other}` (expected left-deep or balanced)"
        ))),
    }
}

/// Parses a `--retry-policy` value: a named preset (`default`, `none`) or
/// four comma-separated numbers `max,base-ms,cap-ms,timeout-ms`.
fn retry_policy_by_spec(spec: &str) -> Result<RetryPolicy, CliError> {
    let invalid = |message: String| {
        CliError::Options(OptionError::Invalid {
            flag: "retry-policy".into(),
            message,
        })
    };
    match spec {
        "default" => Ok(RetryPolicy::default()),
        "none" => Ok(RetryPolicy::none()),
        numbers => {
            let parts: Vec<&str> = numbers.split(',').collect();
            if parts.len() != 4 {
                return Err(invalid(format!(
                    "expected `default`, `none` or `max,base-ms,cap-ms,timeout-ms`, got `{spec}`"
                )));
            }
            let mut n = parts.iter().map(|p| {
                p.trim()
                    .parse::<u64>()
                    .map_err(|_| invalid(format!("`{p}` is not a number in `{spec}`")))
            });
            let max_attempts = u32::try_from(n.next().unwrap()?)
                .map_err(|_| invalid(format!("attempt count out of range in `{spec}`")))?;
            Ok(RetryPolicy {
                max_attempts,
                backoff_base_ms: n.next().unwrap()?,
                backoff_cap_ms: n.next().unwrap()?,
                attempt_timeout_ms: n.next().unwrap()?,
            })
        }
    }
}

fn load_query(path: &str) -> Result<QueryGraph, CliError> {
    let text = std::fs::read_to_string(Path::new(path))?;
    Ok(streamworks_query::parse_query(&text)?)
}

/// `true` if the query text is in the RPQ dialect (`RPQ <name> ... PATH ...`)
/// rather than the fixed-shape `QUERY ... MATCH ...` DSL.
fn is_rpq_text(text: &str) -> bool {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| l.starts_with("RPQ"))
}

/// Ingests a trace into a fresh engine (no queries registered) so its summary
/// and type interner can back statistics-driven planning.
fn engine_from_trace(path: &str) -> Result<ContinuousQueryEngine, CliError> {
    let events = read_trace_file(path)?;
    let mut engine = ContinuousQueryEngine::builder().build()?;
    engine.ingest(&events)?;
    Ok(engine)
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

/// `generate`: write a synthetic trace.
pub fn cmd_generate(opts: &Options) -> Result<String, CliError> {
    let kind = opts.value("kind").unwrap_or("cyber");
    let out = opts.require("out")?;
    let edges: usize = opts.parse_or("edges", 20_000)?;
    let seed: u64 = opts.parse_or("seed", 7)?;
    let events = match kind {
        "cyber" => {
            let config = CyberConfig {
                hosts: (edges / 40).max(16),
                background_edges: edges,
                seed,
                ..Default::default()
            };
            CyberTrafficGenerator::new(config).generate().events
        }
        "news" => {
            let config = NewsConfig {
                articles: (edges / 5).max(10),
                seed,
                ..Default::default()
            };
            NewsStreamGenerator::new(config).generate().events
        }
        "random" => streamworks_workloads::uniform_stream(&RandomConfig {
            edges,
            vertices: (edges / 10).max(10),
            seed,
            ..Default::default()
        }),
        "lateral" => {
            let config = LateralMovementConfig {
                hosts: (edges / 40).max(16),
                background_edges: edges,
                seed,
                ..Default::default()
            };
            LateralMovementGenerator::new(config).generate().events
        }
        "citations" => {
            let config = CitationConfig {
                articles: (edges / 10).max(10),
                background_edges: edges,
                seed,
                ..Default::default()
            };
            CitationChainGenerator::new(config).generate().events
        }
        other => {
            return Err(CliError::Usage(format!(
            "unknown workload kind `{other}` (expected cyber, news, random, lateral or citations)"
        )))
        }
    };
    let written = write_trace_file(out, events.iter())?;
    Ok(format!("wrote {written} events ({kind}) to {out}\n"))
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

/// `plan`: show the SJ-Tree plan and cost estimate for a DSL query.
pub fn cmd_plan(opts: &Options) -> Result<String, CliError> {
    let query = load_query(opts.require("query")?)?;
    let strategy = strategy_by_name(opts.value("strategy").unwrap_or("selectivity"))?;
    let tree_kind = tree_kind_by_name(opts.value("tree").unwrap_or("left-deep"))?;

    let mut out = String::new();
    let engine = match opts.value("trace") {
        Some(path) => Some(engine_from_trace(path)?),
        None => None,
    };
    let (plan, cost_text) = match &engine {
        Some(engine) => {
            let planner = Planner::new()
                .with_statistics(engine.summary(), engine.graph())
                .tree_kind(tree_kind);
            let plan = planner.plan_with(query, strategy.as_ref())?;
            let estimator = SelectivityEstimator::with_summary(engine.summary(), engine.graph());
            let cost = estimate_shape_cost(&plan.query, &estimator, &plan.shape);
            let rendered = cost.render(&plan.query);
            (plan, rendered)
        }
        None => {
            let planner = Planner::new().tree_kind(tree_kind);
            let plan = planner.plan_with(query, strategy.as_ref())?;
            let estimator = SelectivityEstimator::without_summary();
            let cost = estimate_shape_cost(&plan.query, &estimator, &plan.shape);
            let rendered = cost.render(&plan.query);
            (plan, rendered)
        }
    };

    out.push_str(&plan.explain());
    out.push_str("\ncost estimate");
    out.push_str(if engine.is_some() {
        " (from trace statistics):\n"
    } else {
        " (structural fallback, no statistics):\n"
    });
    out.push_str(&cost_text);

    if let Some(path) = opts.value("dot-query") {
        std::fs::write(path, query_graph_to_dot(&plan.query))?;
        out.push_str(&format!("wrote query DOT to {path}\n"));
    }
    if let Some(path) = opts.value("dot-tree") {
        std::fs::write(path, sjtree_to_dot(&plan.query, &plan.shape))?;
        out.push_str(&format!("wrote SJ-Tree DOT to {path}\n"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

/// `run`: register queries and replay a trace through the engine, ingesting
/// at batch granularity (`--batch`, default 1024 events per ingest call).
pub fn cmd_run(opts: &Options) -> Result<String, CliError> {
    let query_paths = opts.values("query");
    if query_paths.is_empty() {
        return Err(CliError::Options(OptionError::MissingFlag("query".into())));
    }
    let trace = opts.require("trace")?;
    let strategy = strategy_by_name(opts.value("strategy").unwrap_or("selectivity"))?;
    let tree_kind = tree_kind_by_name(opts.value("tree").unwrap_or("left-deep"))?;
    let limit: usize = opts.parse_or("limit", 50)?;
    let batch: usize = opts.parse_or("batch", 1024)?;
    if batch == 0 {
        return Err(CliError::Options(OptionError::Invalid {
            flag: "batch".into(),
            message: "batch size must be positive".into(),
        }));
    }
    let shards: usize = opts.parse_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Options(OptionError::Invalid {
            flag: "shards".into(),
            message: "shard count must be positive (1 = single-threaded matching)".into(),
        }));
    }
    let policy = match opts.value("failure-policy").unwrap_or("fail-fast") {
        "fail-fast" | "failfast" => ShardFailurePolicy::FailFast,
        "degrade" => ShardFailurePolicy::Degrade,
        other => {
            return Err(CliError::Options(OptionError::Invalid {
                flag: "failure-policy".into(),
                message: format!("unknown policy `{other}` (expected fail-fast or degrade)"),
            }))
        }
    };
    let channel_capacity: usize = opts.parse_or("channel-capacity", 1024)?;
    let retry_policy = match opts.value("retry-policy") {
        Some(spec) => retry_policy_by_spec(spec)?,
        None => RetryPolicy::default(),
    };
    let metrics_every: usize = opts.parse_or("metrics-every", 0)?;
    let telemetry_on = opts.has("telemetry") || opts.has("metrics-json") || metrics_every > 0;
    let sample_every: u64 = opts.parse_or("sample-every", 64)?;

    let mut engine = ContinuousQueryEngine::builder()
        .shards(shards)
        .shard_failure_policy(policy)
        .channel_capacity(channel_capacity)
        .shared_matching(!opts.has("no-share"))
        .retry_policy(retry_policy)
        .telemetry_level(if telemetry_on {
            TelemetryLevel::Sampled
        } else {
            TelemetryLevel::Off
        })
        .telemetry_sample_every(sample_every)
        .build()?;
    let mut spec = EventTableSpec::standard();
    let mut handles = Vec::new();
    for path in query_paths {
        let text = std::fs::read_to_string(Path::new(path))?;
        let (handle, name) = if is_rpq_text(&text) {
            let rpq = streamworks_query::parse_rpq(&text)?;
            let name = rpq.name().to_owned();
            (engine.register_rpq(rpq), name)
        } else {
            let query = streamworks_query::parse_query(&text)?;
            let name = query.name().to_owned();
            let handle = engine.register_query_with(query, strategy.as_ref(), tree_kind)?;
            (handle, name)
        };
        handles.push(handle);
        spec = spec.label(handle.id(), name);
    }

    // One delivery log per query: a shared file would race the per-cursor
    // truncation each subscription performs on (re)connect.
    let mut durable_logs = Vec::new();
    if let Some(base) = opts.value("durable-sink") {
        for handle in &handles {
            let path = if handles.len() == 1 {
                base.to_owned()
            } else {
                format!("{base}.q{}", handle.id().0)
            };
            engine.subscribe_durable(*handle, SinkSpec::LogFile { path: path.clone() })?;
            durable_logs.push(path);
        }
    }

    let events = read_trace_file(trace)?;
    let mut matches: Vec<MatchEvent> = Vec::new();
    let mut degraded_shards: Vec<String> = Vec::new();
    let mut periodic: Vec<String> = Vec::new();
    for (batch_no, chunk) in events.chunks(batch).enumerate() {
        match engine.ingest(chunk) {
            Ok(batch_matches) => matches.extend(batch_matches),
            Err(EngineError::ShardFailed {
                shard,
                message,
                degraded: true,
            }) => {
                // Under --failure-policy degrade the run keeps going; the
                // faulted batch's matches were still delivered to any
                // subscribed sinks, only this return value is forfeited.
                degraded_shards.push(format!("shard {shard}: {message}"));
            }
            Err(e) => return Err(e.into()),
        }
        if metrics_every > 0 && (batch_no + 1) % metrics_every == 0 {
            periodic.push(metrics_line(batch_no + 1, &engine.telemetry_snapshot()));
        }
    }
    // Final delivery pass: give every durable subscriber a fresh attempt so
    // the run does not exit with acknowledgeable matches still in an outbox.
    let undelivered = engine.flush_deliveries();

    let table = EventTable::build(&spec, &matches);
    let mut out = String::new();
    out.push_str(&format!(
        "replayed {} events in batches of {}{}, {} matches across {} queries\n\n",
        events.len(),
        batch,
        if shards > 1 {
            format!(" on {shards} shards per query")
        } else {
            String::new()
        },
        matches.len(),
        engine.query_count()
    ));
    for line in &periodic {
        out.push_str(line);
        out.push('\n');
    }
    if !periodic.is_empty() {
        out.push('\n');
    }
    let shown = EventTable::build(&spec, &matches[..matches.len().min(limit)]);
    out.push_str(&shown.render());
    if matches.len() > limit {
        out.push_str(&format!("... ({} more rows)\n", matches.len() - limit));
    }

    out.push_str("\nper-query metrics:\n");
    let mut metrics_table = Table::new([
        "query",
        "edges",
        "partial_inserted",
        "partial_live",
        "joins",
        "complete",
        "spills",
    ]);
    let all_metrics = engine.all_metrics();
    let mut spilled: Vec<String> = Vec::new();
    for (handle, m) in &all_metrics {
        let name = engine
            .plan(*handle)
            .map(|p| p.query.name().to_owned())
            .or_else(|_| engine.rpq_query(*handle).map(|q| q.name().to_owned()))
            .unwrap_or_else(|_| format!("q{}", handle.id().0));
        if m.binding_spills > 0 {
            spilled.push(name.clone());
        }
        metrics_table.add_row([
            name,
            m.edges_processed.to_string(),
            m.partial_matches_inserted.to_string(),
            m.partial_matches_live.to_string(),
            m.joins_attempted.to_string(),
            m.complete_matches.to_string(),
            m.binding_spills.to_string(),
        ]);
    }
    out.push_str(&metrics_table.render());
    // Routing balance per sharded query: items routed to the busiest shard
    // over the per-shard mean. 1.0 is perfectly even; past 2.0 one worker is
    // doing more than double its share and the join keys hash poorly.
    if shards > 1 {
        for set in &engine.telemetry_snapshot().shards {
            out.push_str(&format!(
                "shard skew: {} = {:.2} (max/mean items routed){}\n",
                set.query,
                set.skew,
                if set.skew > 2.0 { "  [imbalanced]" } else { "" },
            ));
        }
    }
    let em = engine.engine_metrics();
    if em.subscribed_primitives > 0 {
        out.push_str(&format!(
            "shared primitive index: {} distinct / {} subscribed ({:.1}x dedup), \
             {} searches run, {} saved\n",
            em.distinct_primitives,
            em.subscribed_primitives,
            em.dedup_ratio(),
            em.shared_searches_run,
            em.searches_saved,
        ));
    }
    if !durable_logs.is_empty() {
        out.push_str(&format!(
            "durable delivery: {} attempts, {} retries, {} recoveries, \
             {} unacknowledged (cursor lag)\n",
            em.delivery_attempts, em.delivery_retries, em.delivery_recoveries, em.cursor_lag,
        ));
        for path in &durable_logs {
            out.push_str(&format!("  delivery log: {path}\n"));
        }
        if undelivered > 0 {
            out.push_str(&format!(
                "warning: {undelivered} match(es) remain undelivered (sink degraded \
                 or quarantined); rerun resumes from each cursor\n"
            ));
        }
    }
    if !degraded_shards.is_empty() {
        out.push_str(&format!(
            "warning: {} shard worker(s) failed and were quarantined (state \
             transplanted onto survivors):\n",
            degraded_shards.len()
        ));
        for line in &degraded_shards {
            out.push_str(&format!("  {line}\n"));
        }
    }
    if !spilled.is_empty() {
        out.push_str(&format!(
            "note: {} exceeded the inline hot-path capacities (>8 vertices or >6 edges); \
             each of their partial matches heap-allocates\n",
            spilled.join(", ")
        ));
    }

    if let Some(path) = opts.value("csv") {
        std::fs::write(path, table.to_csv())?;
        out.push_str(&format!("wrote event CSV to {path}\n"));
    }
    if let Some(path) = opts.value("jsonl") {
        std::fs::write(path, table.to_json_lines())?;
        out.push_str(&format!("wrote event JSON lines to {path}\n"));
    }
    if opts.has("metrics-json") {
        // Machine mode: the snapshot document replaces the human summary
        // (side effects above — csv/jsonl/durable logs — still happen).
        return Ok(format!(
            "{}\n",
            MetricsRegistry::gather(&engine).to_json_pretty()
        ));
    }
    Ok(out)
}

/// One compact progress line for `run --metrics-every N`: cumulative event
/// counters plus the sampled p50 of every stage that has observations.
fn metrics_line(batch_no: usize, snap: &streamworks_core::TelemetrySnapshot) -> String {
    let mut line = format!(
        "[metrics @ batch {batch_no}] ingested={} emitted={}",
        snap.events_ingested, snap.events_emitted
    );
    for stage in &snap.stages {
        if stage.count > 0 {
            line.push_str(&format!(" {}.p50={}ns", stage.name, stage.p50_ns));
        }
    }
    line
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

/// `stats`: replay a trace with telemetry forced on and print the unified
/// metrics registry — Prometheus text by default, JSON with `--json`.
pub fn cmd_stats(opts: &Options) -> Result<String, CliError> {
    let query_paths = opts.values("query");
    if query_paths.is_empty() {
        return Err(CliError::Options(OptionError::MissingFlag("query".into())));
    }
    let trace = opts.require("trace")?;
    let strategy = strategy_by_name(opts.value("strategy").unwrap_or("selectivity"))?;
    let tree_kind = tree_kind_by_name(opts.value("tree").unwrap_or("left-deep"))?;
    let batch: usize = opts.parse_or("batch", 1024)?;
    if batch == 0 {
        return Err(CliError::Options(OptionError::Invalid {
            flag: "batch".into(),
            message: "batch size must be positive".into(),
        }));
    }
    let shards: usize = opts.parse_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Options(OptionError::Invalid {
            flag: "shards".into(),
            message: "shard count must be positive (1 = single-threaded matching)".into(),
        }));
    }
    let sample_every: u64 = opts.parse_or("sample-every", 64)?;

    let mut engine = ContinuousQueryEngine::builder()
        .shards(shards)
        .telemetry_level(TelemetryLevel::Sampled)
        .telemetry_sample_every(sample_every)
        .build()?;
    for path in query_paths {
        let text = std::fs::read_to_string(Path::new(path))?;
        if is_rpq_text(&text) {
            engine.register_rpq(streamworks_query::parse_rpq(&text)?);
        } else {
            let query = streamworks_query::parse_query(&text)?;
            engine.register_query_with(query, strategy.as_ref(), tree_kind)?;
        }
    }
    let events = read_trace_file(trace)?;
    for chunk in events.chunks(batch) {
        engine.ingest(chunk)?;
    }
    engine.flush_deliveries();

    let snapshot = MetricsRegistry::gather(&engine);
    Ok(if opts.has("json") {
        format!("{}\n", snapshot.to_json_pretty())
    } else {
        snapshot.to_prometheus()
    })
}

// ---------------------------------------------------------------------------
// summarize
// ---------------------------------------------------------------------------

/// `summarize`: print the statistics report for a trace.
pub fn cmd_summarize(opts: &Options) -> Result<String, CliError> {
    let trace = opts.require("trace")?;
    let triads: usize = opts.parse_or("triads", 10)?;
    let engine = engine_from_trace(trace)?;
    Ok(summary_report(engine.summary(), engine.graph(), triads))
}

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

/// Dispatches a full argument vector (excluding the binary name).
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(usage()));
    };
    if command == "--help" || command == "help" || command == "-h" {
        return Ok(usage());
    }
    let opts = Options::parse(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&opts),
        "plan" => cmd_plan(&opts),
        "run" => cmd_run(&opts),
        "stats" => cmd_stats(&opts),
        "summarize" => cmd_summarize(&opts),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A scratch directory unique to this test process.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("streamworks-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_query(name: &str, text: &str) -> String {
        let path = scratch(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    const PAIR_QUERY: &str = "QUERY pair WINDOW 1h\n\
         MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)\n";

    #[test]
    fn usage_lists_all_commands() {
        let text = usage();
        for cmd in ["generate", "plan", "run", "stats", "summarize"] {
            assert!(text.contains(cmd));
        }
        assert_eq!(dispatch(&args(&["help"])).unwrap(), text);
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_then_summarize_round_trip() {
        let trace = scratch("news.jsonl").to_string_lossy().into_owned();
        let out = dispatch(&args(&[
            "generate", "--kind", "news", "--out", &trace, "--edges", "2000",
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        assert!(std::fs::metadata(&trace).unwrap().len() > 0);

        let report = dispatch(&args(&["summarize", "--trace", &trace])).unwrap();
        assert!(report.contains("type distribution"));
        assert!(report.contains("Article"));
    }

    #[test]
    fn plan_without_statistics_and_with_dot_export() {
        let query = write_query("pair.swq", PAIR_QUERY);
        let dot_tree = scratch("tree.dot").to_string_lossy().into_owned();
        let out = dispatch(&args(&[
            "plan",
            "--query",
            &query,
            "--strategy",
            "cost",
            "--dot-tree",
            &dot_tree,
        ]))
        .unwrap();
        assert!(out.contains("plan for query `pair`"));
        assert!(out.contains("cost-based"));
        assert!(out.contains("structural fallback"));
        let dot = std::fs::read_to_string(&dot_tree).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn run_detects_matches_and_writes_csv() {
        // A tiny hand-written trace with two articles sharing a keyword.
        let trace_path = scratch("tiny.jsonl");
        let events = [
            streamworks_graph::EdgeEvent::new(
                "a1",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(1),
            ),
            streamworks_graph::EdgeEvent::new(
                "a2",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(2),
            ),
        ];
        streamworks_workloads::write_trace_file(&trace_path, events.iter()).unwrap();
        let trace = trace_path.to_string_lossy().into_owned();
        let query = write_query("pair2.swq", PAIR_QUERY);
        let csv = scratch("events.csv").to_string_lossy().into_owned();

        let out = dispatch(&args(&[
            "run", "--query", &query, "--trace", &trace, "--csv", &csv, "--limit", "10",
        ]))
        .unwrap();
        assert!(out.contains("2 matches"), "output: {out}");
        assert!(out.contains("per-query metrics"));
        assert!(out.contains("pair"));
        assert!(
            out.contains("spills"),
            "metrics table surfaces spill column"
        );
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(csv_text.lines().count(), 3);

        // Replaying at a different batch granularity reports the same matches.
        let small_batches = dispatch(&args(&[
            "run", "--query", &query, "--trace", &trace, "--batch", "1",
        ]))
        .unwrap();
        assert!(
            small_batches.contains("2 matches"),
            "output: {small_batches}"
        );
        assert!(small_batches.contains("batches of 1"));
        // A batch size of zero is rejected up front.
        assert!(dispatch(&args(&[
            "run", "--query", &query, "--trace", &trace, "--batch", "0",
        ]))
        .is_err());

        // Sharded matching reports the same matches and says so.
        let sharded = dispatch(&args(&[
            "run", "--query", &query, "--trace", &trace, "--shards", "2",
        ]))
        .unwrap();
        assert!(sharded.contains("2 matches"), "output: {sharded}");
        assert!(sharded.contains("on 2 shards per query"));

        // Registering the same query twice shares its primitives: the
        // summary surfaces the dedup ratio and searches saved; --no-share
        // reports the same matches with the index disabled.
        let query2 = write_query(
            "pair3.swq",
            "QUERY pair_b WINDOW 1h\n\
             MATCH (x1:Article)-[:mentions]->(w:Keyword), (x2:Article)-[:mentions]->(w)\n",
        );
        let shared = dispatch(&args(&[
            "run", "--query", &query, "--query", &query2, "--trace", &trace,
        ]))
        .unwrap();
        assert!(shared.contains("4 matches"), "output: {shared}");
        assert!(
            shared.contains("shared primitive index: 1 distinct / 2 subscribed (2.0x dedup)"),
            "output: {shared}"
        );
        assert!(shared.contains("saved"), "output: {shared}");
        let unshared = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--query",
            &query2,
            "--trace",
            &trace,
            "--no-share",
        ]))
        .unwrap();
        assert!(unshared.contains("4 matches"), "output: {unshared}");
        assert!(
            !unshared.contains("shared primitive index"),
            "output: {unshared}"
        );
        // A shard count of zero is rejected up front.
        assert!(dispatch(&args(&[
            "run", "--query", &query, "--trace", &trace, "--shards", "0",
        ]))
        .is_err());
    }

    #[test]
    fn run_accepts_fault_containment_flags() {
        let trace_path = scratch("fault_flags.jsonl");
        let events = [
            streamworks_graph::EdgeEvent::new(
                "a1",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(1),
            ),
            streamworks_graph::EdgeEvent::new(
                "a2",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(2),
            ),
        ];
        streamworks_workloads::write_trace_file(&trace_path, events.iter()).unwrap();
        let trace = trace_path.to_string_lossy().into_owned();
        let query = write_query("pair_faults.swq", PAIR_QUERY);

        // Both policies and a bounded channel replay cleanly (no fault is
        // injected here; the chaos suite covers actual shard death).
        for policy in ["fail-fast", "degrade"] {
            let out = dispatch(&args(&[
                "run",
                "--query",
                &query,
                "--trace",
                &trace,
                "--shards",
                "2",
                "--failure-policy",
                policy,
                "--channel-capacity",
                "8",
            ]))
            .unwrap();
            assert!(out.contains("2 matches"), "{policy}: {out}");
            assert!(!out.contains("warning"), "{policy}: {out}");
        }

        // Unknown policy and a zero channel capacity are rejected up front.
        assert!(dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--failure-policy",
            "mystery",
        ]))
        .is_err());
        assert!(dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--channel-capacity",
            "0",
        ]))
        .is_err());
    }

    #[test]
    fn run_accepts_durable_delivery_flags() {
        let trace_path = scratch("durable_flags.jsonl");
        let events = [
            streamworks_graph::EdgeEvent::new(
                "a1",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(1),
            ),
            streamworks_graph::EdgeEvent::new(
                "a2",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(2),
            ),
        ];
        streamworks_workloads::write_trace_file(&trace_path, events.iter()).unwrap();
        let trace = trace_path.to_string_lossy().into_owned();
        let query = write_query("pair_durable.swq", PAIR_QUERY);
        let log = scratch("durable.log").to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&log);

        let out = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--durable-sink",
            &log,
            "--retry-policy",
            "5,10,100,500",
        ]))
        .unwrap();
        assert!(out.contains("2 matches"), "output: {out}");
        assert!(
            out.contains("durable delivery: 2 attempts, 0 retries, 0 recoveries, 0 unacknowledged"),
            "output: {out}"
        );
        assert!(out.contains(&log), "output: {out}");
        assert!(!out.contains("undelivered"), "output: {out}");
        let written = std::fs::read_to_string(&log).unwrap();
        assert_eq!(written.lines().count(), 2, "one log line per match");

        // Replaying into the same log resumes past the cursor of a *fresh*
        // subscription (0), i.e. truncates and rewrites: still 2 lines.
        dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--durable-sink",
            &log,
        ]))
        .unwrap();
        assert_eq!(std::fs::read_to_string(&log).unwrap().lines().count(), 2);

        // The named presets parse; malformed or invalid specs are rejected.
        for preset in ["default", "none"] {
            dispatch(&args(&[
                "run",
                "--query",
                &query,
                "--trace",
                &trace,
                "--retry-policy",
                preset,
            ]))
            .unwrap();
        }
        for bad in ["mystery", "1,2", "a,b,c,d", "0,0,0,1000", "4,50,10,1000"] {
            assert!(
                dispatch(&args(&[
                    "run",
                    "--query",
                    &query,
                    "--trace",
                    &trace,
                    "--retry-policy",
                    bad,
                ]))
                .is_err(),
                "`{bad}` must be rejected"
            );
        }

        // Several queries fan out into per-query logs.
        let query2 = write_query(
            "pair_durable_b.swq",
            "QUERY pair_b WINDOW 1h\n\
             MATCH (x1:Article)-[:mentions]->(w:Keyword), (x2:Article)-[:mentions]->(w)\n",
        );
        let multi = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--query",
            &query2,
            "--trace",
            &trace,
            "--durable-sink",
            &log,
        ]))
        .unwrap();
        assert!(multi.contains("4 matches"), "output: {multi}");
        for id in [0, 1] {
            let per_query = format!("{log}.q{id}");
            assert!(multi.contains(&per_query), "output: {multi}");
            assert_eq!(
                std::fs::read_to_string(&per_query).unwrap().lines().count(),
                2,
                "each query delivers its own 2 matches"
            );
        }
    }

    #[test]
    fn run_registers_rpq_queries_from_the_rpq_dialect() {
        // A generated lateral-movement trace plants three intrusion chains
        // (0, 2 and 4 pivot flows); the RPQ detects each exactly once.
        let trace = scratch("lateral.jsonl").to_string_lossy().into_owned();
        let gen = dispatch(&args(&[
            "generate", "--kind", "lateral", "--out", &trace, "--edges", "400",
        ]))
        .unwrap();
        assert!(gen.contains("wrote"), "output: {gen}");

        let rpq = write_query(
            "lateral.rpq",
            "# multi-hop intrusion\nRPQ lateral WINDOW 1h PATH login flow* exploit\n",
        );
        let out = dispatch(&args(&["run", "--query", &rpq, "--trace", &trace])).unwrap();
        assert!(out.contains("3 matches"), "output: {out}");
        assert!(out.contains("lateral"), "output: {out}");

        // SJ-Tree and RPQ queries mix in one run.
        let trace2 = scratch("tiny_mix.jsonl");
        let events = [
            streamworks_graph::EdgeEvent::new(
                "a1",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(1),
            ),
            streamworks_graph::EdgeEvent::new(
                "a2",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                streamworks_graph::Timestamp::from_secs(2),
            ),
        ];
        streamworks_workloads::write_trace_file(&trace2, events.iter()).unwrap();
        let trace2 = trace2.to_string_lossy().into_owned();
        let sj = write_query("pair_mix.swq", PAIR_QUERY);
        let chain = write_query("chain_mix.rpq", "RPQ chain WINDOW 1h PATH mentions\n");
        let mixed = dispatch(&args(&[
            "run", "--query", &sj, "--query", &chain, "--trace", &trace2,
        ]))
        .unwrap();
        // 2 SJ matches (the symmetric pair) + 2 RPQ matches (one per edge).
        assert!(mixed.contains("4 matches"), "output: {mixed}");
        assert!(mixed.contains("pair"), "output: {mixed}");
        assert!(mixed.contains("chain"), "output: {mixed}");

        // A malformed RPQ file surfaces as a query error.
        let bad = write_query("bad.rpq", "RPQ broken WINDOW 1h PATH (((\n");
        assert!(dispatch(&args(&["run", "--query", &bad, "--trace", &trace2])).is_err());
    }

    #[test]
    fn run_telemetry_flags_and_skew_line() {
        let trace = scratch("tel_news.jsonl").to_string_lossy().into_owned();
        dispatch(&args(&[
            "generate", "--kind", "news", "--out", &trace, "--edges", "2000",
        ]))
        .unwrap();
        let query = write_query("pair_tel.swq", PAIR_QUERY);

        // A sharded run reports routing balance whether or not latency
        // sampling is on; --telemetry adds no visible output of its own.
        let out = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--shards",
            "2",
            "--telemetry",
            "--sample-every",
            "1",
        ]))
        .unwrap();
        assert!(
            out.contains("shard skew: pair = "),
            "skew line present: {out}"
        );
        assert!(
            out.contains("(max/mean items routed)"),
            "skew unit present: {out}"
        );

        // --metrics-every N emits a compact progress line per N batches.
        let periodic = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--batch",
            "500",
            "--metrics-every",
            "2",
            "--sample-every",
            "1",
        ]))
        .unwrap();
        assert!(
            periodic.contains("[metrics @ batch 2]"),
            "periodic line present: {periodic}"
        );
        assert!(periodic.contains(".p50="), "stage p50s shown: {periodic}");
    }

    #[test]
    fn run_metrics_json_parses_and_stats_exports_prometheus() {
        let trace = scratch("stats_news.jsonl").to_string_lossy().into_owned();
        dispatch(&args(&[
            "generate", "--kind", "news", "--out", &trace, "--edges", "2000",
        ]))
        .unwrap();
        let query = write_query("pair_stats.swq", PAIR_QUERY);

        // --metrics-json replaces the summary with a parseable snapshot.
        let json = dispatch(&args(&[
            "run",
            "--query",
            &query,
            "--trace",
            &trace,
            "--metrics-json",
            "--sample-every",
            "1",
        ]))
        .unwrap();
        let doc = serde_json::parse(&json).unwrap();
        assert_eq!(
            doc.get_field("level").and_then(|v| v.as_str()),
            Some("sampled")
        );
        let stages = doc.get_field("stages").and_then(|v| v.as_array()).unwrap();
        assert!(!stages.is_empty(), "stages serialized");
        let sampled: u64 = stages
            .iter()
            .map(|s| s.get_field("count").and_then(|c| c.as_u64()).unwrap())
            .sum();
        assert!(sampled > 0, "at least one stage recorded observations");
        assert!(
            doc.get_field("queries")
                .and_then(|v| v.as_array())
                .is_some_and(|q| !q.is_empty()),
            "query metrics embedded"
        );

        // stats prints Prometheus text format by default, JSON with --json.
        let prom = dispatch(&args(&[
            "stats",
            "--query",
            &query,
            "--trace",
            &trace,
            "--shards",
            "2",
            "--sample-every",
            "1",
        ]))
        .unwrap();
        for series in [
            "# TYPE streamworks_stage_latency_ns histogram",
            "streamworks_events_ingested_total ",
            "streamworks_query_complete_matches_total",
            "streamworks_shard_skew",
        ] {
            assert!(prom.contains(series), "`{series}` in: {prom}");
        }
        let stats_json = dispatch(&args(&[
            "stats", "--query", &query, "--trace", &trace, "--json",
        ]))
        .unwrap();
        let doc = serde_json::parse(&stats_json).unwrap();
        assert!(
            doc.get_field("events_ingested")
                .and_then(|v| v.as_u64())
                .is_some_and(|n| n > 0),
            "events_ingested counted: {stats_json}"
        );

        // stats without queries is rejected like run.
        assert!(dispatch(&args(&["stats", "--trace", &trace])).is_err());
    }

    #[test]
    fn invalid_inputs_surface_as_errors() {
        assert!(dispatch(&args(&["plan"])).is_err());
        assert!(dispatch(&args(&["run", "--trace", "missing.jsonl"])).is_err());
        assert!(dispatch(&args(&["generate", "--kind", "nope", "--out", "x.jsonl"])).is_err());
        let bad_query = write_query("bad.swq", "MATCH nonsense");
        assert!(dispatch(&args(&["plan", "--query", &bad_query])).is_err());
        let unknown_strategy = write_query("ok.swq", PAIR_QUERY);
        assert!(dispatch(&args(&[
            "plan",
            "--query",
            &unknown_strategy,
            "--strategy",
            "mystery"
        ]))
        .is_err());
    }
}
