//! Minimal command-line option parsing.
//!
//! The CLI keeps its dependency footprint to the workspace crates, so options
//! are parsed by hand: a subcommand, then any mix of `--flag value`,
//! `--switch` and positional arguments. Repeated flags accumulate (used for
//! `--query` so several queries can be registered in one run).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line options for one subcommand invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    /// Values per `--flag`; switches store an empty vector entry.
    flags: BTreeMap<String, Vec<String>>,
    /// Positional (non-flag) arguments in order.
    positional: Vec<String>,
}

/// Errors raised while parsing or interpreting options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptionError {
    /// A `--flag` that requires a value appeared last without one.
    MissingValue(String),
    /// A required flag was not supplied.
    MissingFlag(String),
    /// A flag value could not be interpreted.
    Invalid {
        /// The flag concerned.
        flag: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for OptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            OptionError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
            OptionError::Invalid { flag, message } => {
                write!(f, "invalid value for --{flag}: {message}")
            }
        }
    }
}

impl std::error::Error for OptionError {}

/// Flags that take no value (everything else consumes the next argument).
const SWITCHES: &[&str] = &[
    "json",
    "quiet",
    "neighbours",
    "no-share",
    "telemetry",
    "metrics-json",
];

impl Options {
    /// Parses raw arguments (excluding the binary name and subcommand).
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Options, OptionError> {
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_ref();
            if let Some(name) = arg.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    flags.entry(name.to_owned()).or_default();
                    i += 1;
                    continue;
                }
                let value = args
                    .get(i + 1)
                    .map(|v| v.as_ref().to_owned())
                    .ok_or_else(|| OptionError::MissingValue(name.to_owned()))?;
                flags.entry(name.to_owned()).or_default().push(value);
                i += 2;
            } else {
                positional.push(arg.to_owned());
                i += 1;
            }
        }
        Ok(Options { flags, positional })
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// True if the switch `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The last value of `--name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag, in order.
    pub fn values(&self, name: &str) -> &[String] {
        self.flags.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last value of `--name`, or an error if it was not supplied.
    pub fn require(&self, name: &str) -> Result<&str, OptionError> {
        self.value(name)
            .ok_or_else(|| OptionError::MissingFlag(name.to_owned()))
    }

    /// Parses the last value of `--name` as `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, OptionError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| OptionError::Invalid {
                flag: name.to_owned(),
                message: format!("cannot parse `{v}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_switches_and_positionals() {
        let opts = Options::parse(&[
            "--trace", "t.jsonl", "--query", "a.swq", "--query", "b.swq", "--json", "extra",
        ])
        .unwrap();
        assert_eq!(opts.value("trace"), Some("t.jsonl"));
        assert_eq!(opts.values("query"), ["a.swq", "b.swq"]);
        assert!(opts.has("json"));
        assert!(!opts.has("quiet"));
        assert_eq!(opts.positional(), ["extra"]);
    }

    #[test]
    fn missing_value_is_reported() {
        let err = Options::parse(&["--trace"]).unwrap_err();
        assert!(matches!(err, OptionError::MissingValue(f) if f == "trace"));
    }

    #[test]
    fn require_and_parse_or_behave() {
        let opts = Options::parse(&["--edges", "500"]).unwrap();
        assert_eq!(opts.require("edges").unwrap(), "500");
        assert!(opts.require("missing").is_err());
        assert_eq!(opts.parse_or("edges", 10usize).unwrap(), 500);
        assert_eq!(opts.parse_or("absent", 10usize).unwrap(), 10);
        let opts = Options::parse(&["--edges", "not-a-number"]).unwrap();
        assert!(opts.parse_or("edges", 10usize).is_err());
    }

    #[test]
    fn errors_display_the_flag_name() {
        assert!(OptionError::MissingFlag("trace".into())
            .to_string()
            .contains("--trace"));
        assert!(OptionError::MissingValue("out".into())
            .to_string()
            .contains("--out"));
    }
}
