//! # streamworks-cli
//!
//! Command-line front end for the StreamWorks reproduction — the scripting
//! analogue of the demo's query-composition and monitoring UI (§1.1, §6.2).
//! The binary (`streamworks-cli`) supports four subcommands:
//!
//! * `generate` — synthesize a cyber / news / random edge trace as JSON lines;
//! * `plan` — parse a DSL query, plan it (optionally against statistics
//!   collected from a trace) and print/export the SJ-Tree plan;
//! * `run` — register one or more DSL queries and replay a trace through the
//!   continuous-query engine, printing the detected events and metrics;
//! * `summarize` — print the degree / type / triad statistics of a trace.
//!
//! All command implementations live in this library crate and return their
//! output as a `String`, so they are exercised directly by unit tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod commands;
mod options;

pub use commands::{cmd_generate, cmd_plan, cmd_run, cmd_summarize, dispatch, usage, CliError};
pub use options::{OptionError, Options};
