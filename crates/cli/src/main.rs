//! `streamworks-cli` binary entry point: parse arguments, dispatch to the
//! subcommand implementations in the library, print the result.

use std::process::ExitCode;

use streamworks_cli::{dispatch, CliError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
