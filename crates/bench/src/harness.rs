//! Timing and table-printing helpers shared by the experiment binaries.

use std::time::Instant;

/// Result of measuring one run of a workload through an engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRun {
    /// Number of edge events processed.
    pub edges: usize,
    /// Wall-clock seconds elapsed.
    pub seconds: f64,
    /// Complete matches emitted.
    pub matches: u64,
}

impl MeasuredRun {
    /// Edges processed per second.
    pub fn throughput(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.edges as f64 / self.seconds
        }
    }

    /// Mean per-edge latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.seconds * 1e6 / self.edges as f64
        }
    }

    /// Extrapolated records/hour at the measured rate (the unit of paper §6.1).
    pub fn records_per_hour(&self) -> f64 {
        self.throughput() * 3600.0
    }
}

/// Times a closure that processes `edges` events and reports how many matches
/// it produced.
pub fn measure(edges: usize, run: impl FnOnce() -> u64) -> MeasuredRun {
    let start = Instant::now();
    let matches = run();
    MeasuredRun {
        edges,
        seconds: start.elapsed().as_secs_f64(),
        matches,
    }
}

/// A minimal fixed-width plain-text table writer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_run_derives_rates() {
        let r = MeasuredRun {
            edges: 1_000,
            seconds: 0.5,
            matches: 10,
        };
        assert_eq!(r.throughput(), 2_000.0);
        assert_eq!(r.mean_latency_us(), 500.0);
        assert_eq!(r.records_per_hour(), 7_200_000.0);
        let empty = MeasuredRun {
            edges: 0,
            seconds: 0.0,
            matches: 0,
        };
        assert_eq!(empty.throughput(), 0.0);
        assert_eq!(empty.mean_latency_us(), 0.0);
    }

    #[test]
    fn measure_times_a_closure() {
        let r = measure(10, || 3);
        assert_eq!(r.edges, 10);
        assert_eq!(r.matches, 3);
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["workload", "edges/s", "matches"]);
        t.row(&["cyber".to_string(), "12345.6".to_string(), "42".to_string()]);
        t.row(&["news".to_string(), "987.0".to_string(), "7".to_string()]);
        let s = t.render();
        assert!(s.contains("workload"));
        assert!(s.contains("cyber"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All lines of the body have the same width as the header line.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
