//! # streamworks-bench
//!
//! Shared harness utilities for the StreamWorks evaluation: workload presets,
//! timing helpers and plain-text table printing used by both the Criterion
//! benches (`benches/`) and the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each experiment binary regenerates one row of the experiment index in
//! `DESIGN.md` / `EXPERIMENTS.md` and prints a CSV-like table to stdout so the
//! results can be diffed across runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod presets;

pub use harness::{measure, MeasuredRun, Table};
pub use presets::{cyber_preset, news_preset, random_preset, PresetSize};
