//! Workload presets shared by benches and experiment binaries.

use streamworks_workloads::{
    cyber::CyberConfig, news::NewsConfig, random::RandomConfig, AttackKind,
};

/// Coarse workload scale selector used by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetSize {
    /// Tens of thousands of edges — quick smoke runs and CI.
    Small,
    /// Hundreds of thousands of edges — the default for reported numbers.
    Medium,
    /// A million-plus edges — the ingest-rate experiment (E9).
    Large,
}

impl PresetSize {
    /// Parses a size name ("small", "medium", "large"), defaulting to small.
    pub fn parse(s: &str) -> PresetSize {
        match s.to_ascii_lowercase().as_str() {
            "medium" | "m" => PresetSize::Medium,
            "large" | "l" => PresetSize::Large,
            _ => PresetSize::Small,
        }
    }

    fn scale(self) -> usize {
        match self {
            PresetSize::Small => 1,
            PresetSize::Medium => 10,
            PresetSize::Large => 50,
        }
    }
}

/// Cyber-traffic preset: background traffic plus one instance of each attack.
pub fn cyber_preset(size: PresetSize) -> CyberConfig {
    CyberConfig {
        hosts: 500 * size.scale(),
        background_edges: 20_000 * size.scale(),
        attacks: vec![
            (AttackKind::SmurfDdos, 5),
            (AttackKind::PortScan, 8),
            (AttackKind::WormSpread, 4),
        ],
        ..Default::default()
    }
}

/// News-stream preset with the three labelled bursts of the default config.
pub fn news_preset(size: PresetSize) -> NewsConfig {
    NewsConfig {
        articles: 5_000 * size.scale(),
        keywords: 300 * size.scale(),
        locations: 80 * size.scale().max(1),
        ..Default::default()
    }
}

/// Uniform random stream preset.
pub fn random_preset(size: PresetSize) -> RandomConfig {
    RandomConfig {
        vertices: 2_000 * size.scale(),
        edges: 20_000 * size.scale(),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_monotonically() {
        assert!(
            cyber_preset(PresetSize::Large).background_edges
                > cyber_preset(PresetSize::Small).background_edges
        );
        assert!(news_preset(PresetSize::Medium).articles > news_preset(PresetSize::Small).articles);
        assert!(random_preset(PresetSize::Large).edges > random_preset(PresetSize::Medium).edges);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(PresetSize::parse("medium"), PresetSize::Medium);
        assert_eq!(PresetSize::parse("L"), PresetSize::Large);
        assert_eq!(PresetSize::parse("anything"), PresetSize::Small);
    }
}
