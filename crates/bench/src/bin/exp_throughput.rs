//! Experiment E5: throughput and per-edge latency of the incremental SJ-Tree
//! engine vs. the naive-expansion and repeated-search baselines as the stream
//! grows.
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_throughput \
//!     [-- smoke|small|medium|large] [--shards N] [--tenants N] [--rpq] \
//!     [--durable-sink <path>] [--telemetry]
//! ```
//!
//! `--shards N` (default 1) additionally measures the engine with each
//! query's match state sharded over N worker threads; `--tenants N`
//! additionally measures a multi-tenant template registry (2 queries per
//! tenant) with the shared primitive index on vs. off, printing the dedup
//! ratio; `--rpq` additionally measures the windowed regular-path-query
//! class on the multi-hop lateral-movement workload (`login flow* exploit`)
//! and reports recall against the planted intrusion chains;
//! `--durable-sink <path>` additionally measures batched ingest with a
//! durable log-file subscription acknowledging every match (asserting the
//! delivery log holds exactly one line per match); `--telemetry` measures
//! per-event ingest with sampled telemetry (histograms + spans, every 64th
//! event) against the same loop with telemetry off and prints the overhead
//! ratio on a parseable `telemetry off ... sampled ... ratio ...` line;
//! `smoke` runs one tiny size without the slow repeated-search baseline
//! (used by CI to exercise the sharded, shared, RPQ, durable-delivery and
//! telemetry-overhead paths on every push).

use streamworks_baseline::{NaiveEdgeExpansion, RepeatedSearchMatcher};
use streamworks_bench::{measure, Table};
use streamworks_core::{ContinuousQueryEngine, EngineConfig, SinkSpec, TelemetryLevel};
use streamworks_graph::{Duration, DynamicGraph};
use streamworks_workloads::queries::labelled_news_query;
use streamworks_workloads::{
    lateral_movement_rpq, LateralMovementConfig, LateralMovementGenerator, MultiTenantGenerator,
    NewsConfig, NewsStreamGenerator, TenantConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = "small".to_owned();
    let mut shards = 1usize;
    let mut tenants = 0usize;
    let mut rpq = false;
    let mut telemetry = false;
    let mut durable_sink: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--shards" {
            shards = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--shards takes a positive integer");
            i += 2;
        } else if args[i] == "--tenants" {
            tenants = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--tenants takes a positive integer");
            i += 2;
        } else if args[i] == "--rpq" {
            rpq = true;
            i += 1;
        } else if args[i] == "--telemetry" {
            telemetry = true;
            i += 1;
        } else if args[i] == "--durable-sink" {
            durable_sink = Some(
                args.get(i + 1)
                    .cloned()
                    .expect("--durable-sink takes a log-file path"),
            );
            i += 2;
        } else {
            size = args[i].clone();
            i += 1;
        }
    }
    let article_counts: Vec<usize> = match size.as_str() {
        "large" => vec![1_000, 5_000, 20_000, 50_000],
        "medium" => vec![500, 2_000, 8_000, 20_000],
        "smoke" => vec![400],
        _ => vec![200, 800, 2_000, 5_000],
    };
    // Repeated full search is quadratic+; keep it to the smallest sizes and
    // skip it entirely in the CI smoke run.
    let repeated_search_cutoff = if size == "smoke" {
        0
    } else {
        article_counts[1.min(article_counts.len() - 1)]
    };
    let query = labelled_news_query("politics", Duration::from_mins(30));

    println!("# E5: incremental vs. baselines (news stream, labelled pair query)");
    let mut table = Table::new(&[
        "articles", "edges", "engine", "edges/s", "us/edge", "matches",
    ]);
    for &articles in &article_counts {
        let workload = NewsStreamGenerator::new(NewsConfig {
            articles,
            planted_events: vec![("politics".into(), 3)],
            ..Default::default()
        })
        .generate();
        let events = &workload.events;

        // Incremental SJ-Tree engine, one event at a time.
        let run = measure(events.len(), || {
            let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
            engine.register_query(query.clone()).unwrap();
            let mut matches = 0u64;
            for ev in events {
                matches += engine.ingest(ev).unwrap().len() as u64;
            }
            matches
        });
        table.row(&[
            articles.to_string(),
            events.len().to_string(),
            "incremental-sjtree".into(),
            format!("{:.0}", run.throughput()),
            format!("{:.1}", run.mean_latency_us()),
            run.matches.to_string(),
        ]);

        // Incremental SJ-Tree engine, batched ingest.
        let run = measure(events.len(), || {
            let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
            engine.register_query(query.clone()).unwrap();
            engine.ingest(events).unwrap().len() as u64
        });
        table.row(&[
            articles.to_string(),
            events.len().to_string(),
            "incremental-batch".into(),
            format!("{:.0}", run.throughput()),
            format!("{:.1}", run.mean_latency_us()),
            run.matches.to_string(),
        ]);

        // Batched ingest with a durable log-file subscription: every match
        // is rendered, appended and acknowledged into the delivery cursor.
        if let Some(base) = &durable_sink {
            let path = format!("{base}.{articles}.log");
            let _ = std::fs::remove_file(&path);
            let run = measure(events.len(), || {
                let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                let handle = engine.register_query(query.clone()).unwrap();
                engine
                    .subscribe_durable(handle, SinkSpec::LogFile { path: path.clone() })
                    .unwrap();
                let matches = engine.ingest(events).unwrap().len() as u64;
                assert_eq!(
                    engine.flush_deliveries(),
                    0,
                    "durable log-file sink left deliveries pending"
                );
                matches
            });
            let lines = std::fs::read_to_string(&path)
                .map(|s| s.lines().count() as u64)
                .unwrap_or(0);
            assert_eq!(
                lines, run.matches,
                "delivery log must hold exactly one acknowledged line per match"
            );
            table.row(&[
                articles.to_string(),
                events.len().to_string(),
                "durable-logfile".into(),
                format!("{:.0}", run.throughput()),
                format!("{:.1}", run.mean_latency_us()),
                run.matches.to_string(),
            ]);
        }

        // Sharded single-query matching (join-key hash over worker threads).
        if shards > 1 {
            let run = measure(events.len(), || {
                let mut engine = ContinuousQueryEngine::builder()
                    .shards(shards)
                    .build()
                    .unwrap();
                engine.register_query(query.clone()).unwrap();
                engine.ingest(events).unwrap().len() as u64
            });
            table.row(&[
                articles.to_string(),
                events.len().to_string(),
                format!("sharded-{shards}"),
                format!("{:.0}", run.throughput()),
                format!("{:.1}", run.mean_latency_us()),
                run.matches.to_string(),
            ]);
        }

        // Naive per-edge expansion.
        let run = measure(events.len(), || {
            let mut graph = DynamicGraph::unbounded();
            let mut matcher = NaiveEdgeExpansion::new(query.clone());
            let mut matches = 0u64;
            for ev in events {
                let r = graph.ingest(ev);
                let edge = graph.edge(r.edge).unwrap().clone();
                matches += matcher.process_edge(&graph, &edge).len() as u64;
            }
            matches
        });
        table.row(&[
            articles.to_string(),
            events.len().to_string(),
            "naive-expansion".into(),
            format!("{:.0}", run.throughput()),
            format!("{:.1}", run.mean_latency_us()),
            run.matches.to_string(),
        ]);

        // Repeated full search only at the smallest two sizes (quadratic+ cost).
        if articles <= repeated_search_cutoff {
            let run = measure(events.len(), || {
                let mut graph = DynamicGraph::unbounded();
                let mut matcher = RepeatedSearchMatcher::new(query.clone());
                let mut matches = 0u64;
                for ev in events {
                    graph.ingest(ev);
                    matches += matcher.process_update(&graph).len() as u64;
                }
                matches
            });
            table.row(&[
                articles.to_string(),
                events.len().to_string(),
                "repeated-search".into(),
                format!("{:.0}", run.throughput()),
                format!("{:.1}", run.mean_latency_us()),
                run.matches.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    // Telemetry overhead: the same per-event loop with sampled histograms and
    // trace spans vs. telemetry off, best of 3 runs each to damp timer noise.
    // The final line is machine-parseable so CI can gate the ratio.
    if telemetry {
        let articles = *article_counts.last().unwrap();
        let workload = NewsStreamGenerator::new(NewsConfig {
            articles,
            planted_events: vec![("politics".into(), 3)],
            ..Default::default()
        })
        .generate();
        let events = &workload.events;
        let rate = |level: TelemetryLevel| {
            measure(events.len(), || {
                let mut engine = ContinuousQueryEngine::builder()
                    .telemetry_level(level)
                    .build()
                    .unwrap();
                engine.register_query(query.clone()).unwrap();
                let mut matches = 0u64;
                for ev in events {
                    matches += engine.ingest(ev).unwrap().len() as u64;
                }
                matches
            })
            .throughput()
        };
        // Alternate the two levels so clock-frequency drift hits both sides
        // equally, and take the best of 5 rounds each.
        let (mut off, mut sampled) = (0.0f64, 0.0f64);
        for _ in 0..5 {
            off = off.max(rate(TelemetryLevel::Off));
            sampled = sampled.max(rate(TelemetryLevel::Sampled));
        }
        println!(
            "\n# E15: telemetry overhead ({} events, sample every 64th, best of 5)",
            events.len()
        );
        println!(
            "telemetry off {off:.0} sampled {sampled:.0} ratio {:.3}",
            sampled / off
        );
    }

    // Multi-tenant template registry: the multi-query sharing regime. One
    // stream, 2 queries per tenant (labelled pair + co-location pair), the
    // canonical primitive index on vs. off.
    if tenants > 0 {
        let scale = match size.as_str() {
            "large" => 4_000,
            "medium" => 1_500,
            "smoke" => 120,
            _ => 600,
        };
        let workload = MultiTenantGenerator::new(TenantConfig {
            tenants,
            news: NewsConfig {
                articles: scale,
                ..Default::default()
            },
            ..Default::default()
        })
        .generate();
        println!(
            "\n# E13: multi-tenant registry ({} tenants, {} queries, {} events), shared index on vs. off",
            tenants,
            workload.queries.len(),
            workload.events.len()
        );
        let mut table = Table::new(&[
            "engine", "queries", "edges/s", "us/edge", "matches", "dedup", "saved",
        ]);
        for shared in [true, false] {
            let mut dedup = String::new();
            let mut saved = String::new();
            let run = measure(workload.events.len(), || {
                let mut engine = ContinuousQueryEngine::builder()
                    .shared_matching(shared)
                    .build()
                    .unwrap();
                for q in &workload.queries {
                    engine.register_query(q.clone()).unwrap();
                }
                let matches = engine.ingest(&workload.events).unwrap().len() as u64;
                let m = engine.engine_metrics();
                dedup = format!("{:.1}x", m.dedup_ratio());
                saved = m.searches_saved.to_string();
                matches
            });
            table.row(&[
                if shared { "shared-index" } else { "per-query" }.into(),
                workload.queries.len().to_string(),
                format!("{:.0}", run.throughput()),
                format!("{:.1}", run.mean_latency_us()),
                run.matches.to_string(),
                dedup,
                saved,
            ]);
        }
        println!("{}", table.render());
    }

    // Windowed RPQ: multi-hop lateral movement (`login flow* exploit`) over
    // Zipfian flow/DNS background, per-event and batched ingest, with recall
    // against the planted intrusion chains.
    if rpq {
        let background = match size.as_str() {
            "large" => 50_000,
            "medium" => 20_000,
            "smoke" => 500,
            _ => 5_000,
        };
        let workload = LateralMovementGenerator::new(LateralMovementConfig {
            hosts: (background / 40).max(16),
            background_edges: background,
            intrusions: vec![0, 2, 4, 8],
            ..Default::default()
        })
        .generate();
        let query = lateral_movement_rpq(Duration::from_secs(600));
        println!(
            "\n# E14: windowed RPQ (lateral movement, login flow* exploit), {} events, {} planted chains",
            workload.events.len(),
            workload.chains.len()
        );
        let mut table = Table::new(&[
            "engine", "edges/s", "us/edge", "matches", "detected", "recall",
        ]);
        for (label, batched) in [("rpq-engine", false), ("rpq-batch", true)] {
            let mut detected = 0usize;
            let run = measure(workload.events.len(), || {
                let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                engine.register_rpq(query.clone());
                let matches = if batched {
                    engine.ingest(&workload.events).unwrap()
                } else {
                    let mut all = Vec::new();
                    for ev in &workload.events {
                        all.extend(engine.ingest(ev).unwrap());
                    }
                    all
                };
                detected = workload
                    .chains
                    .iter()
                    .filter(|chain| {
                        matches.iter().any(|m| {
                            m.bindings.first().is_some_and(|b| b.key == chain.source)
                                && m.bindings.last().is_some_and(|b| b.key == chain.target)
                        })
                    })
                    .count();
                matches.len() as u64
            });
            table.row(&[
                label.into(),
                format!("{:.0}", run.throughput()),
                format!("{:.1}", run.mean_latency_us()),
                run.matches.to_string(),
                format!("{detected}/{}", workload.chains.len()),
                format!("{:.2}", detected as f64 / workload.chains.len() as f64),
            ]);
        }
        println!("{}", table.render());
        assert!(
            detected_ok(&workload, &query),
            "lateral-movement RPQ must detect every planted chain"
        );
    }
}

/// Re-runs the RPQ once more outside the timed loop and checks full recall —
/// the experiment doubles as a correctness smoke for CI.
fn detected_ok(
    workload: &streamworks_workloads::RpqWorkload,
    query: &streamworks_query::RpqQuery,
) -> bool {
    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
    engine.register_rpq(query.clone());
    let matches = engine.ingest(&workload.events).unwrap();
    workload.chains.iter().all(|chain| {
        matches.iter().any(|m| {
            m.bindings.first().is_some_and(|b| b.key == chain.source)
                && m.bindings.last().is_some_and(|b| b.key == chain.target)
        })
    })
}
