//! Experiment E6: match count, partial-match memory and latency as a function
//! of the query window `tW`.
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_window_sweep [-- small|medium|large]
//! ```

use streamworks_bench::{measure, news_preset, PresetSize, Table};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::Duration;
use streamworks_workloads::queries::labelled_news_query;
use streamworks_workloads::NewsStreamGenerator;

fn main() {
    let size = PresetSize::parse(&std::env::args().nth(1).unwrap_or_else(|| "small".into()));
    let workload = NewsStreamGenerator::new(news_preset(size)).generate();
    println!(
        "# E6: window sweep (news stream, {} events, labelled pair query)",
        workload.events.len()
    );

    let mut table = Table::new(&[
        "window",
        "edges/s",
        "us/edge",
        "matches",
        "partial_inserted",
        "partial_expired",
        "peak_live_edges",
    ]);
    for (label, window) in [
        ("1m", Duration::from_mins(1)),
        ("10m", Duration::from_mins(10)),
        ("1h", Duration::from_hours(1)),
        ("6h", Duration::from_hours(6)),
        ("24h", Duration::from_hours(24)),
    ] {
        let query = labelled_news_query("politics", window);
        let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
        let id = engine.register_query(query).unwrap();
        let mut peak_live = 0usize;
        let run = measure(workload.events.len(), || {
            let mut matches = 0u64;
            for ev in &workload.events {
                matches += engine.ingest(ev).unwrap().len() as u64;
                peak_live = peak_live.max(engine.graph().live_edge_count());
            }
            matches
        });
        let metrics = engine.metrics(id).unwrap();
        table.row(&[
            label.to_string(),
            format!("{:.0}", run.throughput()),
            format!("{:.1}", run.mean_latency_us()),
            run.matches.to_string(),
            metrics.partial_matches_inserted.to_string(),
            metrics.partial_matches_expired.to_string(),
            peak_live.to_string(),
        ]);
    }
    println!("{}", table.render());
}
