//! Experiment E9: sustained ingest rate of the full pipeline (graph +
//! summaries + N registered queries), extrapolated to records/hour — the unit
//! of paper §6.1 ("50-100 million records/hour").
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_ingest_rate [-- small|medium|large]
//! ```

use streamworks_bench::{cyber_preset, measure, PresetSize, Table};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::Duration;
use streamworks_workloads::queries::{port_scan_query, smurf_ddos_query, worm_spread_query};
use streamworks_workloads::CyberTrafficGenerator;

fn main() {
    let size = PresetSize::parse(&std::env::args().nth(1).unwrap_or_else(|| "small".into()));
    let workload = CyberTrafficGenerator::new(cyber_preset(size)).generate();
    println!(
        "# E9: sustained ingest rate, {} events (cyber stream)",
        workload.events.len()
    );

    let mut table = Table::new(&["queries", "summaries", "edges/s", "records/hour", "matches"]);
    for &(queries, maintain_summary) in
        &[(0usize, false), (0, true), (1, true), (4, true), (16, true)]
    {
        let mut engine = ContinuousQueryEngine::new(EngineConfig {
            maintain_summary,
            ..Default::default()
        });
        for i in 0..queries {
            match i % 3 {
                0 => engine
                    .register_query(smurf_ddos_query(3 + i % 3, Duration::from_mins(5)))
                    .unwrap(),
                1 => engine
                    .register_query(port_scan_query(4 + i % 4, Duration::from_mins(1)))
                    .unwrap(),
                _ => engine
                    .register_query(worm_spread_query(2, Duration::from_mins(10)))
                    .unwrap(),
            };
        }
        let run = measure(workload.events.len(), || {
            let mut matches = 0u64;
            for ev in &workload.events {
                matches += engine.ingest(ev).unwrap().len() as u64;
            }
            matches
        });
        table.row(&[
            queries.to_string(),
            maintain_summary.to_string(),
            format!("{:.0}", run.throughput()),
            format!("{:.2e}", run.records_per_hour()),
            run.matches.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper §6.1 reference: CAIDA traces arrive at 50-100 million records/hour.");
}
