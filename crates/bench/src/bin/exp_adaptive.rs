//! Experiment E14: adaptive re-planning under statistics drift (§4.3 future
//! work). Runs the Fig. 2 news query registered with a frequency-blind plan,
//! streams two phases of skewed traffic with an `AdaptiveReplanner` checking
//! between them, and reports the per-phase matching effort under the initial
//! plan, the adaptively chosen plan, and — for reference — an engine that was
//! given the statistics-driven plan from the start.
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_adaptive [-- small|medium|large]
//! ```

use streamworks_bench::{measure, PresetSize, Table};
use streamworks_core::{
    AdaptiveConfig, AdaptiveReplanner, ContinuousQueryEngine, EngineConfig, QueryHandle,
};
use streamworks_graph::{Duration, EdgeEvent};
use streamworks_query::{CostBasedOrdered, LeftDeepEdgeChain, TreeShapeKind};
use streamworks_workloads::queries::news_triple_query;
use streamworks_workloads::{NewsConfig, NewsStreamGenerator};

fn phase(seed: u64, articles: usize) -> Vec<EdgeEvent> {
    NewsStreamGenerator::new(NewsConfig {
        articles,
        planted_events: vec![("politics".into(), 3)],
        seed,
        ..Default::default()
    })
    .generate()
    .events
}

fn run_phase(
    engine: &mut ContinuousQueryEngine,
    id: QueryHandle,
    events: &[EdgeEvent],
    label: &str,
    plan: &str,
    table: &mut Table,
) {
    let inserted_before = engine.metrics(id).unwrap().partial_matches_inserted;
    let joins_before = engine.metrics(id).unwrap().joins_attempted;
    let run = measure(events.len(), || {
        let mut matches = 0u64;
        for ev in events {
            matches += engine.ingest(ev).unwrap().len() as u64;
        }
        matches
    });
    let m = engine.metrics(id).unwrap();
    table.row(&[
        label.to_string(),
        plan.to_string(),
        format!("{:.0}", run.throughput()),
        run.matches.to_string(),
        (m.partial_matches_inserted - inserted_before).to_string(),
        (m.joins_attempted - joins_before).to_string(),
    ]);
}

fn main() {
    let size = PresetSize::parse(&std::env::args().nth(1).unwrap_or_else(|| "small".into()));
    let articles = match size {
        PresetSize::Small => 2_000,
        PresetSize::Medium => 8_000,
        PresetSize::Large => 20_000,
    };
    let phase1 = phase(11, articles);
    let phase2 = phase(12, articles);
    let query = news_triple_query(Duration::from_mins(30));
    let config = EngineConfig {
        max_matches_per_node: Some(1_000_000),
        ..EngineConfig::default()
    };

    println!(
        "# E14: adaptive re-planning (news triple query, 2 phases x {} articles)",
        articles
    );
    let mut table = Table::new(&[
        "engine",
        "plan in effect",
        "edges/s",
        "matches",
        "partial_inserted",
        "joins",
    ]);

    // (a) Blind plan, never re-planned.
    let mut blind = ContinuousQueryEngine::new(config);
    let blind_id = blind
        .register_query_with(query.clone(), &LeftDeepEdgeChain, TreeShapeKind::LeftDeep)
        .unwrap();
    run_phase(
        &mut blind,
        blind_id,
        &phase1,
        "static-blind",
        "blind-edge-chain",
        &mut table,
    );
    run_phase(
        &mut blind,
        blind_id,
        &phase2,
        "static-blind",
        "blind-edge-chain",
        &mut table,
    );

    // (b) Blind plan + adaptive replanner checked between the phases.
    let mut adaptive = ContinuousQueryEngine::new(config);
    let adaptive_id = adaptive
        .register_query_with(query.clone(), &LeftDeepEdgeChain, TreeShapeKind::LeftDeep)
        .unwrap();
    let mut replanner = AdaptiveReplanner::new(AdaptiveConfig {
        min_edges_between_replans: 1_000,
        drift_threshold: 0.05,
        min_improvement: 1.1,
        ..AdaptiveConfig::default()
    });
    replanner.check(&mut adaptive);
    run_phase(
        &mut adaptive,
        adaptive_id,
        &phase1,
        "adaptive",
        "blind-edge-chain",
        &mut table,
    );
    let decisions = replanner.check(&mut adaptive);
    let plan_after = adaptive.plan(adaptive_id).unwrap().strategy.clone();
    run_phase(
        &mut adaptive,
        adaptive_id,
        &phase2,
        "adaptive",
        &plan_after,
        &mut table,
    );

    // (c) Statistics-driven plan from the start (upper bound for phase 2).
    let mut informed = ContinuousQueryEngine::new(config);
    // Warm statistics so the informed plan actually has something to use.
    for ev in &phase1 {
        informed.ingest(ev).unwrap();
    }
    let informed_id = informed
        .register_query_with(query, &CostBasedOrdered::default(), TreeShapeKind::LeftDeep)
        .unwrap();
    run_phase(
        &mut informed,
        informed_id,
        &phase2,
        "informed-from-start",
        "cost-based",
        &mut table,
    );

    println!("{}", table.render());
    for d in &decisions {
        println!(
            "replan decision: query={} drift={:.3} current_cost={:.1} candidate_cost={:.1} replanned={} ({})",
            d.query, d.drift, d.current_cost, d.candidate_cost, d.replanned, d.reason
        );
    }
}
