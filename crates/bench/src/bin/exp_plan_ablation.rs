//! Experiments E4/E7: plan-quality ablation — the same queries executed under
//! a selectivity-ordered plan vs. frequency-blind plans, reporting partial
//! matches stored, join attempts and wall time (the cost the §4.1 design goal
//! minimises), plus the Fig. 7-style per-plan progression for the Smurf query.
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_plan_ablation [-- small|medium|large]
//! ```

use streamworks_bench::{cyber_preset, measure, PresetSize, Table};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::{Duration, EdgeEvent};
use streamworks_query::{
    estimate_shape_cost, BalancedPairs, CostBasedOrdered, DecompositionStrategy, LeftDeepEdgeChain,
    Planner, QueryGraph, SelectivityEstimator, SelectivityOrdered, TreeShapeKind, TriadWedges,
};
use streamworks_workloads::queries::{news_triple_query, smurf_ddos_query};
use streamworks_workloads::{CyberTrafficGenerator, NewsConfig, NewsStreamGenerator};

fn ablate(name: &str, query: QueryGraph, events: &[EdgeEvent], table: &mut Table) {
    // Learn statistics with a warm-up pass.
    let mut warm = ContinuousQueryEngine::builder().build().unwrap();
    for ev in events {
        warm.ingest(ev).unwrap();
    }
    let strategies: Vec<(&str, Box<dyn DecompositionStrategy>)> = vec![
        ("selectivity-pairs", Box::new(SelectivityOrdered::default())),
        (
            "selectivity-single",
            Box::new(SelectivityOrdered {
                max_primitive_size: 1,
            }),
        ),
        ("blind-edge-chain", Box::new(LeftDeepEdgeChain)),
        ("balanced-pairs", Box::new(BalancedPairs)),
        ("cost-based", Box::new(CostBasedOrdered::default())),
        ("triad-wedges", Box::new(TriadWedges::default())),
    ];
    for (plan_name, strategy) in &strategies {
        let plan = Planner::new()
            .with_statistics(warm.summary(), warm.graph())
            .tree_kind(TreeShapeKind::LeftDeep)
            .plan_with(query.clone(), strategy.as_ref())
            .unwrap();
        // What the cost model predicts for this plan under the learned
        // statistics (compare with the measured partial_inserted column).
        let estimator = SelectivityEstimator::with_summary(warm.summary(), warm.graph());
        let predicted =
            estimate_shape_cost(&plan.query, &estimator, &plan.shape).stored_partial_matches;
        // A generous per-node cap keeps pathological (frequency-blind) plans
        // finite; hitting it shows up in the partial_inserted column.
        let mut engine = ContinuousQueryEngine::new(EngineConfig {
            max_matches_per_node: Some(1_000_000),
            ..Default::default()
        });
        let id = engine.register_plan(plan);
        let run = measure(events.len(), || {
            let mut matches = 0u64;
            for ev in events {
                matches += engine.ingest(ev).unwrap().len() as u64;
            }
            matches
        });
        let m = engine.metrics(id).unwrap();
        table.row(&[
            name.to_string(),
            plan_name.to_string(),
            format!("{:.0}", run.throughput()),
            run.matches.to_string(),
            m.partial_matches_inserted.to_string(),
            format!("{predicted:.0}"),
            m.joins_attempted.to_string(),
            m.local_search_candidates.to_string(),
        ]);
    }
}

fn main() {
    let size = PresetSize::parse(&std::env::args().nth(1).unwrap_or_else(|| "small".into()));

    println!("# E4/E7: decomposition-strategy ablation");
    let mut table = Table::new(&[
        "workload",
        "plan",
        "edges/s",
        "matches",
        "partial_inserted",
        "est_partial",
        "joins",
        "candidates",
    ]);

    // The unlabelled triple query is intentionally unselective; a moderate
    // stream keeps the frequency-blind plans finite while preserving the skew.
    let news = NewsStreamGenerator::new(NewsConfig {
        articles: 1_200 * if size == PresetSize::Small { 1 } else { 4 },
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();
    ablate(
        "news/triple",
        news_triple_query(Duration::from_mins(10)),
        &news.events,
        &mut table,
    );

    let cyber = CyberTrafficGenerator::new(cyber_preset(size)).generate();
    ablate(
        "cyber/smurf",
        smurf_ddos_query(4, Duration::from_mins(5)),
        &cyber.events,
        &mut table,
    );
    println!("{}", table.render());
}
