//! Experiment E8: cost and accuracy of streaming summarization (paper §4.3).
//!
//! Reports (a) the per-edge overhead of maintaining degree/type statistics and
//! the typed-triad distribution relative to bare graph ingest, and (b) that
//! the streaming triad counts agree with an exact offline rebuild. (Streaming
//! triad maintenance is exact since it moved to the graph's per-type live
//! counters — the accuracy table is a consistency check, not a sampling-error
//! report.)
//!
//! ```text
//! cargo run --release -p streamworks-bench --bin exp_summaries [-- small|medium|large]
//! ```

use streamworks_bench::{cyber_preset, measure, PresetSize, Table};
use streamworks_graph::DynamicGraph;
use streamworks_summarize::{GraphSummary, SummaryConfig, TriadDistribution};
use streamworks_workloads::CyberTrafficGenerator;

fn main() {
    let size = PresetSize::parse(&std::env::args().nth(1).unwrap_or_else(|| "small".into()));
    let workload = CyberTrafficGenerator::new(cyber_preset(size)).generate();
    println!(
        "# E8: summarization overhead and accuracy ({} events)",
        workload.events.len()
    );

    // ---- overhead ----
    let mut table = Table::new(&["configuration", "edges/s", "us/edge", "relative_cost"]);
    let mut baseline_rate = 0.0f64;
    for (name, config) in [
        ("graph-only", None),
        ("degree+types", Some(SummaryConfig::cheap())),
        ("full (exact triads)", Some(SummaryConfig::full())),
    ] {
        let run = measure(workload.events.len(), || {
            let mut g = DynamicGraph::unbounded();
            let mut s = config.map(GraphSummary::with_config);
            for ev in &workload.events {
                let r = g.ingest(ev);
                if let Some(s) = s.as_mut() {
                    let edge = g.edge(r.edge).unwrap().clone();
                    s.observe_insertion(&g, &edge);
                }
            }
            g.live_edge_count() as u64
        });
        if name == "graph-only" {
            baseline_rate = run.throughput();
        }
        table.row(&[
            name.to_string(),
            format!("{:.0}", run.throughput()),
            format!("{:.2}", run.mean_latency_us()),
            format!("{:.2}x", baseline_rate / run.throughput().max(1.0)),
        ]);
    }
    println!("{}", table.render());

    // ---- triad consistency: streaming counters vs exact rebuild ----
    let mut g = DynamicGraph::unbounded();
    let mut streaming = TriadDistribution::new();
    let sample: Vec<_> = workload.events.iter().take(20_000).collect();
    for ev in &sample {
        let r = g.ingest(ev);
        let edge = g.edge(r.edge).unwrap().clone();
        streaming.observe_edge(&g, &edge);
    }
    let exact = TriadDistribution::rebuild_exact(&g);
    let mut acc = Table::new(&["metric", "rebuild_exact", "streaming", "ratio"]);
    acc.row(&[
        "total wedges".into(),
        format!("{:.0}", exact.total_wedges()),
        format!("{:.0}", streaming.total_wedges()),
        format!(
            "{:.2}",
            streaming.total_wedges() / exact.total_wedges().max(1.0)
        ),
    ]);
    // Top-5 wedge signatures by exact count: streaming counter vs truth.
    let mut top: Vec<_> = exact.wedges().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (key, count) in top.into_iter().take(5) {
        acc.row(&[
            format!("{key:?}"),
            format!("{count:.0}"),
            format!("{:.0}", streaming.wedge_count(key)),
            format!("{:.2}", streaming.wedge_count(key) / count.max(1.0)),
        ]);
    }
    println!("{}", acc.render());
}
