//! Experiment E11: multi-query scaling across worker threads.
//!
//! The paper's demo ran on a 48-core shared-memory node (§6.1). The
//! reproduction's unit of parallelism is the registered query: the
//! `ParallelRunner` shards queries across threads, each with its own graph and
//! summaries. This bench measures how the wall-clock time of replaying the
//! same cyber stream through 8 registered queries changes with 1, 2, 4 and 8
//! workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_core::{EngineConfig, ParallelRunner};
use streamworks_graph::Duration;
use streamworks_workloads::queries::{port_scan_query, smurf_ddos_query, worm_spread_query};
use streamworks_workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};

fn bench_parallel(c: &mut Criterion) {
    let workload = CyberTrafficGenerator::new(CyberConfig {
        hosts: 400,
        background_edges: 15_000,
        attacks: vec![
            (AttackKind::SmurfDdos, 5),
            (AttackKind::PortScan, 8),
            (AttackKind::WormSpread, 4),
        ],
        ..Default::default()
    })
    .generate();

    // Eight queries: the three Fig. 3 patterns at several parameterisations.
    let window = Duration::from_mins(5);
    let queries = vec![
        smurf_ddos_query(3, window),
        smurf_ddos_query(5, window),
        port_scan_query(6, window),
        port_scan_query(8, window),
        worm_spread_query(2, window),
        worm_spread_query(4, window),
        smurf_ddos_query(4, window),
        port_scan_query(10, window),
    ];

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.events.len() as u64));
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut runner = ParallelRunner::new(EngineConfig::fast_ingest(), workers);
                    for q in &queries {
                        runner.register_query(q.clone());
                    }
                    let outcome = runner.run(&workload.events).unwrap();
                    outcome.events.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
