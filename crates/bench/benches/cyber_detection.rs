//! Experiment E2: attack detection on the synthetic traffic stream (paper
//! §5.1 / Fig. 3) — end-to-end cost of running the three cyber queries over
//! background traffic with injected attacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_bench::{cyber_preset, PresetSize};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::Duration;
use streamworks_workloads::queries::{port_scan_query, smurf_ddos_query, worm_spread_query};
use streamworks_workloads::CyberTrafficGenerator;

fn bench_cyber_detection(c: &mut Criterion) {
    let workload = CyberTrafficGenerator::new(cyber_preset(PresetSize::Small)).generate();

    let mut group = c.benchmark_group("cyber_detection");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.events.len() as u64));

    for &queries in &[1usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("registered_queries", queries),
            &queries,
            |b, &queries| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                    engine
                        .register_query(smurf_ddos_query(4, Duration::from_mins(5)))
                        .unwrap();
                    if queries >= 3 {
                        engine
                            .register_query(port_scan_query(6, Duration::from_mins(1)))
                            .unwrap();
                        engine
                            .register_query(worm_spread_query(2, Duration::from_mins(10)))
                            .unwrap();
                    }
                    let mut matches = 0u64;
                    for ev in &workload.events {
                        matches += engine.ingest(ev).unwrap().len() as u64;
                    }
                    matches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cyber_detection);
criterion_main!(benches);
