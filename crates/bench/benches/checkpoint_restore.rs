//! Experiment E12: cost of checkpointing and restoring the engine.
//!
//! Recovery time bounds how aggressively an operator can restart a continuous
//! monitoring deployment. This bench measures (a) capturing a checkpoint of an
//! engine holding a full retention window of cyber traffic, (b) serialising it
//! to JSON, and (c) restoring (bounded replay of the live window).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use streamworks_core::{ContinuousQueryEngine, EngineCheckpoint, EngineConfig};
use streamworks_graph::Duration;
use streamworks_workloads::queries::smurf_ddos_query;
use streamworks_workloads::{AttackKind, CyberConfig, CyberTrafficGenerator};

fn prepared_engine(edges: usize) -> ContinuousQueryEngine {
    let workload = CyberTrafficGenerator::new(CyberConfig {
        hosts: 300,
        background_edges: edges,
        attacks: vec![(AttackKind::SmurfDdos, 4)],
        ..Default::default()
    })
    .generate();
    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
    engine
        .register_query(smurf_ddos_query(4, Duration::from_mins(10)))
        .unwrap();
    for ev in &workload.events {
        engine.ingest(ev).unwrap();
    }
    engine
}

fn bench_checkpoint(c: &mut Criterion) {
    let engine = prepared_engine(20_000);
    let checkpoint = engine.checkpoint();
    let json = checkpoint.to_json().unwrap();
    let live_edges = checkpoint.live_edges.len() as u64;

    let mut group = c.benchmark_group("checkpoint_restore");
    group.sample_size(10);
    group.throughput(Throughput::Elements(live_edges.max(1)));
    group.bench_function("capture", |b| {
        b.iter(|| engine.checkpoint().live_edges.len())
    });
    group.bench_function("serialize_json", |b| {
        b.iter(|| checkpoint.to_json().unwrap().len())
    });
    group.bench_function("restore_replay", |b| {
        b.iter(|| {
            let restored = EngineCheckpoint::from_json(&json).unwrap().restore();
            restored.graph().live_edge_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
