//! Experiment E8: per-edge cost of streaming summarization (paper §4.3) —
//! degree/type statistics only vs. full summaries including the typed-triad
//! distribution, compared against ingesting with no summaries at all.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use streamworks_bench::{cyber_preset, PresetSize};
use streamworks_graph::DynamicGraph;
use streamworks_summarize::{GraphSummary, SummaryConfig};
use streamworks_workloads::CyberTrafficGenerator;

fn bench_summaries(c: &mut Criterion) {
    let workload = CyberTrafficGenerator::new(cyber_preset(PresetSize::Small)).generate();
    let mut group = c.benchmark_group("summarize_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.events.len() as u64));

    group.bench_function("graph_only", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::unbounded();
            for ev in &workload.events {
                g.ingest(ev);
            }
            g.live_edge_count()
        })
    });

    group.bench_function("degree_and_types", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::unbounded();
            let mut s = GraphSummary::with_config(SummaryConfig::cheap());
            for ev in &workload.events {
                let r = g.ingest(ev);
                let edge = g.edge(r.edge).unwrap().clone();
                s.observe_insertion(&g, &edge);
            }
            s.edges_observed()
        })
    });

    group.bench_function("full_with_triads", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::unbounded();
            let mut s = GraphSummary::with_config(SummaryConfig::full());
            for ev in &workload.events {
                let r = g.ingest(ev);
                let edge = g.edge(r.edge).unwrap().clone();
                s.observe_insertion(&g, &edge);
            }
            s.edges_observed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_summaries);
criterion_main!(benches);
