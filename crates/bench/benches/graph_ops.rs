//! Micro-benchmarks of the dynamic graph substrate: ingest throughput with and
//! without retention, neighbourhood iteration and snapshot candidate scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_bench::{cyber_preset, PresetSize};
use streamworks_graph::{Direction, Duration, DynamicGraph, GraphConfig, GraphSnapshot};
use streamworks_workloads::CyberTrafficGenerator;

fn bench_ingest(c: &mut Criterion) {
    let workload = CyberTrafficGenerator::new(cyber_preset(PresetSize::Small)).generate();
    let mut group = c.benchmark_group("graph_ingest");
    group.throughput(Throughput::Elements(workload.events.len() as u64));

    group.bench_function("unbounded", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::unbounded();
            for ev in &workload.events {
                g.ingest(ev);
            }
            g.live_edge_count()
        })
    });
    group.bench_function("retention_60s", |b| {
        b.iter(|| {
            let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(60)));
            for ev in &workload.events {
                g.ingest(ev);
            }
            g.live_edge_count()
        })
    });
    group.finish();
}

fn bench_neighborhood(c: &mut Criterion) {
    let workload = CyberTrafficGenerator::new(cyber_preset(PresetSize::Small)).generate();
    let mut g = DynamicGraph::unbounded();
    for ev in &workload.events {
        g.ingest(ev);
    }
    let flow = g.edge_type_id("flow").unwrap();
    let hubs: Vec<_> = g
        .vertices()
        .filter(|v| v.degree() > 8)
        .map(|v| v.id)
        .take(64)
        .collect();

    let mut group = c.benchmark_group("graph_neighborhood");
    group.bench_function("typed_out_neighbors", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for &v in &hubs {
                count += g.neighbors(v, Direction::Out, flow).count();
            }
            count
        })
    });
    group.bench_with_input(
        BenchmarkId::new("snapshot_edges_with_type", "flow"),
        &flow,
        |b, &t| {
            let snap = GraphSnapshot::new(&g);
            b.iter(|| snap.edges_with_type(t).count())
        },
    );
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_neighborhood);
criterion_main!(benches);
