//! Experiment E6 (bench component): effect of the query window `tW` on
//! end-to-end cost. Larger windows retain more edges and more partial matches,
//! so per-edge cost and match counts grow with the window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::Duration;
use streamworks_workloads::queries::labelled_news_query;
use streamworks_workloads::{NewsConfig, NewsStreamGenerator};

fn bench_window_sweep(c: &mut Criterion) {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 1_500,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();

    let mut group = c.benchmark_group("window_expiry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.events.len() as u64));

    for &window_mins in &[1i64, 10, 60, 360] {
        let query = labelled_news_query("politics", Duration::from_mins(window_mins));
        group.bench_with_input(
            BenchmarkId::new("window_minutes", window_mins),
            &query,
            |b, query| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                    engine.register_query(query.clone()).unwrap();
                    let mut matches = 0u64;
                    for ev in &workload.events {
                        matches += engine.ingest(ev).len() as u64;
                    }
                    matches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window_sweep);
criterion_main!(benches);
