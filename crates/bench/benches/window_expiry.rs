//! Experiment E6 (bench component): effect of the query window `tW` on
//! end-to-end cost. Larger windows retain more edges and more partial matches,
//! so per-edge cost and match counts grow with the window.
//!
//! The `skewed_timestamps` case stresses **exact expiry**: its events carry
//! out-of-order timestamps (every 8th event lags by up to half a window), so
//! partial matches enter the stores with non-monotone earliest values — the
//! regime the pre-unification `MatchStore` FIFO queue could not sweep past
//! (stale matches were retained behind an in-window head, inflating
//! `partial_matches_live` and every probe over the bloated buckets). The
//! unified `SharedJoinStore`'s min-heap schedule sweeps it exactly.
//!
//! Set `STREAMWORKS_BENCH_SMOKE=1` to run on CI-sized inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};
use streamworks_workloads::queries::labelled_news_query;
use streamworks_workloads::{NewsConfig, NewsStreamGenerator};

/// Smoke-size inputs for CI (see `STREAMWORKS_BENCH_SMOKE`).
fn smoke() -> bool {
    std::env::var_os("STREAMWORKS_BENCH_SMOKE").is_some()
}

fn workload(articles: usize) -> Vec<EdgeEvent> {
    NewsStreamGenerator::new(NewsConfig {
        articles,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate()
    .events
}

fn bench_window_sweep(c: &mut Criterion) {
    let events = workload(if smoke() { 150 } else { 1_500 });

    let mut group = c.benchmark_group("window_expiry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));

    for &window_mins in &[1i64, 10, 60, 360] {
        let query = labelled_news_query("politics", Duration::from_mins(window_mins));
        group.bench_with_input(
            BenchmarkId::new("window_minutes", window_mins),
            &query,
            |b, query| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                    engine.register_query(query.clone()).unwrap();
                    let mut matches = 0u64;
                    for ev in &events {
                        matches += engine.ingest(ev).unwrap().len() as u64;
                    }
                    matches
                })
            },
        );
    }
    group.finish();
}

fn bench_skewed_expiry(c: &mut Criterion) {
    // Jitter the stream: every 8th event is delivered with a timestamp up to
    // half the window in the past (bounded skew, as from a lagging producer).
    // Matches seeded by — or merged with — those edges carry older earliest
    // values than matches already stored, exactly the ordering the exact
    // min-heap expiry exists for.
    let window = Duration::from_mins(10);
    let mut events = workload(if smoke() { 150 } else { 1_500 });
    for (i, ev) in events.iter_mut().enumerate() {
        if i % 8 == 0 {
            let lag = (i as i64 % 5 + 1) * (window.as_micros() / 10);
            ev.timestamp = Timestamp::from_micros((ev.timestamp.as_micros() - lag).max(0));
        }
    }
    let query = labelled_news_query("politics", window);

    let mut group = c.benchmark_group("window_expiry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function(BenchmarkId::new("skewed_timestamps", events.len()), |b| {
        b.iter(|| {
            let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
            let handle = engine.register_query(query.clone()).unwrap();
            let mut matches = 0u64;
            for ev in &events {
                matches += engine.ingest(ev).unwrap().len() as u64;
            }
            // Live state after the run is part of what this case measures:
            // inexact expiry retains skewed stragglers, exact expiry holds
            // only genuinely in-window matches.
            (
                matches,
                engine.metrics(handle).unwrap().partial_matches_live,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_window_sweep, bench_skewed_expiry);
criterion_main!(benches);
