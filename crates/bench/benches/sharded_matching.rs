//! Experiment E12: sharded vs. single-threaded matching of one hot query.
//!
//! StreamWorks targets a *single* standing query that must keep up with the
//! stream; `ParallelRunner` cannot help there (it shards across queries).
//! This bench measures the `ShardedMatcher` against the in-process
//! `SjTreeMatcher` on the regime sharding exists for: a join-dominated hot
//! query planned with single-edge primitives (like
//! `incremental_vs_baseline`'s wedge matching) over a stream whose keywords
//! are hot enough that every new mention probes a long sibling bucket.
//! Join/store work then dwarfs the serial front end (graph update + local
//! search), which is exactly the part join-key sharding spreads over cores.
//!
//! Both arms drive the matcher layer directly with the engine's default
//! prune cadence, so the comparison isolates exactly what sharding changes.
//! Expected shape on multicore hardware: `sharded/1` tracks `single_thread`
//! (batched routing amortises the channel overhead) and `sharded/4` beats
//! `sharded/1` by ≥1.5x (the acceptance bar recorded in CHANGES.md). On a
//! single-core container the shard threads serialise and the bench only
//! shows the overhead floor.

//!
//! Set `STREAMWORKS_BENCH_SMOKE=1` to run on CI-sized inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_core::{ShardedMatcher, SjTreeMatcher};
use streamworks_graph::{Duration, DynamicGraph, EdgeEvent, Timestamp};
use streamworks_query::{Planner, QueryGraphBuilder, QueryPlan, SelectivityOrdered};

/// The engine's default partial-match prune cadence, reproduced here so the
/// matcher-level arms age their stores the way an engine run would.
const PRUNE_EVERY: usize = 256;

/// Hot-keyword stream: many articles keep mentioning a small keyword pool,
/// with an occasional `located` edge that can complete the pattern. One
/// event per second of stream time.
fn hot_stream(events: usize, keywords: usize, articles: usize) -> Vec<EdgeEvent> {
    (0..events)
        .map(|i| {
            let t = Timestamp::from_secs(i as i64);
            if i % 50 == 49 {
                EdgeEvent::new(
                    format!("a{}", i % articles),
                    "Article",
                    format!("city{}", i % 7),
                    "Location",
                    "located",
                    t,
                )
            } else {
                // Quadratic-ish pressure: hot keys shared by many articles.
                EdgeEvent::new(
                    format!("a{}", (i * 7) % articles),
                    "Article",
                    format!("k{}", i % keywords),
                    "Keyword",
                    "mentions",
                    t,
                )
            }
        })
        .collect()
}

/// Two mention leaves joining on the shared keyword plus a located edge at
/// the root: level-1 joins are plentiful (the work sharding spreads), root
/// completions are rare (the serial result path stays cheap).
fn hot_wedge_plan() -> QueryPlan {
    let query = QueryGraphBuilder::new("hot_wedge")
        .window(Duration::from_mins(8))
        .vertex("a1", "Article")
        .vertex("a2", "Article")
        .vertex("k", "Keyword")
        .vertex("l", "Location")
        .edge("a1", "mentions", "k")
        .edge("a2", "mentions", "k")
        .edge("a1", "located", "l")
        .build()
        .unwrap();
    Planner::new()
        .plan_with(
            query,
            &SelectivityOrdered {
                max_primitive_size: 1,
            },
        )
        .unwrap()
}

fn run_single(plan: &QueryPlan, events: &[EdgeEvent]) -> u64 {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = SjTreeMatcher::new(plan.clone(), &graph);
    let mut out = Vec::new();
    let mut complete = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let r = graph.ingest(ev);
        let edge = graph.edge(r.edge).unwrap().clone();
        out.clear();
        matcher.process_edge(&graph, &edge, &mut out);
        complete += out.len() as u64;
        if (i + 1) % PRUNE_EVERY == 0 {
            matcher.prune(graph.now());
        }
    }
    complete
}

fn run_sharded(plan: &QueryPlan, events: &[EdgeEvent], shards: usize) -> u64 {
    let mut graph = DynamicGraph::unbounded();
    let mut matcher = ShardedMatcher::new(plan.clone(), &graph, shards, None);
    for (i, ev) in events.iter().enumerate() {
        let r = graph.ingest(ev);
        let edge = graph.edge(r.edge).unwrap().clone();
        matcher.process_edge(&graph, &edge);
        if (i + 1) % PRUNE_EVERY == 0 {
            matcher.prune(graph.now());
        }
    }
    matcher.take_completed().len() as u64
}

fn bench_sharded(c: &mut Criterion) {
    let plan = hot_wedge_plan();
    let smoke = std::env::var_os("STREAMWORKS_BENCH_SMOKE").is_some();
    let events = hot_stream(if smoke { 1_000 } else { 6_000 }, 24, 160);

    let mut group = c.benchmark_group("sharded_matching");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));

    // Reference: the in-process matcher (no channels, no workers).
    group.bench_with_input(
        BenchmarkId::new("single_thread", events.len()),
        &events,
        |b, events| b.iter(|| run_single(&plan, events)),
    );

    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| b.iter(|| run_sharded(&plan, &events, shards)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
