//! Experiment E5: incremental SJ-Tree matching vs. the repeated-search and
//! naive edge-expansion baselines on the same stream and query.
//!
//! The paper's core claim is that maintaining partial matches in the SJ-Tree
//! makes per-edge work far cheaper than re-searching. The expected shape is:
//! incremental >> naive expansion >> repeated search in throughput, with the
//! gap widening as the stream grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_baseline::{NaiveEdgeExpansion, RepeatedSearchMatcher};
use streamworks_core::{ContinuousQueryEngine, EngineConfig, TelemetryLevel};
use streamworks_graph::{Duration, DynamicGraph, EdgeEvent};
use streamworks_workloads::queries::labelled_news_query;
use streamworks_workloads::{NewsConfig, NewsStreamGenerator};

fn news_events(articles: usize) -> Vec<EdgeEvent> {
    NewsStreamGenerator::new(NewsConfig {
        articles,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate()
    .events
}

fn bench_matchers(c: &mut Criterion) {
    let query = labelled_news_query("politics", Duration::from_mins(30));
    let mut group = c.benchmark_group("incremental_vs_baseline");
    group.sample_size(10);

    for &articles in &[200usize, 600, 1_200] {
        let events = news_events(articles);
        group.throughput(Throughput::Elements(events.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("incremental_sjtree", articles),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                    engine.register_query(query.clone()).unwrap();
                    let mut matches = 0u64;
                    for ev in events {
                        matches += engine.ingest(ev).unwrap().len() as u64;
                    }
                    matches
                })
            },
        );

        // The same per-event loop with sampled telemetry (histograms +
        // spans, every 64th event): the overhead contract is that this stays
        // within a few percent of the plain loop above.
        group.bench_with_input(
            BenchmarkId::new("incremental_sjtree_telemetry", articles),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::builder()
                        .telemetry_level(TelemetryLevel::Sampled)
                        .build()
                        .unwrap();
                    engine.register_query(query.clone()).unwrap();
                    let mut matches = 0u64;
                    for ev in events {
                        matches += engine.ingest(ev).unwrap().len() as u64;
                    }
                    matches
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental_sjtree_batch", articles),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
                    engine.register_query(query.clone()).unwrap();
                    engine.ingest(events).unwrap().len() as u64
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("naive_expansion", articles),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut graph = DynamicGraph::unbounded();
                    let mut matcher = NaiveEdgeExpansion::new(query.clone());
                    let mut matches = 0u64;
                    for ev in events {
                        let r = graph.ingest(ev);
                        let edge = graph.edge(r.edge).unwrap().clone();
                        matches += matcher.process_edge(&graph, &edge).len() as u64;
                    }
                    matches
                })
            },
        );

        // Repeated search is orders of magnitude slower; only run it at the
        // smallest size to keep the bench finite.
        if articles <= 200 {
            group.bench_with_input(
                BenchmarkId::new("repeated_search", articles),
                &events,
                |b, events| {
                    b.iter(|| {
                        let mut graph = DynamicGraph::unbounded();
                        let mut matcher = RepeatedSearchMatcher::new(query.clone());
                        let mut matches = 0u64;
                        for ev in events {
                            graph.ingest(ev);
                            matches += matcher.process_update(&graph).len() as u64;
                        }
                        matches
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
