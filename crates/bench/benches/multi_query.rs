//! Multi-query sharing: throughput of a template-derived query registry with
//! the canonical primitive index on vs. off.
//!
//! StreamWorks is a registry system; this bench measures the scaling lever
//! the shared primitive index provides. N tenants register instances of the
//! *labelled pair* template (`MultiTenantGenerator` with
//! `include_colocation: false`) with labels drawn from a 4-label pool: the
//! classic detection regime where every query searches on every event but
//! only the planted bursts ever match, so per-event cost is local search —
//! exactly what the index deduplicates. The distinct-primitive count stays a
//! small constant (one entry per label) while the registry grows. With
//! sharing **on** (`EngineBuilder::shared_matching(true)`, the default),
//! per-event local search runs once per distinct primitive and fans out;
//! with sharing **off**, every query runs its own searches — the
//! `O(#queries)` per-event wall the index removes.
//!
//! Expected shape: at 1 query the arms are equal (with one tenant the engine
//! bypasses the shared path unless a primitive fans out); from 16 queries up
//! the `shared` arm's throughput flattens while `per_query` decays roughly
//! linearly in the registry size — the PR 5 acceptance bar is ≥ 3x at 128
//! queries. Event counts shrink as the registry grows to keep the
//! sharing-off arm finite; throughput is per event, so arms at one registry
//! size stay comparable. (A registry that *matches* on most events — the
//! co-location template — is bounded by match fan-out, not search; the
//! `exp_throughput --tenants` experiment covers that mixed regime.)
//!
//! Engine construction and query registration happen in the untimed
//! `iter_batched` setup, so both arms time ingest alone — registration cost
//! (planning, canonicalisation) no longer pollutes the throughput numbers.
//!
//! Set `STREAMWORKS_BENCH_SMOKE=1` to run on CI-sized inputs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use streamworks_core::ContinuousQueryEngine;
use streamworks_graph::EdgeEvent;
use streamworks_query::QueryGraph;
use streamworks_workloads::{MultiTenantGenerator, NewsConfig, TenantConfig};

fn registry_and_events(
    queries: usize,
    events_wanted: usize,
    distinct_labels: bool,
) -> (Vec<QueryGraph>, Vec<EdgeEvent>) {
    let workload = MultiTenantGenerator::new(TenantConfig {
        tenants: queries,
        include_colocation: false,
        distinct_labels,
        news: NewsConfig {
            // Articles are ~4 events each; size the stream to the request.
            articles: (events_wanted / 4).max(20),
            ..Default::default()
        },
        ..Default::default()
    })
    .generate();
    let mut queries_vec = workload.queries;
    queries_vec.truncate(queries);
    (queries_vec, workload.events)
}

/// Builds the engine with the registry already registered — run in the
/// untimed `iter_batched` setup so the timed region is ingest only.
fn engine_with(queries: &[QueryGraph], shared: bool) -> ContinuousQueryEngine {
    let mut engine = ContinuousQueryEngine::builder()
        .shared_matching(shared)
        .build()
        .unwrap();
    for q in queries {
        engine.register_query(q.clone()).unwrap();
    }
    engine
}

fn bench_multi_query(c: &mut Criterion) {
    let smoke = std::env::var_os("STREAMWORKS_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);

    for &queries in &[1usize, 16, 128, 1024] {
        // Keep the sharing-off arm finite at large registry sizes; both arms
        // of one size see the same stream, and throughput is per event.
        let events_wanted = if smoke {
            200
        } else {
            match queries {
                0..=16 => 3_000,
                17..=128 => 1_200,
                _ => 400,
            }
        };
        let (registry, events) = registry_and_events(queries, events_wanted, false);
        group.throughput(Throughput::Elements(events.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("shared", queries),
            &(&registry, &events),
            |b, (registry, events)| {
                b.iter_batched(
                    || engine_with(registry, true),
                    |mut engine| engine.ingest(*events).unwrap().len() as u64,
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_query", queries),
            &(&registry, &events),
            |b, (registry, events)| {
                b.iter_batched(
                    || engine_with(registry, false),
                    |mut engine| engine.ingest(*events).unwrap().len() as u64,
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// The predicate-constant-lifting regime: every tenant watches its **own**
/// label (`TenantConfig::distinct_labels`), so no two templates are exact
/// copies and leaf-level sharing finds nothing to intern — the PR 5 layer's
/// worst case. Constant lifting abstracts the labels to slots, collapses the
/// whole registry to one shared subtree entry, and dispatches embeddings by
/// bound constant in O(1); the `lifted` arm should flatten with the registry
/// size while `per_query` decays linearly, mirroring the `shared` arm of the
/// pooled-label group above.
fn bench_multi_query_lifted(c: &mut Criterion) {
    let smoke = std::env::var_os("STREAMWORKS_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("multi_query_lifted");
    group.sample_size(10);

    for &queries in &[16usize, 128, 1024] {
        let events_wanted = if smoke {
            200
        } else {
            match queries {
                0..=16 => 3_000,
                17..=128 => 1_200,
                _ => 400,
            }
        };
        let (registry, events) = registry_and_events(queries, events_wanted, true);
        group.throughput(Throughput::Elements(events.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("lifted", queries),
            &(&registry, &events),
            |b, (registry, events)| {
                b.iter_batched(
                    || engine_with(registry, true),
                    |mut engine| engine.ingest(*events).unwrap().len() as u64,
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_query", queries),
            &(&registry, &events),
            |b, (registry, events)| {
                b.iter_batched(
                    || engine_with(registry, false),
                    |mut engine| engine.ingest(*events).unwrap().len() as u64,
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multi_query, bench_multi_query_lifted);
criterion_main!(benches);
