//! Experiments E4/E7: the same query executed under different SJ-Tree plans
//! (selectivity-ordered vs. frequency-blind vs. balanced), as in paper Fig. 7
//! and the §4.1 design goal of pushing selective primitives to the bottom.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::Duration;
use streamworks_query::{
    BalancedPairs, CostBasedOrdered, DecompositionStrategy, LeftDeepEdgeChain, Planner,
    SelectivityOrdered, TreeShapeKind, TriadWedges,
};
use streamworks_workloads::queries::news_triple_query;
use streamworks_workloads::{NewsConfig, NewsStreamGenerator};

fn bench_plans(c: &mut Criterion) {
    let workload = NewsStreamGenerator::new(NewsConfig {
        articles: 500,
        planted_events: vec![("politics".into(), 3)],
        ..Default::default()
    })
    .generate();
    let query = news_triple_query(Duration::from_mins(10));

    // Statistics learned from a warm-up pass drive the informed plan.
    let mut warm = ContinuousQueryEngine::builder().build().unwrap();
    for ev in &workload.events {
        warm.ingest(ev).unwrap();
    }

    let strategies: Vec<(&str, Box<dyn DecompositionStrategy>)> = vec![
        ("selectivity_pairs", Box::new(SelectivityOrdered::default())),
        (
            "selectivity_single",
            Box::new(SelectivityOrdered {
                max_primitive_size: 1,
            }),
        ),
        ("blind_edge_chain", Box::new(LeftDeepEdgeChain)),
        ("balanced_pairs", Box::new(BalancedPairs)),
        ("cost_based", Box::new(CostBasedOrdered::default())),
        ("triad_wedges", Box::new(TriadWedges::default())),
    ];

    let mut group = c.benchmark_group("plan_comparison");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.events.len() as u64));
    for (name, strategy) in &strategies {
        let plan = Planner::new()
            .with_statistics(warm.summary(), warm.graph())
            .tree_kind(TreeShapeKind::LeftDeep)
            .plan_with(query.clone(), strategy.as_ref())
            .unwrap();
        group.bench_with_input(BenchmarkId::new("plan", name), &plan, |b, plan| {
            b.iter(|| {
                let mut engine = ContinuousQueryEngine::new(EngineConfig {
                    max_matches_per_node: Some(1_000_000),
                    ..Default::default()
                });
                let id = engine.register_plan(plan.clone());
                for ev in &workload.events {
                    engine.ingest(ev).unwrap();
                }
                engine.metrics(id).unwrap().complete_matches
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plans);
criterion_main!(benches);
