//! Experiment E10: how per-edge cost scales with query size (multi-relational
//! path queries of 2–8 edges) for the incremental engine vs. the naive
//! expansion baseline, on a random stream with planted pattern instances.
//!
//! The paths alternate edge types (`rel_a`/`rel_b`/`rel_c`) so the leaf
//! primitives stay selective — the paper's setting is multi-relational graphs
//! where decomposition exploits exactly this kind of type selectivity. A
//! single-type path over a dense random stream degenerates into a partial-
//! match explosion for *any* matcher and is exercised separately by the unit
//! tests on match caps, not benchmarked here.

use std::time::Duration as StdDuration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use streamworks_baseline::NaiveEdgeExpansion;
use streamworks_core::{ContinuousQueryEngine, EngineConfig};
use streamworks_graph::{Duration, DynamicGraph, EdgeEvent};
use streamworks_workloads::queries::typed_path_query;
use streamworks_workloads::{plant_pattern, uniform_stream, RandomConfig};

const PATH_TYPES: [&str; 3] = ["rel_a", "rel_b", "rel_c"];

/// Query window: short enough that the stream (≈160 s of stream time) rolls
/// through several windows, as it would in production, bounding the live
/// partial-match population.
fn window() -> Duration {
    Duration::from_secs(30)
}

fn stream_for(query_edges: usize) -> Vec<EdgeEvent> {
    let base = uniform_stream(&RandomConfig {
        vertices: 3_000,
        edges: 8_000,
        edge_types: PATH_TYPES.iter().map(|t| (*t).to_owned()).collect(),
        edge_interval: Duration::from_millis(20),
        ..Default::default()
    });
    let query = typed_path_query(query_edges, &PATH_TYPES, window());
    plant_pattern(base, &query, 5, Duration::from_millis(100))
}

fn bench_query_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_size_scaling");
    group.sample_size(10);
    group.measurement_time(StdDuration::from_secs(8));

    for &edges in &[2usize, 4, 6, 8] {
        let query = typed_path_query(edges, &PATH_TYPES, window());
        let events = stream_for(edges);
        group.throughput(Throughput::Elements(events.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("incremental_sjtree", edges),
            &events,
            |b, events| {
                b.iter(|| {
                    // Summary maintenance is disabled so the comparison is
                    // matcher-vs-matcher; the baselines keep no statistics.
                    let config = EngineConfig {
                        maintain_summary: false,
                        ..EngineConfig::default()
                    };
                    let mut engine = ContinuousQueryEngine::new(config);
                    engine.register_query(query.clone()).unwrap();
                    let mut matches = 0u64;
                    for ev in events {
                        matches += engine.ingest(ev).unwrap().len() as u64;
                    }
                    matches
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_expansion", edges),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut graph = DynamicGraph::unbounded();
                    let mut matcher = NaiveEdgeExpansion::new(query.clone());
                    let mut matches = 0u64;
                    for ev in events {
                        let r = graph.ingest(ev);
                        let edge = graph.edge(r.edge).unwrap().clone();
                        matches += matcher.process_edge(&graph, &edge).len() as u64;
                    }
                    matches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_size);
criterion_main!(benches);
