//! Regular-path-query throughput: the windowed RPQ class on its target
//! workloads.
//!
//! Two scenarios, both with planted multi-hop chains in Zipfian background
//! noise (see `streamworks_workloads::rpq`):
//!
//! * `lateral` — cyber lateral movement, `login flow* exploit`. Almost all
//!   background traffic carries alphabet labels (flows), so this measures
//!   the product-graph expansion cost under heavy noise.
//! * `citations` — news citation chains, `cites cites*`. Every edge is in
//!   the alphabet and every edge extends some tree: the worst-case regime
//!   where spanning-tree state grows with the live window.
//!
//! Engine construction and RPQ registration run in the untimed
//! `iter_batched` setup; the timed region is ingest alone. Throughput is
//! events/s over the whole stream (background + planted chains).
//!
//! Set `STREAMWORKS_BENCH_SMOKE=1` to run on CI-sized inputs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use streamworks_core::ContinuousQueryEngine;
use streamworks_graph::{Duration, EdgeEvent};
use streamworks_query::RpqQuery;
use streamworks_workloads::{
    citation_chain_rpq, lateral_movement_rpq, CitationChainGenerator, CitationConfig,
    LateralMovementConfig, LateralMovementGenerator,
};

fn lateral_workload(edges: usize) -> (RpqQuery, Vec<EdgeEvent>) {
    let workload = LateralMovementGenerator::new(LateralMovementConfig {
        hosts: (edges / 40).max(16),
        background_edges: edges,
        intrusions: vec![0, 2, 4, 8],
        ..Default::default()
    })
    .generate();
    (
        lateral_movement_rpq(Duration::from_secs(600)),
        workload.events,
    )
}

fn citation_workload(edges: usize) -> (RpqQuery, Vec<EdgeEvent>) {
    let workload = CitationChainGenerator::new(CitationConfig {
        articles: (edges / 10).max(10),
        background_edges: edges,
        chains: vec![3, 5, 8],
        ..Default::default()
    })
    .generate();
    // A short window keeps tree state bounded by expiry rather than by the
    // stream length — the regime the min-heap drain is built for.
    (citation_chain_rpq(Duration::from_secs(60)), workload.events)
}

fn engine_with(rpq: &RpqQuery) -> ContinuousQueryEngine {
    let mut engine = ContinuousQueryEngine::builder().build().unwrap();
    engine.register_rpq(rpq.clone());
    engine
}

fn bench_rpq(c: &mut Criterion) {
    let smoke = std::env::var_os("STREAMWORKS_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("rpq");
    group.sample_size(10);

    let sizes: &[usize] = if smoke { &[500] } else { &[5_000, 20_000] };
    for &edges in sizes {
        for (scenario, (rpq, events)) in [
            ("lateral", lateral_workload(edges)),
            ("citations", citation_workload(edges)),
        ] {
            group.throughput(Throughput::Elements(events.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(scenario, edges),
                &(&rpq, &events),
                |b, (rpq, events)| {
                    b.iter_batched(
                        || engine_with(rpq),
                        |mut engine| engine.ingest(*events).unwrap().len() as u64,
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rpq);
criterion_main!(benches);
