//! Regular-path-query workloads: multi-hop lateral movement and citation
//! chains.
//!
//! The SJ-Tree query class matches *fixed-shape* patterns; the motifs here
//! have **unbounded hop count** — an intruder logs into a host and pivots
//! through an arbitrary number of internal flows before exploiting a target,
//! an article chain cites its way back to a source story — which is exactly
//! what the engine's second query class (windowed RPQs, see
//! `streamworks_core`'s `register_rpq`) expresses as `login flow* exploit`
//! or `cites cites*`.
//!
//! Both generators plant ground-truth instances into Zipf-skewed background
//! noise, mirroring [`crate::CyberTrafficGenerator`] and
//! [`crate::NewsStreamGenerator`], so detection experiments can compute
//! recall for the RPQ class too.

use crate::schema::{cyber, news};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};
use streamworks_query::{parse_rpq, RpqQuery};

/// The `login flow* exploit` lateral-movement RPQ over the cyber schema: a
/// user logs into an entry host, pivots through any number of internal
/// flows, and exploits a target — all inside `window`.
pub fn lateral_movement_rpq(window: Duration) -> RpqQuery {
    parse_rpq(&format!(
        "RPQ lateral_movement WINDOW {}s PATH {} {}* {}",
        window.as_secs().max(1),
        cyber::LOGIN,
        cyber::FLOW,
        cyber::EXPLOIT,
    ))
    .expect("static pattern is valid")
}

/// The `cites cites*` citation-chain RPQ over the news schema: an article
/// reachable from another through one or more citation hops inside `window`.
pub fn citation_chain_rpq(window: Duration) -> RpqQuery {
    parse_rpq(&format!(
        "RPQ citation_chain WINDOW {}s PATH {} {}*",
        window.as_secs().max(1),
        news::CITES,
        news::CITES,
    ))
    .expect("static pattern is valid")
}

/// Ground truth of one planted multi-hop chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedChain {
    /// Key of the chain's start vertex (the logging-in user, or the newest
    /// citing article).
    pub source: String,
    /// Key of the chain's end vertex (the exploited target, or the cited
    /// source story).
    pub target: String,
    /// Stream time of the chain's first edge.
    pub start: Timestamp,
    /// Stream time of the chain's last edge.
    pub end: Timestamp,
    /// Total edges in the chain (login + pivots + exploit, or citations).
    pub hops: usize,
}

/// Configuration of the lateral-movement generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LateralMovementConfig {
    /// Distinct hosts in the background traffic.
    pub hosts: usize,
    /// Background edges (flows, DNS lookups, benign logins).
    pub background_edges: usize,
    /// Mean stream-time gap between consecutive background edges.
    pub edge_interval: Duration,
    /// Zipf exponent of host popularity.
    pub skew: f64,
    /// Planted intrusions, as the number of *pivot flows* between the login
    /// and the exploit (0 = login directly followed by exploit).
    pub intrusions: Vec<usize>,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for LateralMovementConfig {
    fn default() -> Self {
        LateralMovementConfig {
            hosts: 400,
            background_edges: 8_000,
            edge_interval: Duration::from_millis(10),
            skew: 1.1,
            intrusions: vec![0, 2, 4],
            seed: 7,
        }
    }
}

/// The generated workload: an edge stream plus planted-chain ground truth.
#[derive(Debug, Clone)]
pub struct RpqWorkload {
    /// All events in timestamp order.
    pub events: Vec<EdgeEvent>,
    /// Ground truth of the planted chains.
    pub chains: Vec<PlantedChain>,
}

/// Generates intrusion chains (`login flow* exploit`) planted into Zipfian
/// flow/DNS background traffic.
#[derive(Debug, Clone)]
pub struct LateralMovementGenerator {
    config: LateralMovementConfig,
}

impl LateralMovementGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: LateralMovementConfig) -> Self {
        LateralMovementGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LateralMovementConfig {
        &self.config
    }

    fn host_name(idx: usize) -> String {
        format!(
            "10.{}.{}.{}",
            (idx >> 16) & 0xff,
            (idx >> 8) & 0xff,
            idx & 0xff
        )
    }

    /// Generates the full workload, all events sorted by timestamp.
    pub fn generate(&self) -> RpqWorkload {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = Zipf::new(cfg.hosts as u64, cfg.skew).expect("valid zipf parameters");
        let mut events: Vec<EdgeEvent> =
            Vec::with_capacity(cfg.background_edges + cfg.intrusions.iter().sum::<usize>() + 8);

        // Background: flows and DNS lookups between Zipf-popular hosts, plus
        // benign logins that never lead anywhere.
        let interval = cfg.edge_interval.as_micros().max(1);
        let mut now = 0i64;
        for _ in 0..cfg.background_edges {
            now += rng.gen_range(1..=2 * interval);
            let src = Self::host_name(zipf.sample(&mut rng) as usize - 1);
            let mut dst = Self::host_name(zipf.sample(&mut rng) as usize - 1);
            if dst == src {
                dst = Self::host_name(rng.gen_range(0..cfg.hosts));
            }
            let ts = Timestamp::from_micros(now);
            let roll: f64 = rng.gen();
            let ev = if roll < 0.12 {
                EdgeEvent::new(src, cyber::IP, dst, cyber::IP, cyber::DNS, ts)
            } else if roll < 0.15 {
                let user = format!("user{}", rng.gen_range(0..cfg.hosts / 10 + 1));
                EdgeEvent::new(user, cyber::USER, dst, cyber::IP, cyber::LOGIN, ts)
            } else {
                EdgeEvent::new(src, cyber::IP, dst, cyber::IP, cyber::FLOW, ts)
            };
            events.push(ev);
        }
        let background_end = now;

        // Planted intrusions, spread over the background time range. Chain
        // hosts are fresh keys so the ground truth is unambiguous.
        let mut chains = Vec::new();
        let n = cfg.intrusions.len().max(1) as i64;
        for (i, &pivots) in cfg.intrusions.iter().enumerate() {
            let start = background_end * (i as i64 + 1) / (n + 1);
            let user = format!("intruder-{i}");
            let mut t = start + 1_000;
            let first = Timestamp::from_micros(t);
            let mut at = format!("entry-{i}");
            events.push(EdgeEvent::new(
                user.clone(),
                cyber::USER,
                at.clone(),
                cyber::IP,
                cyber::LOGIN,
                first,
            ));
            for p in 0..pivots {
                let next = format!("pivot-{i}-{p}");
                t += 1_500;
                events.push(EdgeEvent::new(
                    at,
                    cyber::IP,
                    next.clone(),
                    cyber::IP,
                    cyber::FLOW,
                    Timestamp::from_micros(t),
                ));
                at = next;
            }
            let target = format!("target-{i}");
            t += 1_500;
            events.push(EdgeEvent::new(
                at,
                cyber::IP,
                target.clone(),
                cyber::IP,
                cyber::EXPLOIT,
                Timestamp::from_micros(t),
            ));
            chains.push(PlantedChain {
                source: user,
                target,
                start: first,
                end: Timestamp::from_micros(t),
                hops: pivots + 2,
            });
        }

        events.sort_by_key(|e| e.timestamp);
        RpqWorkload { events, chains }
    }
}

/// Configuration of the citation-chain generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CitationConfig {
    /// Distinct background articles.
    pub articles: usize,
    /// Background citation edges (Zipf-popular targets, so hub stories
    /// accumulate citations).
    pub background_edges: usize,
    /// Mean stream-time gap between consecutive citations.
    pub edge_interval: Duration,
    /// Zipf exponent of article popularity.
    pub skew: f64,
    /// Planted chains, as the number of citation hops each (>= 1).
    pub chains: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            articles: 600,
            background_edges: 6_000,
            edge_interval: Duration::from_millis(20),
            skew: 1.05,
            chains: vec![3, 5],
            seed: 11,
        }
    }
}

/// Generates article citation streams with planted multi-hop chains
/// (newest article → … → source story).
#[derive(Debug, Clone)]
pub struct CitationChainGenerator {
    config: CitationConfig,
}

impl CitationChainGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: CitationConfig) -> Self {
        CitationChainGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CitationConfig {
        &self.config
    }

    /// Generates the full workload, all events sorted by timestamp.
    pub fn generate(&self) -> RpqWorkload {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = Zipf::new(cfg.articles as u64, cfg.skew).expect("valid zipf parameters");
        let mut events: Vec<EdgeEvent> =
            Vec::with_capacity(cfg.background_edges + cfg.chains.iter().sum::<usize>());

        let interval = cfg.edge_interval.as_micros().max(1);
        let mut now = 0i64;
        for _ in 0..cfg.background_edges {
            now += rng.gen_range(1..=2 * interval);
            let src = format!("article-{}", rng.gen_range(0..cfg.articles));
            let mut dst = format!("article-{}", zipf.sample(&mut rng) as usize - 1);
            if dst == src {
                dst = format!(
                    "article-{}",
                    (zipf.sample(&mut rng) as usize) % cfg.articles
                );
            }
            events.push(EdgeEvent::new(
                src,
                news::ARTICLE,
                dst,
                news::ARTICLE,
                news::CITES,
                Timestamp::from_micros(now),
            ));
        }
        let background_end = now;

        // Planted chains: chain-{i}-0 cites chain-{i}-1 cites ... with fresh
        // article keys, so ground truth is unambiguous.
        let mut chains = Vec::new();
        let n = cfg.chains.len().max(1) as i64;
        for (i, &hops) in cfg.chains.iter().enumerate() {
            let hops = hops.max(1);
            let start = background_end * (i as i64 + 1) / (n + 1);
            let mut t = start + 1_000;
            let first = Timestamp::from_micros(t);
            for h in 0..hops {
                events.push(EdgeEvent::new(
                    format!("chain-{i}-{h}"),
                    news::ARTICLE,
                    format!("chain-{i}-{}", h + 1),
                    news::ARTICLE,
                    news::CITES,
                    Timestamp::from_micros(t),
                ));
                t += 1_000;
            }
            chains.push(PlantedChain {
                source: format!("chain-{i}-0"),
                target: format!("chain-{i}-{hops}"),
                start: first,
                end: Timestamp::from_micros(t - 1_000),
                hops,
            });
        }

        events.sort_by_key(|e| e.timestamp);
        RpqWorkload { events, chains }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lateral_movement_generation_is_deterministic() {
        let cfg = LateralMovementConfig {
            background_edges: 500,
            ..Default::default()
        };
        let a = LateralMovementGenerator::new(cfg.clone()).generate();
        let b = LateralMovementGenerator::new(cfg).generate();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[42], b.events[42]);
        assert_eq!(a.chains, b.chains);
    }

    #[test]
    fn planted_chains_are_complete_and_ordered() {
        let w = LateralMovementGenerator::new(LateralMovementConfig {
            background_edges: 300,
            intrusions: vec![0, 3],
            ..Default::default()
        })
        .generate();
        assert!(w
            .events
            .windows(2)
            .all(|p| p[0].timestamp <= p[1].timestamp));
        assert_eq!(w.chains.len(), 2);
        assert_eq!(w.chains[0].hops, 2); // login + exploit
        assert_eq!(w.chains[1].hops, 5); // login + 3 pivots + exploit
                                         // Every planted chain's edges are present in the stream.
        for (i, chain) in w.chains.iter().enumerate() {
            let login = w
                .events
                .iter()
                .filter(|e| e.src_key == chain.source && e.edge_type == cyber::LOGIN)
                .count();
            assert_eq!(login, 1, "intrusion {i} has one login");
            let exploit = w
                .events
                .iter()
                .filter(|e| e.dst_key == chain.target && e.edge_type == cyber::EXPLOIT)
                .count();
            assert_eq!(exploit, 1, "intrusion {i} has one exploit");
        }
    }

    #[test]
    fn citation_chains_link_source_to_target() {
        let w = CitationChainGenerator::new(CitationConfig {
            background_edges: 200,
            chains: vec![4],
            ..Default::default()
        })
        .generate();
        let chain = &w.chains[0];
        assert_eq!(chain.hops, 4);
        // Follow the planted chain edge by edge.
        let mut at = chain.source.clone();
        for _ in 0..chain.hops {
            let next = w
                .events
                .iter()
                .find(|e| e.src_key == at && e.src_key.starts_with("chain-"))
                .expect("chain edge present");
            at = next.dst_key.clone();
        }
        assert_eq!(at, chain.target);
    }

    #[test]
    fn rpq_constructors_compile_to_usable_dfas() {
        let lateral = lateral_movement_rpq(Duration::from_secs(600));
        let dfa = lateral.compile();
        assert!(dfa.accepts([cyber::LOGIN, cyber::EXPLOIT]));
        assert!(dfa.accepts([cyber::LOGIN, cyber::FLOW, cyber::FLOW, cyber::EXPLOIT]));
        assert!(!dfa.accepts([cyber::LOGIN, cyber::FLOW]));

        let chain = citation_chain_rpq(Duration::from_secs(600));
        let dfa = chain.compile();
        assert!(dfa.accepts([news::CITES]));
        assert!(dfa.accepts([news::CITES, news::CITES, news::CITES]));
        assert!(!dfa.accepts(Vec::<&str>::new()));
    }
}
