//! Synthetic news / social-media stream (the New York Times data substitute).
//!
//! Paper §5.2 and Figs. 2/5/6 run labelled queries ("politics", "accident",
//! ...) over a multi-relational news graph built from New York Times linked
//! data. That dataset requires an API licence, so this module generates a
//! synthetic stream with the same schema (articles mentioning keywords,
//! located at places, about people and organisations), Zipfian keyword and
//! location popularity, and *planted co-occurrence events*: bursts of several
//! articles sharing the same labelled keyword and location inside a short
//! window, which is exactly what the Fig. 2 query family detects.

use crate::schema::news as types;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};

/// Ground truth of one planted co-occurrence event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedEvent {
    /// The keyword label shared by the burst (e.g. "politics").
    pub keyword: String,
    /// The location shared by the burst.
    pub location: String,
    /// Articles participating in the burst.
    pub articles: Vec<String>,
    /// Stream time of the first article of the burst.
    pub start: Timestamp,
    /// Stream time of the last article of the burst.
    pub end: Timestamp,
}

/// Configuration of the news stream generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NewsConfig {
    /// Number of background articles.
    pub articles: usize,
    /// Distinct keywords (popularity is Zipf-distributed).
    pub keywords: usize,
    /// Distinct locations.
    pub locations: usize,
    /// Distinct people.
    pub people: usize,
    /// Distinct organisations.
    pub organizations: usize,
    /// Keywords mentioned per article (upper bound; at least 1).
    pub max_keywords_per_article: usize,
    /// Mean stream-time gap between consecutive articles.
    pub article_interval: Duration,
    /// Planted co-occurrence bursts: (event label, number of articles).
    pub planted_events: Vec<(String, usize)>,
    /// Zipf exponent for keyword/location popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig {
            articles: 2_000,
            keywords: 300,
            locations: 80,
            people: 200,
            organizations: 60,
            max_keywords_per_article: 4,
            article_interval: Duration::from_secs(20),
            planted_events: vec![
                ("politics".to_owned(), 3),
                ("accident".to_owned(), 3),
                ("earthquake".to_owned(), 4),
            ],
            skew: 1.05,
            seed: 7,
        }
    }
}

/// The generated news workload.
#[derive(Debug, Clone)]
pub struct NewsWorkload {
    /// All events in timestamp order.
    pub events: Vec<EdgeEvent>,
    /// Planted co-occurrence bursts.
    pub planted: Vec<PlantedEvent>,
}

/// Synthetic news stream generator.
#[derive(Debug, Clone)]
pub struct NewsStreamGenerator {
    config: NewsConfig,
}

impl NewsStreamGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: NewsConfig) -> Self {
        NewsStreamGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NewsConfig {
        &self.config
    }

    /// Generates the full workload in timestamp order.
    pub fn generate(&self) -> NewsWorkload {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let keyword_dist = Zipf::new(cfg.keywords as u64, cfg.skew).expect("zipf");
        let location_dist = Zipf::new(cfg.locations as u64, cfg.skew).expect("zipf");
        let mut events = Vec::new();

        let interval = cfg.article_interval.as_micros().max(1);
        let mut now = 0i64;
        for a in 0..cfg.articles {
            now += rng.gen_range(1..=2 * interval);
            let article = format!("article-{a}");
            let mut t = now;
            // Keywords.
            let n_kw = rng.gen_range(1..=cfg.max_keywords_per_article.max(1));
            for _ in 0..n_kw {
                let kw = format!("keyword-{}", keyword_dist.sample(&mut rng) as usize - 1);
                t += 1;
                events.push(
                    EdgeEvent::new(
                        article.clone(),
                        types::ARTICLE,
                        kw,
                        types::KEYWORD,
                        types::MENTIONS,
                        Timestamp::from_micros(t),
                    )
                    .with_attr("weight", rng.gen_range(1..10) as i64),
                );
            }
            // Location.
            let loc = format!("location-{}", location_dist.sample(&mut rng) as usize - 1);
            t += 1;
            events.push(EdgeEvent::new(
                article.clone(),
                types::ARTICLE,
                loc,
                types::LOCATION,
                types::LOCATED,
                Timestamp::from_micros(t),
            ));
            // Person / organisation with some probability.
            if rng.gen_bool(0.4) {
                let person = format!("person-{}", rng.gen_range(0..cfg.people.max(1)));
                t += 1;
                events.push(EdgeEvent::new(
                    article.clone(),
                    types::ARTICLE,
                    person.clone(),
                    types::PERSON,
                    types::ABOUT_PERSON,
                    Timestamp::from_micros(t),
                ));
                if rng.gen_bool(0.3) {
                    let org = format!("org-{}", rng.gen_range(0..cfg.organizations.max(1)));
                    t += 1;
                    events.push(EdgeEvent::new(
                        person,
                        types::PERSON,
                        org,
                        types::ORGANIZATION,
                        types::AFFILIATED,
                        Timestamp::from_micros(t),
                    ));
                }
            }
            if rng.gen_bool(0.25) {
                let org = format!("org-{}", rng.gen_range(0..cfg.organizations.max(1)));
                t += 1;
                events.push(EdgeEvent::new(
                    article.clone(),
                    types::ARTICLE,
                    org,
                    types::ORGANIZATION,
                    types::ABOUT_ORG,
                    Timestamp::from_micros(t),
                ));
            }
        }
        let background_end = now;

        // Planted co-occurrence bursts.
        let mut planted = Vec::new();
        let n_events = cfg.planted_events.len().max(1) as i64;
        for (i, (label, article_count)) in cfg.planted_events.iter().enumerate() {
            let start = background_end * (i as i64 + 1) / (n_events + 1);
            let location = format!("location-{}", rng.gen_range(0..cfg.locations.max(1)));
            let keyword = format!("topic-{label}");
            let mut articles = Vec::new();
            let mut t = start;
            for a in 0..*article_count {
                let article = format!("burst-{label}-{a}");
                t += 60 * 1_000_000; // one article per minute within the burst
                events.push(
                    EdgeEvent::new(
                        article.clone(),
                        types::ARTICLE,
                        keyword.clone(),
                        types::KEYWORD,
                        types::MENTIONS,
                        Timestamp::from_micros(t),
                    )
                    .with_attr("label", label.as_str()),
                );
                t += 1_000_000;
                events.push(EdgeEvent::new(
                    article.clone(),
                    types::ARTICLE,
                    location.clone(),
                    types::LOCATION,
                    types::LOCATED,
                    Timestamp::from_micros(t),
                ));
                articles.push(article);
            }
            planted.push(PlantedEvent {
                keyword,
                location,
                articles,
                start: Timestamp::from_micros(start + 60 * 1_000_000),
                end: Timestamp::from_micros(t),
            });
        }

        events.sort_by_key(|e| e.timestamp);
        NewsWorkload { events, planted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_ordered_multi_relational_stream() {
        let w = NewsStreamGenerator::new(NewsConfig {
            articles: 300,
            ..Default::default()
        })
        .generate();
        assert!(w
            .events
            .windows(2)
            .all(|p| p[0].timestamp <= p[1].timestamp));
        for et in [types::MENTIONS, types::LOCATED, types::ABOUT_PERSON] {
            assert!(w.events.iter().any(|e| e.edge_type == et), "missing {et}");
        }
    }

    #[test]
    fn planted_bursts_share_keyword_and_location() {
        let w = NewsStreamGenerator::new(NewsConfig {
            articles: 100,
            planted_events: vec![("politics".into(), 3)],
            ..Default::default()
        })
        .generate();
        assert_eq!(w.planted.len(), 1);
        let burst = &w.planted[0];
        assert_eq!(burst.articles.len(), 3);
        // Every burst article has a mention of the burst keyword and a located
        // edge to the burst location.
        for article in &burst.articles {
            assert!(w.events.iter().any(|e| e.src_key == *article
                && e.edge_type == types::MENTIONS
                && e.dst_key == burst.keyword));
            assert!(w.events.iter().any(|e| e.src_key == *article
                && e.edge_type == types::LOCATED
                && e.dst_key == burst.location));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = NewsConfig {
            articles: 100,
            ..Default::default()
        };
        let a = NewsStreamGenerator::new(cfg.clone()).generate();
        let b = NewsStreamGenerator::new(cfg).generate();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[42], b.events[42]);
    }

    #[test]
    fn keyword_popularity_is_skewed() {
        let w = NewsStreamGenerator::new(NewsConfig {
            articles: 2_000,
            planted_events: vec![],
            ..Default::default()
        })
        .generate();
        let mut counts = std::collections::HashMap::new();
        for e in w.events.iter().filter(|e| e.edge_type == types::MENTIONS) {
            *counts.entry(e.dst_key.clone()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = counts.values().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * mean);
    }
}
