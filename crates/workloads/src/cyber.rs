//! Synthetic internet-traffic workload (the CAIDA-trace substitute).
//!
//! Paper §6.1 demonstrates on CAIDA internet traces (50–100 M records/hour).
//! Those traces are not redistributable, so this module generates a synthetic
//! flow-level stream with the structural properties the matcher actually
//! exercises: a power-law (hub-skewed) host popularity distribution, several
//! relation types, monotone timestamps at a configurable rate, and *injected
//! attack motifs* (Smurf DDoS reflector fan-out, worm-spread cascades, port
//! scans — the patterns of paper Fig. 3) with recorded ground truth so that
//! detection experiments can compute recall.

use crate::schema::cyber as types;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};

/// Which attack motif an injected event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Smurf DDoS: attacker triggers ICMP requests at amplifiers, which all
    /// reply to the victim.
    SmurfDdos,
    /// Worm spread: an infected host exploits targets, which in turn exploit
    /// further targets.
    WormSpread,
    /// Port scan: one source probes many distinct targets in a short burst.
    PortScan,
}

/// Ground-truth record of one injected attack instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedAttack {
    /// Attack motif.
    pub kind: AttackKind,
    /// Stream time of the first injected edge.
    pub start: Timestamp,
    /// Stream time of the last injected edge.
    pub end: Timestamp,
    /// The key of the attacking / initiating host.
    pub attacker: String,
    /// The key of the primary victim (or first infected target).
    pub victim: String,
    /// Number of edges injected for this instance.
    pub edges: usize,
}

/// Configuration of the traffic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CyberConfig {
    /// Number of distinct hosts in the background traffic.
    pub hosts: usize,
    /// Number of background edges to generate.
    pub background_edges: usize,
    /// Mean stream-time gap between consecutive background edges.
    pub edge_interval: Duration,
    /// Zipf exponent of host popularity (higher = more hub-skewed).
    pub skew: f64,
    /// Fraction of background edges that are DNS lookups (the rest are flows,
    /// with a small share of logins).
    pub dns_fraction: f64,
    /// Attack instances to inject, as (kind, fan-out / cascade size).
    pub attacks: Vec<(AttackKind, usize)>,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for CyberConfig {
    fn default() -> Self {
        CyberConfig {
            hosts: 500,
            background_edges: 10_000,
            edge_interval: Duration::from_millis(10),
            skew: 1.1,
            dns_fraction: 0.15,
            attacks: vec![
                (AttackKind::SmurfDdos, 5),
                (AttackKind::PortScan, 8),
                (AttackKind::WormSpread, 4),
            ],
            seed: 42,
        }
    }
}

/// The generated workload: an edge stream plus ground truth.
#[derive(Debug, Clone)]
pub struct CyberWorkload {
    /// All events in timestamp order.
    pub events: Vec<EdgeEvent>,
    /// Ground truth of the injected attacks.
    pub attacks: Vec<InjectedAttack>,
}

/// Synthetic traffic generator.
#[derive(Debug, Clone)]
pub struct CyberTrafficGenerator {
    config: CyberConfig,
}

impl CyberTrafficGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: CyberConfig) -> Self {
        CyberTrafficGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CyberConfig {
        &self.config
    }

    fn host_name(idx: usize) -> String {
        format!(
            "10.{}.{}.{}",
            (idx >> 16) & 0xff,
            (idx >> 8) & 0xff,
            idx & 0xff
        )
    }

    /// Generates the full workload (background + injected attacks), with all
    /// events sorted by timestamp.
    pub fn generate(&self) -> CyberWorkload {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = Zipf::new(cfg.hosts as u64, cfg.skew).expect("valid zipf parameters");
        let mut events: Vec<EdgeEvent> = Vec::with_capacity(
            cfg.background_edges + cfg.attacks.iter().map(|(_, n)| n * 3).sum::<usize>(),
        );

        // Background traffic.
        let interval = cfg.edge_interval.as_micros().max(1);
        let mut now = 0i64;
        for _ in 0..cfg.background_edges {
            now += rng.gen_range(1..=2 * interval);
            let src = Self::host_name(zipf.sample(&mut rng) as usize - 1);
            let mut dst = Self::host_name(zipf.sample(&mut rng) as usize - 1);
            if dst == src {
                dst = Self::host_name(rng.gen_range(0..cfg.hosts));
            }
            let roll: f64 = rng.gen();
            let ts = Timestamp::from_micros(now);
            let ev = if roll < cfg.dns_fraction {
                EdgeEvent::new(src, types::IP, dst, types::IP, types::DNS, ts)
            } else if roll < cfg.dns_fraction + 0.02 {
                // A small share of interactive logins from user accounts.
                let user = format!("user{}", rng.gen_range(0..cfg.hosts / 10 + 1));
                EdgeEvent::new(user, types::USER, dst, types::IP, types::LOGIN, ts)
            } else {
                EdgeEvent::new(src, types::IP, dst, types::IP, types::FLOW, ts)
                    .with_attr("bytes", rng.gen_range(40..1_500) as i64)
            };
            events.push(ev);
        }
        let background_end = now;

        // Injected attacks, spread over the background time range.
        let mut attacks = Vec::new();
        let n_attacks = cfg.attacks.len().max(1) as i64;
        for (i, &(kind, size)) in cfg.attacks.iter().enumerate() {
            let start = background_end * (i as i64 + 1) / (n_attacks + 1);
            let injected = match kind {
                AttackKind::SmurfDdos => self.inject_smurf(&mut rng, start, size, i),
                AttackKind::WormSpread => self.inject_worm(&mut rng, start, size, i),
                AttackKind::PortScan => self.inject_scan(&mut rng, start, size, i),
            };
            attacks.push(injected.0);
            events.extend(injected.1);
        }

        events.sort_by_key(|e| e.timestamp);
        CyberWorkload { events, attacks }
    }

    /// Smurf DDoS (Fig. 3 / Fig. 7): the attacker sends spoofed ICMP requests
    /// to `size` amplifier hosts, each of which replies to the victim.
    fn inject_smurf(
        &self,
        rng: &mut StdRng,
        start: i64,
        size: usize,
        instance: usize,
    ) -> (InjectedAttack, Vec<EdgeEvent>) {
        let attacker = format!("attacker-{instance}");
        let victim = format!("victim-{instance}");
        let mut events = Vec::with_capacity(size * 2);
        let mut t = start;
        for a in 0..size {
            let amplifier = Self::host_name(rng.gen_range(0..self.config.hosts));
            t += 1_000; // 1ms apart
            events.push(EdgeEvent::new(
                attacker.clone(),
                types::IP,
                format!("amp-{instance}-{a}-{amplifier}"),
                types::IP,
                types::ICMP_REQUEST,
                Timestamp::from_micros(t),
            ));
            t += 500;
            events.push(EdgeEvent::new(
                format!("amp-{instance}-{a}-{amplifier}"),
                types::IP,
                victim.clone(),
                types::IP,
                types::ICMP_REPLY,
                Timestamp::from_micros(t),
            ));
        }
        (
            InjectedAttack {
                kind: AttackKind::SmurfDdos,
                start: Timestamp::from_micros(start + 1_000),
                end: Timestamp::from_micros(t),
                attacker,
                victim,
                edges: events.len(),
            },
            events,
        )
    }

    /// Worm spread: patient zero exploits `size` hosts; each of those exploits
    /// one further host (a two-level cascade).
    fn inject_worm(
        &self,
        rng: &mut StdRng,
        start: i64,
        size: usize,
        instance: usize,
    ) -> (InjectedAttack, Vec<EdgeEvent>) {
        let patient_zero = format!("infected-{instance}");
        let mut events = Vec::new();
        let mut t = start;
        let mut first_target = String::new();
        for a in 0..size {
            let target = format!("worm-{instance}-l1-{a}");
            if a == 0 {
                first_target = target.clone();
            }
            t += 2_000;
            events.push(EdgeEvent::new(
                patient_zero.clone(),
                types::IP,
                target.clone(),
                types::IP,
                types::EXPLOIT,
                Timestamp::from_micros(t),
            ));
            // Second-level spread.
            let second = Self::host_name(rng.gen_range(0..self.config.hosts));
            t += 2_000;
            events.push(EdgeEvent::new(
                target,
                types::IP,
                format!("worm-{instance}-l2-{a}-{second}"),
                types::IP,
                types::EXPLOIT,
                Timestamp::from_micros(t),
            ));
        }
        (
            InjectedAttack {
                kind: AttackKind::WormSpread,
                start: Timestamp::from_micros(start + 2_000),
                end: Timestamp::from_micros(t),
                attacker: patient_zero,
                victim: first_target,
                edges: events.len(),
            },
            events,
        )
    }

    /// Port scan: one source probes `size` distinct targets with SYNs.
    fn inject_scan(
        &self,
        rng: &mut StdRng,
        start: i64,
        size: usize,
        instance: usize,
    ) -> (InjectedAttack, Vec<EdgeEvent>) {
        let scanner = format!("scanner-{instance}");
        let mut events = Vec::with_capacity(size);
        let mut t = start;
        let mut first_target = String::new();
        for a in 0..size {
            let target = Self::host_name(rng.gen_range(0..self.config.hosts));
            let target = format!("scan-{instance}-{a}-{target}");
            if a == 0 {
                first_target = target.clone();
            }
            t += 200;
            events.push(
                EdgeEvent::new(
                    scanner.clone(),
                    types::IP,
                    target,
                    types::IP,
                    types::SYN,
                    Timestamp::from_micros(t),
                )
                .with_attr("port", rng.gen_range(1..1024) as i64),
            );
        }
        (
            InjectedAttack {
                kind: AttackKind::PortScan,
                start: Timestamp::from_micros(start + 200),
                end: Timestamp::from_micros(t),
                attacker: scanner,
                victim: first_target,
                edges: events.len(),
            },
            events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = CyberConfig {
            background_edges: 500,
            ..Default::default()
        };
        let a = CyberTrafficGenerator::new(cfg.clone()).generate();
        let b = CyberTrafficGenerator::new(cfg).generate();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[100], b.events[100]);
        assert_eq!(a.attacks, b.attacks);
    }

    #[test]
    fn events_are_time_ordered_and_typed() {
        let w = CyberTrafficGenerator::new(CyberConfig {
            background_edges: 1_000,
            ..Default::default()
        })
        .generate();
        assert!(w
            .events
            .windows(2)
            .all(|p| p[0].timestamp <= p[1].timestamp));
        assert!(w.events.iter().any(|e| e.edge_type == types::FLOW));
        assert!(w.events.iter().any(|e| e.edge_type == types::DNS));
        assert!(w.events.iter().any(|e| e.edge_type == types::ICMP_REPLY));
    }

    #[test]
    fn ground_truth_matches_injections() {
        let w = CyberTrafficGenerator::new(CyberConfig {
            background_edges: 200,
            attacks: vec![(AttackKind::SmurfDdos, 4), (AttackKind::PortScan, 6)],
            ..Default::default()
        })
        .generate();
        assert_eq!(w.attacks.len(), 2);
        let smurf = &w.attacks[0];
        assert_eq!(smurf.kind, AttackKind::SmurfDdos);
        assert_eq!(smurf.edges, 8); // 4 requests + 4 replies
        let scan = &w.attacks[1];
        assert_eq!(scan.edges, 6);
        // Injected edges actually appear in the stream.
        let smurf_edges = w
            .events
            .iter()
            .filter(|e| e.src_key == smurf.attacker && e.edge_type == types::ICMP_REQUEST)
            .count();
        assert_eq!(smurf_edges, 4);
    }

    #[test]
    fn traffic_is_hub_skewed() {
        let w = CyberTrafficGenerator::new(CyberConfig {
            hosts: 200,
            background_edges: 5_000,
            attacks: vec![],
            ..Default::default()
        })
        .generate();
        // Count destination frequencies; the most popular host should receive
        // far more than the mean (power-law skew).
        let mut counts = std::collections::HashMap::new();
        for e in &w.events {
            *counts.entry(e.dst_key.clone()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = w.events.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max={max} mean={mean}");
    }
}
