//! Canonical query graphs from the paper's figures and target applications.
//!
//! * [`news_triple_query`] — the Fig. 2 query: three articles sharing a
//!   keyword and a location.
//! * [`labelled_news_query`] — the Fig. 5 family: two co-located articles on a
//!   specific topic label ("politics", "accident", ...).
//! * [`smurf_ddos_query`], [`port_scan_query`], [`worm_spread_query`] — the
//!   Fig. 3 cyber-attack patterns, parameterised by fan-out.
//! * [`path_query`], [`star_query`] — synthetic shapes for the query-size
//!   scaling experiment (E10).

use crate::schema::{cyber, news};
use streamworks_graph::Duration;
use streamworks_query::{Predicate, QueryGraph, QueryGraphBuilder};

/// Fig. 2: three articles (posts) sharing a common keyword and location.
pub fn news_triple_query(window: Duration) -> QueryGraph {
    QueryGraphBuilder::new("news_triple")
        .window(window)
        .vertex("a1", news::ARTICLE)
        .vertex("a2", news::ARTICLE)
        .vertex("a3", news::ARTICLE)
        .vertex("k", news::KEYWORD)
        .vertex("l", news::LOCATION)
        .edge("a1", news::MENTIONS, "k")
        .edge("a2", news::MENTIONS, "k")
        .edge("a3", news::MENTIONS, "k")
        .edge("a1", news::LOCATED, "l")
        .edge("a2", news::LOCATED, "l")
        .edge("a3", news::LOCATED, "l")
        .build()
        .expect("static query is valid")
}

/// Fig. 5 family: two articles sharing a location and a keyword carrying a
/// specific event label (the generator attaches the label as a `label`
/// attribute on the mention edge of planted bursts).
pub fn labelled_news_query(label: &str, window: Duration) -> QueryGraph {
    QueryGraphBuilder::new(format!("news_{label}"))
        .window(window)
        .vertex("a1", news::ARTICLE)
        .vertex("a2", news::ARTICLE)
        .vertex("k", news::KEYWORD)
        .vertex("l", news::LOCATION)
        .edge_with(
            "a1",
            news::MENTIONS,
            "k",
            vec![Predicate::eq("label", label)],
        )
        .edge_with(
            "a2",
            news::MENTIONS,
            "k",
            vec![Predicate::eq("label", label)],
        )
        .edge("a1", news::LOCATED, "l")
        .edge("a2", news::LOCATED, "l")
        .build()
        .expect("static query is valid")
}

/// Fig. 3 / Fig. 7: Smurf DDoS — an attacker triggers `amplifiers` reflector
/// hosts, each of which sends an ICMP reply to the same victim.
pub fn smurf_ddos_query(amplifiers: usize, window: Duration) -> QueryGraph {
    let mut b = QueryGraphBuilder::new("smurf_ddos")
        .window(window)
        .vertex("attacker", cyber::IP)
        .vertex("victim", cyber::IP);
    for i in 0..amplifiers.max(1) {
        let amp = format!("amp{i}");
        b = b
            .vertex(&amp, cyber::IP)
            .edge("attacker", cyber::ICMP_REQUEST, &amp)
            .edge(&amp, cyber::ICMP_REPLY, "victim");
    }
    b.build().expect("static query is valid")
}

/// Fig. 3: port scan — one source probing `targets` distinct hosts with SYNs
/// inside the window.
pub fn port_scan_query(targets: usize, window: Duration) -> QueryGraph {
    let mut b = QueryGraphBuilder::new("port_scan")
        .window(window)
        .vertex("scanner", cyber::IP);
    for i in 0..targets.max(1) {
        let t = format!("t{i}");
        b = b.vertex(&t, cyber::IP).edge("scanner", cyber::SYN, &t);
    }
    b.build().expect("static query is valid")
}

/// Fig. 3: worm spread — patient zero exploits a host which exploits another
/// (`depth` levels of propagation, each with a single branch).
pub fn worm_spread_query(depth: usize, window: Duration) -> QueryGraph {
    let mut b = QueryGraphBuilder::new("worm_spread")
        .window(window)
        .vertex("h0", cyber::IP);
    for i in 0..depth.max(1) {
        let prev = format!("h{i}");
        let next = format!("h{}", i + 1);
        b = b
            .vertex(&next, cyber::IP)
            .edge(&prev, cyber::EXPLOIT, &next);
    }
    b.build().expect("static query is valid")
}

/// A directed path of `edges` edges over the random-stream schema
/// (`Node` vertices, `rel_a` edges) — used by the query-size scaling sweep.
pub fn path_query(edges: usize, window: Duration) -> QueryGraph {
    let mut b = QueryGraphBuilder::new(format!("path_{edges}")).window(window);
    for i in 0..edges.max(1) {
        let src = format!("v{i}");
        let dst = format!("v{}", i + 1);
        b = b
            .vertex(&src, "Node")
            .vertex(&dst, "Node")
            .edge(&src, "rel_a", &dst);
    }
    b.build().expect("static query is valid")
}

/// A directed path of `edges` edges whose edge types cycle through `types`,
/// over the random-stream schema. Alternating relation types keep each leaf
/// primitive selective on multi-relational streams, matching the paper's
/// setting; with a single type this degenerates to [`path_query`].
pub fn typed_path_query(edges: usize, types: &[&str], window: Duration) -> QueryGraph {
    assert!(
        !types.is_empty(),
        "typed_path_query requires at least one edge type"
    );
    let mut b = QueryGraphBuilder::new(format!("typed_path_{edges}")).window(window);
    for i in 0..edges.max(1) {
        let src = format!("v{i}");
        let dst = format!("v{}", i + 1);
        b = b
            .vertex(&src, "Node")
            .vertex(&dst, "Node")
            .edge(&src, types[i % types.len()], &dst);
    }
    b.build().expect("static query is valid")
}

/// A star with `leaves` out-edges from a single centre, over the random-stream
/// schema.
pub fn star_query(leaves: usize, window: Duration) -> QueryGraph {
    let mut b = QueryGraphBuilder::new(format!("star_{leaves}"))
        .window(window)
        .vertex("center", "Node");
    for i in 0..leaves.max(1) {
        let leaf = format!("leaf{i}");
        b = b.vertex(&leaf, "Node").edge("center", "rel_a", &leaf);
    }
    b.build().expect("static query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_query_shape() {
        let q = news_triple_query(Duration::from_hours(6));
        assert_eq!(q.vertex_count(), 5);
        assert_eq!(q.edge_count(), 6);
        assert!(q.is_connected());
    }

    #[test]
    fn labelled_query_carries_predicates() {
        let q = labelled_news_query("politics", Duration::from_hours(1));
        assert_eq!(q.name(), "news_politics");
        let with_pred = q.edges().filter(|e| !e.predicates.is_empty()).count();
        assert_eq!(with_pred, 2);
    }

    #[test]
    fn cyber_queries_scale_with_parameters() {
        let smurf = smurf_ddos_query(3, Duration::from_mins(5));
        assert_eq!(smurf.edge_count(), 6);
        assert_eq!(smurf.vertex_count(), 5);
        let scan = port_scan_query(8, Duration::from_mins(1));
        assert_eq!(scan.edge_count(), 8);
        let worm = worm_spread_query(2, Duration::from_mins(10));
        assert_eq!(worm.edge_count(), 2);
        for q in [&smurf, &scan, &worm] {
            assert!(q.is_connected());
        }
    }

    #[test]
    fn synthetic_shapes_scale() {
        for n in 1..8 {
            assert_eq!(path_query(n, Duration::from_secs(60)).edge_count(), n);
            assert_eq!(star_query(n, Duration::from_secs(60)).edge_count(), n);
        }
    }

    #[test]
    fn typed_path_alternates_edge_types() {
        let q = typed_path_query(4, &["rel_a", "rel_b"], Duration::from_secs(60));
        assert_eq!(q.edge_count(), 4);
        assert!(q.is_connected());
        let types: Vec<_> = q.edges().filter_map(|e| e.etype.clone()).collect();
        assert!(types.contains(&"rel_a".to_owned()));
        assert!(types.contains(&"rel_b".to_owned()));
    }

    #[test]
    #[should_panic(expected = "at least one edge type")]
    fn typed_path_rejects_empty_types() {
        typed_path_query(3, &[], Duration::from_secs(1));
    }
}
