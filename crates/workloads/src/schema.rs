//! Shared vertex/edge type vocabularies for the two target domains of paper §5.

/// Cyber-security domain (paper §5.1): "physical machines, IP addresses,
/// users, and software services as entities" with communication/login edges.
pub mod cyber {
    /// IP address / host vertex type.
    pub const IP: &str = "IP";
    /// User account vertex type.
    pub const USER: &str = "User";
    /// Software service vertex type.
    pub const SERVICE: &str = "Service";

    /// Generic network flow edge.
    pub const FLOW: &str = "flow";
    /// DNS lookup edge.
    pub const DNS: &str = "dns";
    /// TCP SYN probe edge (used by the port-scan pattern).
    pub const SYN: &str = "syn";
    /// ICMP echo request (Smurf DDoS trigger, spoofed source).
    pub const ICMP_REQUEST: &str = "icmp_request";
    /// ICMP echo reply (Smurf DDoS amplification towards the victim).
    pub const ICMP_REPLY: &str = "icmp_reply";
    /// Remote exploit / infection edge (worm spread).
    pub const EXPLOIT: &str = "exploit";
    /// Interactive login edge (User -> IP).
    pub const LOGIN: &str = "login";
}

/// News / social-media domain (paper §5.2): "articles, events, people,
/// location, organizations and keywords ... as vertices".
pub mod news {
    /// Article / post vertex type.
    pub const ARTICLE: &str = "Article";
    /// Keyword / topic vertex type.
    pub const KEYWORD: &str = "Keyword";
    /// Location vertex type.
    pub const LOCATION: &str = "Location";
    /// Person vertex type.
    pub const PERSON: &str = "Person";
    /// Organization vertex type.
    pub const ORGANIZATION: &str = "Organization";

    /// Article -> Keyword edge.
    pub const MENTIONS: &str = "mentions";
    /// Article -> Location edge.
    pub const LOCATED: &str = "located";
    /// Article -> Person edge.
    pub const ABOUT_PERSON: &str = "about_person";
    /// Article -> Organization edge.
    pub const ABOUT_ORG: &str = "about_org";
    /// Person -> Organization affiliation edge.
    pub const AFFILIATED: &str = "affiliated";
    /// Article -> Article citation edge (used by the citation-chain RPQ
    /// workload).
    pub const CITES: &str = "cites";
}

#[cfg(test)]
mod tests {
    #[test]
    fn vocabularies_are_distinct() {
        let cyber = [
            super::cyber::FLOW,
            super::cyber::DNS,
            super::cyber::SYN,
            super::cyber::ICMP_REQUEST,
            super::cyber::ICMP_REPLY,
            super::cyber::EXPLOIT,
            super::cyber::LOGIN,
        ];
        let mut unique = cyber.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), cyber.len());
    }
}
