//! Multi-tenant query registries: N tenants instantiating overlapping query
//! templates with distinct constants.
//!
//! The engine's multi-query sharing layer (the canonical primitive index)
//! exists for exactly this workload shape: a service hosting many tenants
//! whose standing queries are *instances of a small set of templates* — the
//! paper's Fig. 5 labelled query family scaled out. Each tenant registers
//!
//! * a **labelled pair** query (two articles mentioning one keyword, both
//!   mention edges carrying the tenant's topic label — the Fig. 5 family) —
//!   tenants drawing the same label from the pool are exact structural
//!   copies of each other; the label predicates keep the primitive
//!   *selective*, so it searches on every mention but only embeds on the
//!   planted bursts; and
//! * a **co-location pair** query (two articles sharing a location, no
//!   label) — structurally identical across *every* tenant, and
//!   *unselective*: it embeds on every co-located article pair, exercising
//!   the match-fan-out regime (see [`TenantConfig::include_colocation`]).
//!
//! The result is a registry whose distinct-primitive count is a small
//! constant (a few labels' worth) however many tenants register, so matching
//! cost under sharing is flat while the per-query baseline grows linearly —
//! the `multi_query` bench measures precisely that gap. The companion event
//! stream is the news generator's, with one planted co-occurrence burst per
//! label so every template finds matches.

use crate::news::{NewsConfig, NewsStreamGenerator, PlantedEvent};
use crate::schema::news as types;
use streamworks_graph::{Duration, EdgeEvent};
use streamworks_query::{Predicate, QueryGraph, QueryGraphBuilder};

/// Configuration of the multi-tenant registry generator.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Number of tenants; each registers a labelled pair query, plus a
    /// co-location pair when [`Self::include_colocation`] is set (the
    /// default).
    pub tenants: usize,
    /// Topic label pool; tenant `i` watches `labels[i % labels.len()]`, so
    /// `tenants / labels.len()` tenants share each labelled template
    /// instance exactly.
    pub labels: Vec<String>,
    /// Time window of every generated query.
    pub window: Duration,
    /// Whether each tenant also registers the (unlabelled) co-location pair
    /// template. It is structurally identical across every tenant — maximal
    /// sharing — but matches on *every* co-located article pair, so with
    /// many tenants the workload's total match volume grows linearly in the
    /// tenant count and match fan-out (irreducible per-tenant work) rather
    /// than search cost dominates. `true` (the default) exercises that
    /// regime too; benchmarks isolating the search-sharing lever set it to
    /// `false` and measure the rarely-firing labelled registry alone.
    pub include_colocation: bool,
    /// When set, tenant `i` watches the unique label
    /// `"{labels[i % len]}-{i}"` instead of cycling the pool: no two
    /// labelled templates are exact copies, so leaf-level (exact-constant)
    /// sharing finds nothing and only the engine's predicate-constant
    /// lifting can collapse the registry — the regime the
    /// `multi_query/lifted` bench group measures. Planted bursts then cover
    /// the first `labels.len()` tenants' labels, keeping the stream
    /// size-bounded however many tenants register. `false` by default.
    pub distinct_labels: bool,
    /// Event-stream configuration. `planted_events` is overridden with one
    /// burst per label so every labelled template has ground-truth matches.
    pub news: NewsConfig,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            tenants: 16,
            labels: vec![
                "politics".to_owned(),
                "accident".to_owned(),
                "earthquake".to_owned(),
                "sports".to_owned(),
            ],
            window: Duration::from_mins(30),
            include_colocation: true,
            distinct_labels: false,
            news: NewsConfig::default(),
        }
    }
}

/// A generated multi-tenant workload: the tenants' query registry plus the
/// shared event stream they all watch.
#[derive(Debug, Clone)]
pub struct MultiTenantWorkload {
    /// All tenants' queries, in registration order (tenant-major: tenant 0's
    /// labelled pair, tenant 0's co-location pair, tenant 1's ...).
    pub queries: Vec<QueryGraph>,
    /// The shared event stream, in timestamp order.
    pub events: Vec<EdgeEvent>,
    /// Ground truth of the planted per-label bursts.
    pub planted: Vec<PlantedEvent>,
}

/// Generator for [`MultiTenantWorkload`]s.
#[derive(Debug, Clone)]
pub struct MultiTenantGenerator {
    config: TenantConfig,
}

impl MultiTenantGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: TenantConfig) -> Self {
        assert!(!config.labels.is_empty(), "label pool must not be empty");
        MultiTenantGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Tenant `t`'s watched label under the configuration: a pool label, or
    /// a tenant-unique one in [`TenantConfig::distinct_labels`] mode.
    fn label_of(&self, t: usize) -> String {
        let base = &self.config.labels[t % self.config.labels.len()];
        if self.config.distinct_labels {
            format!("{base}-{t}")
        } else {
            base.clone()
        }
    }

    /// Generates the tenants' queries and the shared event stream.
    pub fn generate(&self) -> MultiTenantWorkload {
        let cfg = &self.config;
        let mut queries = Vec::with_capacity(cfg.tenants * 2);
        for t in 0..cfg.tenants {
            queries.push(labelled_pair(t, &self.label_of(t), cfg.window));
            if cfg.include_colocation {
                queries.push(colocation_pair(t, cfg.window));
            }
        }
        let mut news = cfg.news.clone();
        news.planted_events = if cfg.distinct_labels {
            (0..cfg.tenants.min(cfg.labels.len()))
                .map(|t| (self.label_of(t), 3usize))
                .collect()
        } else {
            cfg.labels
                .iter()
                .map(|label| (label.clone(), 3usize))
                .collect()
        };
        let workload = NewsStreamGenerator::new(news).generate();
        MultiTenantWorkload {
            queries,
            events: workload.events,
            planted: workload.planted,
        }
    }
}

/// Tenant `t`'s instance of the labelled-pair template (the Fig. 5 family):
/// two articles mentioning one keyword, both mention edges carrying
/// `label`. The predicates make the primitive selective — background
/// mentions are rejected at the anchor check — which is what keeps the
/// registry's per-event cost search-bound, the regime sharing deduplicates.
fn labelled_pair(tenant: usize, label: &str, window: Duration) -> QueryGraph {
    QueryGraphBuilder::new(format!("t{tenant}_{label}_pair"))
        .window(window)
        .vertex("a1", types::ARTICLE)
        .vertex("a2", types::ARTICLE)
        .vertex("k", types::KEYWORD)
        .edge_with(
            "a1",
            types::MENTIONS,
            "k",
            vec![Predicate::eq("label", label)],
        )
        .edge_with(
            "a2",
            types::MENTIONS,
            "k",
            vec![Predicate::eq("label", label)],
        )
        .build()
        .expect("static template is valid")
}

/// Tenant `t`'s instance of the co-location template: two articles sharing a
/// location — identical across every tenant up to renaming.
fn colocation_pair(tenant: usize, window: Duration) -> QueryGraph {
    QueryGraphBuilder::new(format!("t{tenant}_coloc"))
        .window(window)
        .vertex("a1", types::ARTICLE)
        .vertex("a2", types::ARTICLE)
        .vertex("l", types::LOCATION)
        .edge("a1", types::LOCATED, "l")
        .edge("a2", types::LOCATED, "l")
        .build()
        .expect("static template is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_two_queries_per_tenant_with_cycled_labels() {
        let workload = MultiTenantGenerator::new(TenantConfig {
            tenants: 6,
            labels: vec!["a".into(), "b".into()],
            news: NewsConfig {
                articles: 50,
                ..Default::default()
            },
            ..Default::default()
        })
        .generate();
        assert_eq!(workload.queries.len(), 12);
        assert!(workload.queries.iter().all(|q| q.is_connected()));
        // Labels cycle through the pool.
        assert_eq!(workload.queries[0].name(), "t0_a_pair");
        assert_eq!(workload.queries[2].name(), "t1_b_pair");
        assert_eq!(workload.queries[4].name(), "t2_a_pair");
        // Query names are unique (the engine registry requires nothing, but
        // reports key on names).
        let mut names: Vec<_> = workload.queries.iter().map(|q| q.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        // One planted burst per label keeps every template matchable.
        assert_eq!(workload.planted.len(), 2);
        assert!(!workload.events.is_empty());
    }

    #[test]
    fn same_label_tenants_are_exact_template_copies() {
        let cfg = TenantConfig {
            tenants: 4,
            labels: vec!["x".into()],
            ..Default::default()
        };
        let workload = MultiTenantGenerator::new(cfg).generate();
        // All labelled pairs are structurally identical (names differ).
        let q0 = &workload.queries[0];
        let q2 = &workload.queries[2];
        assert_eq!(q0.edge_count(), q2.edge_count());
        assert_eq!(q0.vertex_count(), q2.vertex_count());
        for (e0, e2) in q0.edges().zip(q2.edges()) {
            assert_eq!(e0.etype, e2.etype);
            assert_eq!(e0.predicates, e2.predicates);
        }
    }

    #[test]
    fn distinct_labels_give_every_tenant_a_unique_constant() {
        let workload = MultiTenantGenerator::new(TenantConfig {
            tenants: 6,
            labels: vec!["a".into(), "b".into()],
            include_colocation: false,
            distinct_labels: true,
            news: NewsConfig {
                articles: 50,
                ..Default::default()
            },
            ..Default::default()
        })
        .generate();
        assert_eq!(workload.queries.len(), 6);
        // Every labelled template carries a different constant.
        let mut constants: Vec<_> = workload
            .queries
            .iter()
            .map(|q| {
                q.edges()
                    .flat_map(|e| &e.predicates)
                    .map(|p| p.canonical_token())
                    .next()
                    .unwrap()
            })
            .collect();
        constants.sort_unstable();
        constants.dedup();
        assert_eq!(constants.len(), 6, "no two tenants share a constant");
        // Planted bursts are bounded by the pool size, not the tenant count,
        // and target real tenant labels so the registry stays matchable.
        assert_eq!(workload.planted.len(), 2);
        assert_eq!(workload.queries[0].name(), "t0_a-0_pair");
    }

    #[test]
    #[should_panic(expected = "label pool")]
    fn empty_label_pool_is_rejected() {
        MultiTenantGenerator::new(TenantConfig {
            labels: vec![],
            ..Default::default()
        });
    }
}
