//! # streamworks-workloads
//!
//! Synthetic workload and trace generators for the StreamWorks reproduction.
//! The paper demonstrates on CAIDA internet traces and New York Times linked
//! data (paper §5–§6); neither is redistributable, so this crate provides
//! generators that preserve the structural properties the matcher exercises
//! (type schema, hub skew, burstiness, injected target patterns with ground
//! truth) — see DESIGN.md for the substitution rationale.
//!
//! * [`CyberTrafficGenerator`] — flow-level network traffic with injected
//!   Smurf DDoS / worm / port-scan motifs.
//! * [`NewsStreamGenerator`] — article/keyword/location/person streams with
//!   planted co-occurrence bursts.
//! * [`MultiTenantGenerator`] — N tenants instantiating overlapping query
//!   templates with distinct label constants, the registry shape the
//!   engine's multi-query sharing layer deduplicates.
//! * [`differential_workload`] — seeded random registries with planted
//!   common subtrees and constant-varied predicates, driving the
//!   sharing-on/off differential oracle tests.
//! * [`LateralMovementGenerator`] / [`CitationChainGenerator`] — multi-hop
//!   motifs (intrusion pivot chains, article citation chains) with planted
//!   ground truth, targets for the engine's windowed regular-path-query
//!   class rather than fixed-shape SJ-Tree patterns.
//! * [`uniform_stream`] / [`preferential_attachment_stream`] /
//!   [`plant_pattern`] — random graph streams for micro-benchmarks.
//! * [`queries`] — the canonical query graphs of paper Figs. 2 and 3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cyber;
pub mod news;
pub mod proptest;
pub mod queries;
pub mod random;
pub mod rpq;
pub mod schema;
pub mod tenants;
pub mod trace;

pub use cyber::{AttackKind, CyberConfig, CyberTrafficGenerator, CyberWorkload, InjectedAttack};
pub use news::{NewsConfig, NewsStreamGenerator, NewsWorkload, PlantedEvent};
pub use proptest::{differential_workload, DifferentialConfig, DifferentialWorkload};
pub use random::{plant_pattern, preferential_attachment_stream, uniform_stream, RandomConfig};
pub use rpq::{
    citation_chain_rpq, lateral_movement_rpq, CitationChainGenerator, CitationConfig,
    LateralMovementConfig, LateralMovementGenerator, PlantedChain, RpqWorkload,
};
pub use tenants::{MultiTenantGenerator, MultiTenantWorkload, TenantConfig};
pub use trace::{
    read_trace, read_trace_file, write_trace, write_trace_file, TraceError, TraceRecord,
    TraceReplay,
};
