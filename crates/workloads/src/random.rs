//! Random typed edge streams and planted-pattern insertion.
//!
//! Used by the micro-benchmarks and property tests: Erdős–Rényi-style uniform
//! streams, preferential-attachment (hub-forming) streams, and a helper that
//! plants copies of an arbitrary query pattern into a stream so experiments
//! can scale query size while controlling the number of true matches
//! (experiment E10).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};
use streamworks_query::QueryGraph;

/// Configuration of the random stream generators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomConfig {
    /// Number of vertices to draw endpoints from.
    pub vertices: usize,
    /// Number of edges to generate.
    pub edges: usize,
    /// Vertex type labels to cycle through.
    pub vertex_types: Vec<String>,
    /// Edge type labels to sample uniformly.
    pub edge_types: Vec<String>,
    /// Mean stream-time gap between edges.
    pub edge_interval: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            vertices: 1_000,
            edges: 10_000,
            vertex_types: vec!["Node".to_owned()],
            edge_types: vec!["rel_a".to_owned(), "rel_b".to_owned(), "rel_c".to_owned()],
            edge_interval: Duration::from_millis(5),
            seed: 13,
        }
    }
}

impl RandomConfig {
    fn vertex_key(&self, idx: usize) -> String {
        format!("n{idx}")
    }

    fn vertex_type(&self, idx: usize) -> &str {
        &self.vertex_types[idx % self.vertex_types.len()]
    }
}

/// Uniform (Erdős–Rényi-style) random edge stream.
pub fn uniform_stream(config: &RandomConfig) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.edges);
    let interval = config.edge_interval.as_micros().max(1);
    let mut now = 0i64;
    for _ in 0..config.edges {
        now += rng.gen_range(1..=2 * interval);
        let src = rng.gen_range(0..config.vertices);
        let mut dst = rng.gen_range(0..config.vertices);
        if dst == src {
            dst = (dst + 1) % config.vertices;
        }
        let etype = &config.edge_types[rng.gen_range(0..config.edge_types.len())];
        events.push(EdgeEvent::new(
            config.vertex_key(src),
            config.vertex_type(src),
            config.vertex_key(dst),
            config.vertex_type(dst),
            etype,
            Timestamp::from_micros(now),
        ));
    }
    events
}

/// Preferential-attachment stream: destination vertices are drawn with
/// probability proportional to their current in-degree (plus one), producing
/// the hub-dominated structure typical of real networks.
pub fn preferential_attachment_stream(config: &RandomConfig) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut events = Vec::with_capacity(config.edges);
    // `targets` holds one entry per (in-)edge endpoint plus one per vertex, so
    // sampling uniformly from it is proportional to in-degree + 1.
    let mut targets: Vec<usize> = (0..config.vertices).collect();
    let interval = config.edge_interval.as_micros().max(1);
    let mut now = 0i64;
    for _ in 0..config.edges {
        now += rng.gen_range(1..=2 * interval);
        let src = rng.gen_range(0..config.vertices);
        let mut dst = targets[rng.gen_range(0..targets.len())];
        if dst == src {
            dst = (dst + 1) % config.vertices;
        }
        targets.push(dst);
        let etype = &config.edge_types[rng.gen_range(0..config.edge_types.len())];
        events.push(EdgeEvent::new(
            config.vertex_key(src),
            config.vertex_type(src),
            config.vertex_key(dst),
            config.vertex_type(dst),
            etype,
            Timestamp::from_micros(now),
        ));
    }
    events
}

/// Plants `copies` instances of `query` into the stream as concrete edge
/// events. Each copy uses fresh vertex keys (`planted-<copy>-<var>`) so the
/// number of *additional* matches is exactly the number of automorphism-
/// distinct embeddings per copy. Planted edges are spaced `gap` apart and the
/// copies are spread uniformly over the stream's time range; the combined
/// stream is returned sorted by timestamp.
pub fn plant_pattern(
    mut stream: Vec<EdgeEvent>,
    query: &QueryGraph,
    copies: usize,
    gap: Duration,
) -> Vec<EdgeEvent> {
    let end = stream.last().map(|e| e.timestamp.as_micros()).unwrap_or(0);
    for copy in 0..copies {
        let start = if copies == 0 {
            0
        } else {
            end * (copy as i64 + 1) / (copies as i64 + 1)
        };
        let mut t = start;
        for qe in query.edge_ids() {
            let e = query.edge(qe);
            let src = query.vertex(e.src);
            let dst = query.vertex(e.dst);
            t += gap.as_micros().max(1);
            stream.push(EdgeEvent::new(
                format!("planted-{copy}-{}", src.name),
                src.vtype.clone().unwrap_or_else(|| "Node".to_owned()),
                format!("planted-{copy}-{}", dst.name),
                dst.vtype.clone().unwrap_or_else(|| "Node".to_owned()),
                e.etype.clone().unwrap_or_else(|| "rel_a".to_owned()),
                Timestamp::from_micros(t),
            ));
        }
    }
    stream.sort_by_key(|e| e.timestamp);
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_query::QueryGraphBuilder;

    #[test]
    fn uniform_stream_has_requested_size_and_no_self_loops() {
        let cfg = RandomConfig {
            edges: 2_000,
            ..Default::default()
        };
        let s = uniform_stream(&cfg);
        assert_eq!(s.len(), 2_000);
        assert!(s.iter().all(|e| e.src_key != e.dst_key));
        assert!(s.windows(2).all(|p| p[0].timestamp <= p[1].timestamp));
    }

    #[test]
    fn preferential_attachment_is_more_skewed_than_uniform() {
        let cfg = RandomConfig {
            vertices: 300,
            edges: 6_000,
            ..Default::default()
        };
        let count_max = |events: &[EdgeEvent]| {
            let mut counts = std::collections::HashMap::new();
            for e in events {
                *counts.entry(e.dst_key.clone()).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap()
        };
        let uniform_max = count_max(&uniform_stream(&cfg));
        let pa_max = count_max(&preferential_attachment_stream(&cfg));
        assert!(pa_max > uniform_max, "pa={pa_max} uniform={uniform_max}");
    }

    #[test]
    fn planted_patterns_appear_in_stream() {
        let q = QueryGraphBuilder::new("path3")
            .vertex("a", "Node")
            .vertex("b", "Node")
            .vertex("c", "Node")
            .edge("a", "rel_a", "b")
            .edge("b", "rel_a", "c")
            .build()
            .unwrap();
        let base = uniform_stream(&RandomConfig {
            edges: 500,
            ..Default::default()
        });
        let planted = plant_pattern(base, &q, 3, Duration::from_millis(1));
        assert_eq!(planted.len(), 500 + 3 * 2);
        // Each copy's edges exist with the planted keys.
        for copy in 0..3 {
            assert!(planted
                .iter()
                .any(|e| e.src_key == format!("planted-{copy}-a")
                    && e.dst_key == format!("planted-{copy}-b")));
        }
        assert!(planted.windows(2).all(|p| p[0].timestamp <= p[1].timestamp));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RandomConfig::default();
        assert_eq!(uniform_stream(&cfg)[7], uniform_stream(&cfg)[7]);
        assert_eq!(
            preferential_attachment_stream(&cfg)[7],
            preferential_attachment_stream(&cfg)[7]
        );
    }
}
