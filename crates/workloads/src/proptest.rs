//! Seeded random workloads for differential testing of the sharing layers.
//!
//! The subtree-sharing differential harness (`tests/shared_subtrees.rs`)
//! needs query registries that *provoke* every sharing regime at once —
//! template families whose members are exact structural copies (classic
//! subtree interning), families whose members differ only in an equality
//! constant (predicate-constant lifting), and families with no predicates or
//! no siblings at all (leaf-level sharing, or none) — over an event stream
//! guaranteed to produce matches for each of them. This module generates
//! such registries deterministically from a seed, so a failing comparison is
//! reproducible from its seed alone.
//!
//! Everything here is plain `StdRng` sampling: the "prop" in the name is the
//! property being tested (sharing is invisible except in throughput), not a
//! shrinking framework.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamworks_graph::{Duration, EdgeEvent, Timestamp};
use streamworks_query::{Predicate, QueryGraph, QueryGraphBuilder};

/// Configuration of [`differential_workload`].
#[derive(Debug, Clone)]
pub struct DifferentialConfig {
    /// RNG seed; two calls with equal configurations produce identical
    /// workloads.
    pub seed: u64,
    /// Number of template families. Families cycle through the three
    /// predicate regimes (constant-varied, none, constant-identical), so at
    /// least 3 exercises every sharing path.
    pub families: usize,
    /// Queries instantiated per family (structural copies of the family
    /// template, possibly with different predicate constants).
    pub members_per_family: usize,
    /// Size of the global equality-constant pool the predicated families
    /// draw from.
    pub constants: usize,
    /// Background (non-planted) edges in the stream.
    pub background_edges: usize,
    /// Vertices the background edges draw endpoints from.
    pub vertices: usize,
    /// Time window of every generated query.
    pub window: Duration,
}

impl Default for DifferentialConfig {
    fn default() -> Self {
        DifferentialConfig {
            seed: 1,
            families: 3,
            members_per_family: 3,
            constants: 3,
            background_edges: 500,
            vertices: 120,
            window: Duration::from_secs(60),
        }
    }
}

/// A generated differential workload: the query registry and the event
/// stream (background noise plus planted embeddings of every query, sorted
/// by timestamp).
#[derive(Debug, Clone)]
pub struct DifferentialWorkload {
    /// All families' queries, family-major
    /// (`f0m0_…`, `f0m1_…`, …, `f1m0_…`, …).
    pub queries: Vec<QueryGraph>,
    /// The shared event stream, in timestamp order.
    pub events: Vec<EdgeEvent>,
}

/// How a family's members relate through their predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredMode {
    /// Members carry `eq("label", c)` with a *different* constant each —
    /// the predicate-constant-lifting regime.
    Varied,
    /// No predicates at all — members are exact copies, the classic
    /// subtree-interning regime.
    None,
    /// Members carry the *same* constant — exact copies again, but with a
    /// liftable predicate present.
    Same,
}

impl PredMode {
    fn of(family: usize) -> PredMode {
        match family % 3 {
            0 => PredMode::Varied,
            1 => PredMode::None,
            _ => PredMode::Same,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            PredMode::Varied => "varied",
            PredMode::None => "plain",
            PredMode::Same => "same",
        }
    }
}

/// A family's template shape: variable names and `(src, etype, dst)` edges,
/// in insertion order. All vertices share one type so families interact
/// through the background stream.
#[derive(Debug, Clone)]
struct Shape {
    vars: &'static [&'static str],
    edges: Vec<(&'static str, String, &'static str)>,
    /// Edge positions (into `edges`) that carry the family's predicate.
    pred_edges: Vec<usize>,
}

const VTYPE: &str = "N";
const EDGE_TYPES: [&str; 3] = ["r0", "r1", "r2"];

fn shape(family: usize, rng: &mut StdRng) -> Shape {
    let t = |rng: &mut StdRng| EDGE_TYPES[rng.gen_range(0..EDGE_TYPES.len())].to_owned();
    let (vars, edges): (&'static [&'static str], Vec<_>) = match family % 3 {
        // Wedge: two sources into one shared target.
        0 => (
            &["a", "b", "c"],
            vec![("a", t(rng), "b"), ("c", t(rng), "b")],
        ),
        // Three-edge path.
        1 => (
            &["a", "b", "c", "d"],
            vec![("a", t(rng), "b"), ("b", t(rng), "c"), ("c", t(rng), "d")],
        ),
        // Out-star from a hub.
        _ => (
            &["h", "x", "y", "z"],
            vec![("h", t(rng), "x"), ("h", t(rng), "y"), ("h", t(rng), "z")],
        ),
    };
    // At least one predicated edge; each further edge joins with p=1/2.
    let mut pred_edges = vec![rng.gen_range(0..edges.len())];
    for i in 0..edges.len() {
        if !pred_edges.contains(&i) && rng.gen_bool(0.5) {
            pred_edges.push(i);
        }
    }
    pred_edges.sort_unstable();
    Shape {
        vars,
        edges,
        pred_edges,
    }
}

fn instantiate(
    family: usize,
    member: usize,
    shape: &Shape,
    mode: PredMode,
    constant: &str,
    window: Duration,
) -> QueryGraph {
    let mut b = QueryGraphBuilder::new(format!("f{family}m{member}_{}", mode.tag())).window(window);
    for v in shape.vars {
        b = b.vertex(v, VTYPE);
    }
    for (i, (src, etype, dst)) in shape.edges.iter().enumerate() {
        b = if mode != PredMode::None && shape.pred_edges.contains(&i) {
            b.edge_with(src, etype, dst, vec![Predicate::eq("label", constant)])
        } else {
            b.edge(src, etype, dst)
        };
    }
    b.build().expect("generated template is valid")
}

/// Generates a differential workload from the configuration. Deterministic:
/// equal configurations yield identical registries and streams.
pub fn differential_workload(cfg: &DifferentialConfig) -> DifferentialWorkload {
    assert!(cfg.constants > 0, "constant pool must not be empty");
    assert!(cfg.vertices > 1, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pool: Vec<String> = (0..cfg.constants).map(|c| format!("C{c}")).collect();

    // Registry: per family a shape, per member an instance.
    let mut queries = Vec::new();
    let mut shapes = Vec::new();
    for family in 0..cfg.families {
        let mode = PredMode::of(family);
        let sh = shape(family, &mut rng);
        for member in 0..cfg.members_per_family {
            let constant = match mode {
                PredMode::Varied => &pool[member % pool.len()],
                _ => &pool[family % pool.len()],
            };
            queries.push(instantiate(family, member, &sh, mode, constant, cfg.window));
        }
        shapes.push((mode, sh));
    }

    // Background stream: uniform edges over a shared vertex set, every edge
    // carrying a label drawn from the constant pool plus noise values.
    let mut events = Vec::new();
    let mut now = 0i64;
    for _ in 0..cfg.background_edges {
        now += rng.gen_range(1..=200_000i64);
        let src = rng.gen_range(0..cfg.vertices);
        let mut dst = rng.gen_range(0..cfg.vertices);
        if dst == src {
            dst = (dst + 1) % cfg.vertices;
        }
        let etype = EDGE_TYPES[rng.gen_range(0..EDGE_TYPES.len())];
        let label = if rng.gen_bool(0.7) {
            pool[rng.gen_range(0..pool.len())].clone()
        } else {
            format!("noise{}", rng.gen_range(0..3))
        };
        events.push(
            EdgeEvent::new(
                format!("n{src}"),
                VTYPE,
                format!("n{dst}"),
                VTYPE,
                etype,
                Timestamp::from_micros(now),
            )
            .with_attr("label", label),
        );
    }
    let span = now.max(1);

    // Planted embeddings: two copies per member, on fresh vertex keys, with
    // the member's constant on every edge — ground truth that every query
    // (and every lifted constant) matches somewhere in the stream.
    for family in 0..cfg.families {
        let (mode, sh) = &shapes[family];
        for member in 0..cfg.members_per_family {
            let constant = match mode {
                PredMode::Varied => &pool[member % pool.len()],
                _ => &pool[family % pool.len()],
            };
            for copy in 0..2 {
                let mut t = rng.gen_range(0..span);
                for (src, etype, dst) in &sh.edges {
                    t += 1_000;
                    events.push(
                        EdgeEvent::new(
                            format!("p{family}m{member}c{copy}-{src}"),
                            VTYPE,
                            format!("p{family}m{member}c{copy}-{dst}"),
                            VTYPE,
                            etype,
                            Timestamp::from_micros(t),
                        )
                        .with_attr("label", constant.as_str()),
                    );
                }
            }
        }
    }
    events.sort_by_key(|e| e.timestamp);
    DifferentialWorkload { queries, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = DifferentialConfig::default();
        let a = differential_workload(&cfg);
        let b = differential_workload(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.queries.len(), b.queries.len());
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.name(), qb.name());
            assert_eq!(qa.edge_count(), qb.edge_count());
        }
    }

    #[test]
    fn registry_covers_all_three_predicate_regimes() {
        let w = differential_workload(&DifferentialConfig::default());
        assert_eq!(w.queries.len(), 9);
        for tag in ["varied", "plain", "same"] {
            assert!(
                w.queries
                    .iter()
                    .any(|q| q.name().ends_with(&format!("_{tag}"))),
                "missing {tag} family"
            );
        }
        // Varied members differ only in their predicate constants.
        let varied: Vec<_> = w
            .queries
            .iter()
            .filter(|q| q.name().ends_with("_varied"))
            .collect();
        assert!(varied.len() >= 2);
        assert_eq!(varied[0].edge_count(), varied[1].edge_count());
        assert_ne!(
            varied[0].edges().flat_map(|e| &e.predicates).next(),
            varied[1].edges().flat_map(|e| &e.predicates).next(),
        );
    }

    #[test]
    fn stream_is_sorted_and_contains_planted_copies() {
        let w = differential_workload(&DifferentialConfig::default());
        assert!(w
            .events
            .windows(2)
            .all(|p| p[0].timestamp <= p[1].timestamp));
        assert!(w.events.iter().any(|e| e.src_key.starts_with("p0m0c0-")));
        assert!(w.events.iter().all(|e| e.attrs.get("label").is_some()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = differential_workload(&DifferentialConfig::default());
        let b = differential_workload(&DifferentialConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.events, b.events);
    }
}
