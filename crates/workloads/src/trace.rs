//! Trace serialization: write and replay edge-event streams.
//!
//! The paper's demo replays captured internet traffic (CAIDA traces). This
//! module provides the equivalent plumbing for the reproduction: any generated
//! workload can be persisted as a JSON-lines trace file and replayed later
//! (for reproducible experiments, cross-engine comparisons, or feeding an
//! engine from an external producer). One JSON object per line keeps the
//! format streamable and diff-friendly.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use streamworks_graph::{AttrValue, Attrs, EdgeEvent, Timestamp};

/// Serializable form of one edge event (one JSON line in a trace file).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TraceRecord {
    /// Source vertex external key.
    pub src: String,
    /// Source vertex type label.
    pub src_type: String,
    /// Destination vertex external key.
    pub dst: String,
    /// Destination vertex type label.
    pub dst_type: String,
    /// Edge type label.
    pub etype: String,
    /// Timestamp in microseconds of stream time.
    pub ts_micros: i64,
    /// Attributes as `(key, value)` pairs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub attrs: Vec<(String, AttrValue)>,
}

impl From<&EdgeEvent> for TraceRecord {
    fn from(ev: &EdgeEvent) -> Self {
        TraceRecord {
            src: ev.src_key.clone(),
            src_type: ev.src_type.clone(),
            dst: ev.dst_key.clone(),
            dst_type: ev.dst_type.clone(),
            etype: ev.edge_type.clone(),
            ts_micros: ev.timestamp.as_micros(),
            attrs: ev
                .attrs
                .iter()
                .map(|(k, v)| (k.to_owned(), v.clone()))
                .collect(),
        }
    }
}

impl From<TraceRecord> for EdgeEvent {
    fn from(r: TraceRecord) -> Self {
        EdgeEvent {
            src_key: r.src,
            src_type: r.src_type,
            dst_key: r.dst,
            dst_type: r.dst_type,
            edge_type: r.etype,
            timestamp: Timestamp::from_micros(r.ts_micros),
            attrs: Attrs::from_pairs(r.attrs),
        }
    }
}

/// Errors raised while reading or writing traces.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed as a trace record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes events to any writer, one JSON object per line.
pub fn write_trace<'a, W: Write>(
    writer: W,
    events: impl IntoIterator<Item = &'a EdgeEvent>,
) -> Result<usize, TraceError> {
    let mut out = BufWriter::new(writer);
    let mut count = 0usize;
    for ev in events {
        let record = TraceRecord::from(ev);
        let line = serde_json::to_string(&record).map_err(|e| TraceError::Parse {
            line: count + 1,
            message: e.to_string(),
        })?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        count += 1;
    }
    out.flush()?;
    Ok(count)
}

/// Writes events to a file path.
pub fn write_trace_file<'a>(
    path: impl AsRef<Path>,
    events: impl IntoIterator<Item = &'a EdgeEvent>,
) -> Result<usize, TraceError> {
    write_trace(File::create(path)?, events)
}

/// Reads all events from a reader (one JSON object per line, blank lines and
/// `#` comments ignored).
pub fn read_trace<R: io::Read>(reader: R) -> Result<Vec<EdgeEvent>, TraceError> {
    let buf = BufReader::new(reader);
    let mut events = Vec::new();
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let record: TraceRecord = serde_json::from_str(trimmed).map_err(|e| TraceError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        events.push(record.into());
    }
    Ok(events)
}

/// Reads all events from a file path.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<EdgeEvent>, TraceError> {
    read_trace(File::open(path)?)
}

/// An iterator that replays a trace from any reader without materialising it.
pub struct TraceReplay<R: io::Read> {
    lines: io::Lines<BufReader<R>>,
    line_no: usize,
}

impl<R: io::Read> TraceReplay<R> {
    /// Creates a replay iterator over `reader`.
    pub fn new(reader: R) -> Self {
        TraceReplay {
            lines: BufReader::new(reader).lines(),
            line_no: 0,
        }
    }
}

impl<R: io::Read> Iterator for TraceReplay<R> {
    type Item = Result<EdgeEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            match self.lines.next()? {
                Err(e) => return Some(Err(TraceError::Io(e))),
                Ok(line) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    return Some(
                        serde_json::from_str::<TraceRecord>(trimmed)
                            .map(EdgeEvent::from)
                            .map_err(|e| TraceError::Parse {
                                line: self.line_no,
                                message: e.to_string(),
                            }),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CyberConfig, CyberTrafficGenerator};

    fn sample_events() -> Vec<EdgeEvent> {
        CyberTrafficGenerator::new(CyberConfig {
            background_edges: 50,
            ..Default::default()
        })
        .generate()
        .events
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, &events).unwrap();
        assert_eq!(written, events.len());
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn replay_iterator_streams_lazily() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let replayed: Result<Vec<_>, _> = TraceReplay::new(buf.as_slice()).collect();
        assert_eq!(replayed.unwrap(), events);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "# a comment\n\n{}\n",
            serde_json::to_string(&TraceRecord {
                src: "a".into(),
                src_type: "IP".into(),
                dst: "b".into(),
                dst_type: "IP".into(),
                etype: "flow".into(),
                ts_micros: 123,
                attrs: vec![("bytes".into(), AttrValue::Int(10))],
            })
            .unwrap()
        );
        let events = read_trace(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].attrs.get("bytes").unwrap().as_int(), Some(10));
    }

    #[test]
    fn parse_errors_report_line_numbers() {
        let text = "# header\n{not json}\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let events = sample_events();
        let dir = std::env::temp_dir().join("streamworks-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_trace_file(&path, &events).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.len(), events.len());
        std::fs::remove_file(&path).ok();
    }
}
