//! Query decomposition strategies.
//!
//! Paper §4.1: the planner decomposes the query graph into small, selective
//! *search primitives* and arranges them so that "the most selective subgraph
//! \[sits\] at the lowest level in the subgraph join-tree to reduce the number
//! of partial matches". A decomposition is an ordered partition of the query's
//! edges into connected primitives; the SJ-Tree builder (see
//! [`crate::sjtree`]) then turns the ordered primitives into a join tree.
//!
//! Several strategies are provided so the plan-quality experiments (E4/E7)
//! can compare statistics-driven planning against frequency-blind baselines.

use crate::error::QueryError;
use crate::query_graph::{QueryEdgeId, QueryGraph};
use crate::selectivity::SelectivityEstimator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One search primitive: a small connected set of query edges, matched
/// directly by local search at an SJ-Tree leaf.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Primitive {
    /// The query edges covered by this primitive (sorted).
    pub edges: Vec<QueryEdgeId>,
}

impl Primitive {
    /// Creates a primitive from a set of edges.
    pub fn new(mut edges: Vec<QueryEdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Primitive { edges }
    }

    /// Number of query edges in the primitive.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the primitive covers no edges (invalid).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A pluggable decomposition strategy.
pub trait DecompositionStrategy {
    /// Name used in plan explain output and experiment tables.
    fn name(&self) -> &str;

    /// Produces an ordered list of primitives covering every query edge
    /// exactly once. The order is the join order: primitive 0 is matched
    /// first (the most selective one for selectivity-driven strategies).
    fn decompose(
        &self,
        query: &QueryGraph,
        estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError>;
}

/// Validates that `primitives` is an ordered partition of the query's edges
/// into connected primitives.
pub fn validate_decomposition(
    query: &QueryGraph,
    primitives: &[Primitive],
) -> Result<(), QueryError> {
    if primitives.is_empty() {
        return Err(QueryError::InvalidDecomposition(
            "no primitives produced".into(),
        ));
    }
    let mut covered = BTreeSet::new();
    for p in primitives {
        if p.is_empty() {
            return Err(QueryError::InvalidDecomposition("empty primitive".into()));
        }
        if !query.edges_connected(&p.edges) {
            return Err(QueryError::InvalidDecomposition(format!(
                "primitive {:?} is not connected",
                p.edges
            )));
        }
        for &e in &p.edges {
            if e.0 >= query.edge_count() {
                return Err(QueryError::InvalidDecomposition(format!(
                    "primitive references unknown edge {e:?}"
                )));
            }
            if !covered.insert(e) {
                return Err(QueryError::InvalidDecomposition(format!(
                    "edge {e:?} covered twice"
                )));
            }
        }
    }
    if covered.len() != query.edge_count() {
        return Err(QueryError::InvalidDecomposition(format!(
            "decomposition covers {} of {} edges",
            covered.len(),
            query.edge_count()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Selectivity-ordered strategy (the paper's approach)
// ---------------------------------------------------------------------------

/// Statistics-driven decomposition: greedily groups edges into primitives of
/// at most `max_primitive_size` edges, then orders primitives by estimated
/// cardinality (most selective first) while keeping the join order connected
/// whenever possible.
#[derive(Debug, Clone, Copy)]
pub struct SelectivityOrdered {
    /// Maximum number of query edges per primitive (1 or 2 are typical).
    pub max_primitive_size: usize,
}

impl Default for SelectivityOrdered {
    fn default() -> Self {
        SelectivityOrdered {
            max_primitive_size: 2,
        }
    }
}

impl DecompositionStrategy for SelectivityOrdered {
    fn name(&self) -> &str {
        "selectivity-ordered"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        query.validate()?;
        let max_size = self.max_primitive_size.max(1);

        // Rank individual edges by estimated cardinality.
        let mut remaining: Vec<QueryEdgeId> = query.edge_ids().collect();
        remaining.sort_by(|&a, &b| {
            estimator
                .edge_cardinality(query, a)
                .partial_cmp(&estimator.edge_cardinality(query, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        // Greedy grouping: take the most selective unassigned edge as a seed,
        // then extend it with the most selective adjacent unassigned edge(s).
        let mut primitives = Vec::new();
        let mut assigned: BTreeSet<QueryEdgeId> = BTreeSet::new();
        for &seed in &remaining {
            if assigned.contains(&seed) {
                continue;
            }
            let mut edges = vec![seed];
            assigned.insert(seed);
            while edges.len() < max_size {
                // Most selective unassigned edge adjacent to the primitive so far.
                let candidate = remaining
                    .iter()
                    .copied()
                    .filter(|e| !assigned.contains(e))
                    .filter(|&e| {
                        edges
                            .iter()
                            .any(|&pe| query.edge(pe).is_adjacent_to(query.edge(e)))
                    })
                    .min_by(|&a, &b| {
                        estimator
                            .edge_cardinality(query, a)
                            .partial_cmp(&estimator.edge_cardinality(query, b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                match candidate {
                    Some(e) => {
                        edges.push(e);
                        assigned.insert(e);
                    }
                    None => break,
                }
            }
            primitives.push(Primitive::new(edges));
        }

        // Order primitives: start from the most selective, then repeatedly pick
        // the most selective primitive connected to what has been placed so far.
        let mut ordered: Vec<Primitive> = Vec::with_capacity(primitives.len());
        let mut placed_vertices: BTreeSet<_> = BTreeSet::new();
        let mut pool = primitives;
        while !pool.is_empty() {
            let pick = pool
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    ordered.is_empty()
                        || query
                            .vertices_of_edges(&p.edges)
                            .iter()
                            .any(|v| placed_vertices.contains(v))
                })
                .min_by(|(_, a), (_, b)| {
                    estimator
                        .primitive_cardinality(query, &a.edges)
                        .partial_cmp(&estimator.primitive_cardinality(query, &b.edges))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                // If nothing is connected (disconnected query), fall back to the
                // globally most selective remaining primitive.
                .unwrap_or_else(|| {
                    pool.iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            estimator
                                .primitive_cardinality(query, &a.edges)
                                .partial_cmp(&estimator.primitive_cardinality(query, &b.edges))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                });
            let p = pool.remove(pick);
            placed_vertices.extend(query.vertices_of_edges(&p.edges));
            ordered.push(p);
        }

        validate_decomposition(query, &ordered)?;
        Ok(ordered)
    }
}

// ---------------------------------------------------------------------------
// Frequency-blind baselines (for the plan-quality ablation)
// ---------------------------------------------------------------------------

/// Single-edge primitives in edge-id order — the "naive" plan that ignores
/// selectivity entirely. Used as the ablation baseline in experiment E7.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeftDeepEdgeChain;

impl DecompositionStrategy for LeftDeepEdgeChain {
    fn name(&self) -> &str {
        "left-deep-edge-chain"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        _estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        query.validate()?;
        // Edge-id order, but re-ordered minimally so that each primitive shares
        // a vertex with the edges placed before it (keeps joins non-cartesian).
        let mut remaining: Vec<QueryEdgeId> = query.edge_ids().collect();
        let mut ordered = Vec::new();
        let mut placed_vertices: BTreeSet<_> = BTreeSet::new();
        while !remaining.is_empty() {
            let idx = remaining
                .iter()
                .position(|&e| {
                    ordered.is_empty()
                        || query
                            .vertices_of_edges(&[e])
                            .iter()
                            .any(|v| placed_vertices.contains(v))
                })
                .unwrap_or(0);
            let e = remaining.remove(idx);
            placed_vertices.extend(query.vertices_of_edges(&[e]));
            ordered.push(Primitive::new(vec![e]));
        }
        validate_decomposition(query, &ordered)?;
        Ok(ordered)
    }
}

/// Pairs adjacent edges in edge-id order into two-edge primitives (a balanced,
/// statistics-free decomposition similar to the alternative plans of Fig. 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedPairs;

impl DecompositionStrategy for BalancedPairs {
    fn name(&self) -> &str {
        "balanced-pairs"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        _estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        query.validate()?;
        let mut assigned: BTreeSet<QueryEdgeId> = BTreeSet::new();
        let mut primitives = Vec::new();
        for e in query.edge_ids() {
            if assigned.contains(&e) {
                continue;
            }
            assigned.insert(e);
            // First unassigned adjacent edge, in id order.
            let partner = query
                .edge_ids()
                .filter(|x| !assigned.contains(x))
                .find(|&x| query.edge(e).is_adjacent_to(query.edge(x)));
            match partner {
                Some(p) => {
                    assigned.insert(p);
                    primitives.push(Primitive::new(vec![e, p]));
                }
                None => primitives.push(Primitive::new(vec![e])),
            }
        }
        validate_decomposition(query, &primitives)?;
        Ok(primitives)
    }
}

/// An explicit, user-provided decomposition (the paper's Fig. 7 compares
/// hand-picked plans; this is how such plans are expressed).
#[derive(Debug, Clone)]
pub struct ManualDecomposition {
    primitives: Vec<Primitive>,
}

impl ManualDecomposition {
    /// Creates a manual decomposition from explicit edge groups, in join order.
    pub fn new(groups: Vec<Vec<QueryEdgeId>>) -> Self {
        ManualDecomposition {
            primitives: groups.into_iter().map(Primitive::new).collect(),
        }
    }
}

impl DecompositionStrategy for ManualDecomposition {
    fn name(&self) -> &str {
        "manual"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        _estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        validate_decomposition(query, &self.primitives)?;
        Ok(self.primitives.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use streamworks_graph::Duration;

    /// The Fig. 2 query: three articles sharing a keyword and a location.
    fn fig2_query() -> QueryGraph {
        QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap()
    }

    #[test]
    fn selectivity_ordered_covers_all_edges_with_connected_pairs() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        let prims = SelectivityOrdered::default().decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        assert_eq!(prims.iter().map(|p| p.len()).sum::<usize>(), 6);
        assert!(prims.iter().all(|p| p.len() <= 2));
        // Pairs must be connected.
        for p in &prims {
            assert!(q.edges_connected(&p.edges));
        }
    }

    #[test]
    fn single_edge_primitives_when_size_is_one() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        let prims = SelectivityOrdered {
            max_primitive_size: 1,
        }
        .decompose(&q, &est)
        .unwrap();
        assert_eq!(prims.len(), 6);
        assert!(prims.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn left_deep_chain_keeps_join_connectivity() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        let prims = LeftDeepEdgeChain.decompose(&q, &est).unwrap();
        assert_eq!(prims.len(), 6);
        // Each primitive after the first must share a vertex with what precedes it.
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(q.vertices_of_edges(&prims[0].edges));
        for p in &prims[1..] {
            let verts = q.vertices_of_edges(&p.edges);
            assert!(verts.iter().any(|v| seen.contains(v)));
            seen.extend(verts);
        }
    }

    #[test]
    fn balanced_pairs_pair_adjacent_edges() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        let prims = BalancedPairs.decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        assert_eq!(prims.iter().map(|p| p.len()).sum::<usize>(), 6);
        assert!(prims.iter().all(|p| p.len() <= 2));
    }

    #[test]
    fn manual_decomposition_validates_cover() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        // Fig. 2's decomposition: (a1 edges), (a2 edges), (a3 edges).
        let manual = ManualDecomposition::new(vec![
            vec![QueryEdgeId(0), QueryEdgeId(3)],
            vec![QueryEdgeId(1), QueryEdgeId(4)],
            vec![QueryEdgeId(2), QueryEdgeId(5)],
        ]);
        let prims = manual.decompose(&q, &est).unwrap();
        assert_eq!(prims.len(), 3);

        // Missing edges are rejected.
        let bad = ManualDecomposition::new(vec![vec![QueryEdgeId(0)]]);
        assert!(bad.decompose(&q, &est).is_err());
        // Duplicate coverage is rejected.
        let dup = ManualDecomposition::new(vec![
            vec![QueryEdgeId(0), QueryEdgeId(1)],
            vec![QueryEdgeId(1), QueryEdgeId(2)],
            vec![QueryEdgeId(3), QueryEdgeId(4)],
            vec![QueryEdgeId(5)],
        ]);
        assert!(dup.decompose(&q, &est).is_err());
        // Disconnected primitives are rejected.
        let disc = ManualDecomposition::new(vec![
            vec![QueryEdgeId(1), QueryEdgeId(3)],
            vec![QueryEdgeId(0), QueryEdgeId(2)],
            vec![QueryEdgeId(4), QueryEdgeId(5)],
        ]);
        assert!(disc.decompose(&q, &est).is_err());
    }

    #[test]
    fn empty_query_is_rejected() {
        let q = QueryGraph::new("empty", Duration::from_secs(1));
        let est = SelectivityEstimator::without_summary();
        assert!(SelectivityOrdered::default().decompose(&q, &est).is_err());
        assert!(LeftDeepEdgeChain.decompose(&q, &est).is_err());
    }
}
