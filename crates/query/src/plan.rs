//! Query planning: from a [`QueryGraph`] plus statistics to an executable
//! [`QueryPlan`] holding an SJ-Tree shape.
//!
//! This is the "Query Planning" box of paper Fig. 1 / §4.1: decompose the
//! query into search primitives using the summaries, order them by
//! selectivity, and materialize the SJ-Tree the incremental matcher will run.

use crate::decompose::{DecompositionStrategy, Primitive, SelectivityOrdered};
use crate::error::QueryError;
use crate::query_graph::{QueryEdgeId, QueryGraph};
use crate::selectivity::{SelectivityEstimator, TypeResolver};
use crate::sjtree::SjTreeShape;
use serde::{Deserialize, Serialize};
use streamworks_summarize::GraphSummary;

/// Shape of the join tree built over the ordered primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeShapeKind {
    /// Left-deep chain (the paper's default; joins happen in primitive order).
    LeftDeep,
    /// Balanced binary tree over the primitives.
    Balanced,
}

/// A fully planned query, ready to be registered with the engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The query this plan executes.
    pub query: QueryGraph,
    /// The SJ-Tree shape.
    pub shape: SjTreeShape,
    /// Name of the decomposition strategy that produced the primitives.
    pub strategy: String,
    /// Shape kind used to assemble the tree.
    pub tree_kind: TreeShapeKind,
    /// The ordered primitives (leaves, in join order).
    pub primitives: Vec<Primitive>,
    /// Per-query-edge cardinality estimates available at planning time.
    pub edge_estimates: Vec<(QueryEdgeId, f64)>,
}

impl QueryPlan {
    /// Multi-line, human-readable plan description (decomposition, join order,
    /// estimates) — the library equivalent of the demo's plan visualisation.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan for query `{}` (window {}s)\n",
            self.query.name(),
            self.query.window().as_secs()
        ));
        out.push_str(&format!(
            "strategy: {} / {:?}, {} primitives, tree height {}\n",
            self.strategy,
            self.tree_kind,
            self.primitives.len(),
            self.shape.height()
        ));
        out.push_str("edge estimates:\n");
        for (e, card) in &self.edge_estimates {
            out.push_str(&format!(
                "  {:>10.1}  {}\n",
                card,
                self.query.describe_edge(*e)
            ));
        }
        out.push_str("sj-tree:\n");
        out.push_str(&self.shape.render(&self.query));
        out
    }
}

/// Planner front-end.
pub struct Planner<'a> {
    summary: Option<&'a GraphSummary>,
    resolver: Option<&'a dyn TypeResolver>,
    tree_kind: TreeShapeKind,
}

impl<'a> Default for Planner<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Planner<'a> {
    /// Creates a planner with no statistics and a left-deep tree shape.
    pub fn new() -> Self {
        Planner {
            summary: None,
            resolver: None,
            tree_kind: TreeShapeKind::LeftDeep,
        }
    }

    /// Supplies graph statistics and a type resolver (usually the data graph).
    pub fn with_statistics(
        mut self,
        summary: &'a GraphSummary,
        resolver: &'a dyn TypeResolver,
    ) -> Self {
        self.summary = Some(summary);
        self.resolver = Some(resolver);
        self
    }

    /// Selects the tree shape.
    pub fn tree_kind(mut self, kind: TreeShapeKind) -> Self {
        self.tree_kind = kind;
        self
    }

    fn estimator(&self) -> SelectivityEstimator<'a> {
        match (self.summary, self.resolver) {
            (Some(s), Some(r)) => SelectivityEstimator::with_summary(s, r),
            _ => SelectivityEstimator::without_summary(),
        }
    }

    /// Plans `query` with the default, paper-style strategy
    /// (selectivity-ordered two-edge primitives).
    pub fn plan(&self, query: QueryGraph) -> Result<QueryPlan, QueryError> {
        self.plan_with(query, &SelectivityOrdered::default())
    }

    /// Plans `query` with an explicit decomposition strategy.
    pub fn plan_with(
        &self,
        query: QueryGraph,
        strategy: &dyn DecompositionStrategy,
    ) -> Result<QueryPlan, QueryError> {
        query.validate()?;
        let estimator = self.estimator();
        let primitives = strategy.decompose(&query, &estimator)?;
        let shape = match self.tree_kind {
            TreeShapeKind::LeftDeep => SjTreeShape::left_deep(&query, &primitives)?,
            TreeShapeKind::Balanced => SjTreeShape::balanced(&query, &primitives)?,
        };
        let edge_estimates = estimator.all_edge_estimates(&query);
        Ok(QueryPlan {
            query,
            shape,
            strategy: strategy.name().to_owned(),
            tree_kind: self.tree_kind,
            primitives,
            edge_estimates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use crate::decompose::LeftDeepEdgeChain;
    use streamworks_graph::{Duration, DynamicGraph, EdgeEvent, Timestamp};
    use streamworks_summarize::SummaryConfig;

    fn cyber_query() -> QueryGraph {
        QueryGraphBuilder::new("scan")
            .window(Duration::from_mins(5))
            .vertex("attacker", "IP")
            .vertex("t1", "IP")
            .vertex("t2", "IP")
            .edge("attacker", "flow", "t1")
            .edge("attacker", "flow", "t2")
            .edge("attacker", "dns", "t1")
            .build()
            .unwrap()
    }

    #[test]
    fn default_plan_is_valid_and_explains() {
        let plan = Planner::new().plan(cyber_query()).unwrap();
        plan.shape.validate(&plan.query).unwrap();
        let explain = plan.explain();
        assert!(explain.contains("selectivity-ordered"));
        assert!(explain.contains("sj-tree:"));
        assert!(explain.contains("window 300s"));
        assert_eq!(plan.edge_estimates.len(), 3);
    }

    #[test]
    fn statistics_change_the_join_order() {
        // Build a graph where dns edges are rare and flow edges are common.
        let mut g = DynamicGraph::unbounded();
        let mut s = streamworks_summarize::GraphSummary::with_config(SummaryConfig::full());
        let mut t = 0;
        let push = |g: &mut DynamicGraph,
                    s: &mut streamworks_summarize::GraphSummary,
                    src: String,
                    et: &str,
                    dst: String,
                    t: i64| {
            let ev = EdgeEvent::new(src, "IP", dst, "IP", et, Timestamp::from_secs(t));
            let r = g.ingest(&ev);
            if r.src_created {
                s.observe_vertex(g.vertex(r.src).unwrap().vtype);
            }
            if r.dst_created {
                s.observe_vertex(g.vertex(r.dst).unwrap().vtype);
            }
            let e = g.edge(r.edge).unwrap().clone();
            s.observe_insertion(g, &e);
        };
        for i in 0..200 {
            push(
                &mut g,
                &mut s,
                format!("h{}", i % 20),
                "flow",
                format!("h{}", (i + 1) % 20),
                t,
            );
            t += 1;
        }
        for i in 0..3 {
            push(
                &mut g,
                &mut s,
                format!("h{i}"),
                "dns",
                format!("h{}", i + 1),
                t,
            );
            t += 1;
        }

        let plan = Planner::new()
            .with_statistics(&s, &g)
            .plan_with(
                cyber_query(),
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap();
        // The first (most selective) primitive must be the dns edge (edge id 2).
        assert_eq!(plan.primitives[0].edges, vec![QueryEdgeId(2)]);

        // The frequency-blind plan starts with edge 0 instead.
        let blind = Planner::new()
            .with_statistics(&s, &g)
            .plan_with(cyber_query(), &LeftDeepEdgeChain)
            .unwrap();
        assert_eq!(blind.primitives[0].edges, vec![QueryEdgeId(0)]);
    }

    #[test]
    fn balanced_tree_kind_is_respected() {
        let q = QueryGraphBuilder::new("path")
            .edge("a", "t", "b")
            .edge("b", "t", "c")
            .edge("c", "t", "d")
            .edge("d", "t", "e")
            .build()
            .unwrap();
        let plan = Planner::new()
            .tree_kind(TreeShapeKind::Balanced)
            .plan_with(q, &LeftDeepEdgeChain)
            .unwrap();
        assert_eq!(plan.tree_kind, TreeShapeKind::Balanced);
        assert!(plan.shape.height() <= 3);
    }

    #[test]
    fn plan_serializes_to_json() {
        let plan = Planner::new().plan(cyber_query()).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("\"strategy\""));
        let back: QueryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.query.name(), "scan");
        assert_eq!(back.shape.node_count(), plan.shape.node_count());
    }
}
