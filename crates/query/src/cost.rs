//! Plan cost model and cost-driven decomposition strategies.
//!
//! Paper §4.1 states the planning goal — "push the most selective subgraph at
//! the lowest level in the subgraph join-tree to reduce the number of partial
//! matches" — and §4.3 lists the multi-relational triad distribution as a
//! statistic whose incorporation into decomposition was work in progress.
//! This module supplies both:
//!
//! * a **cost model** ([`estimate_shape_cost`]) that, given a
//!   [`SelectivityEstimator`], predicts how many partial matches each SJ-Tree
//!   node will store (the quantity the paper wants to minimise), and
//! * two statistics-driven strategies built on top of it:
//!   [`CostBasedOrdered`], which searches over join orders to minimise the
//!   total predicted partial-match population (exact dynamic programming for
//!   small queries, greedy beyond that), and [`TriadWedges`], which pairs
//!   adjacent query edges into the wedge primitives the triad distribution can
//!   estimate directly and then orders them with the same cost objective.
//!
//! The ablation experiment E7 compares these against the simpler
//! [`crate::SelectivityOrdered`] strategy and the frequency-blind baselines.

use crate::decompose::{validate_decomposition, DecompositionStrategy, Primitive};
use crate::error::QueryError;
use crate::query_graph::{QueryEdgeId, QueryGraph};
use crate::selectivity::SelectivityEstimator;
use crate::sjtree::{SjNodeId, SjTreeShape};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Predicted cost of a single SJ-Tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCostEstimate {
    /// The SJ-Tree node this estimate concerns.
    pub node: SjNodeId,
    /// Query edges covered by the node's subgraph.
    pub edges: Vec<QueryEdgeId>,
    /// Whether the node is a leaf (search primitive) or an internal join node.
    pub is_leaf: bool,
    /// Estimated number of matching data subgraphs the node will store.
    pub estimated_matches: f64,
}

/// Predicted cost of a whole SJ-Tree shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCostEstimate {
    /// Per-node estimates, in the shape's node order (leaves first).
    pub nodes: Vec<NodeCostEstimate>,
    /// Sum of the estimated match populations of every non-root node — the
    /// partial matches the engine must keep live (the paper's objective).
    pub stored_partial_matches: f64,
    /// Estimated number of complete matches produced at the root.
    pub root_matches: f64,
}

impl ShapeCostEstimate {
    /// Human-readable rendering used by plan-explain output and the
    /// plan-ablation experiment binary.
    pub fn render(&self, query: &QueryGraph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "estimated stored partial matches: {:.1}, complete matches: {:.1}\n",
            self.stored_partial_matches, self.root_matches
        ));
        for n in &self.nodes {
            let edges: Vec<String> = n.edges.iter().map(|&e| query.describe_edge(e)).collect();
            out.push_str(&format!(
                "  {} n{:<2} {:>12.1}  {{{}}}\n",
                if n.is_leaf { "leaf" } else { "join" },
                n.node.0,
                n.estimated_matches,
                edges.join(", ")
            ));
        }
        out
    }
}

/// Predicts, for every node of `shape`, how many matching data subgraphs the
/// incremental matcher will store there, using the estimator's chain estimate
/// for the node's query subgraph.
pub fn estimate_shape_cost(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    shape: &SjTreeShape,
) -> ShapeCostEstimate {
    let mut nodes = Vec::with_capacity(shape.node_count());
    let mut stored = 0.0;
    let mut root_matches = 0.0;
    for node in shape.nodes() {
        let estimated = estimator.subgraph_cardinality(query, &node.edges);
        if node.id == shape.root() {
            root_matches = estimated;
        } else {
            stored += estimated;
        }
        nodes.push(NodeCostEstimate {
            node: node.id,
            edges: node.edges.clone(),
            is_leaf: node.is_leaf(),
            estimated_matches: estimated,
        });
    }
    ShapeCostEstimate {
        nodes,
        stored_partial_matches: stored,
        root_matches,
    }
}

/// Total predicted partial-match population of a left-deep join over
/// `primitives` in the given order: every prefix of the order becomes an
/// internal node, every primitive a leaf.
pub fn left_deep_order_cost(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    primitives: &[Primitive],
) -> f64 {
    if primitives.is_empty() {
        return f64::INFINITY;
    }
    let mut cost = 0.0;
    let mut prefix: Vec<QueryEdgeId> = Vec::new();
    for (i, p) in primitives.iter().enumerate() {
        cost += estimator.primitive_cardinality(query, &p.edges);
        prefix.extend(p.edges.iter().copied());
        // Every prefix except the final (root) one is stored as partial state.
        if i > 0 && i + 1 < primitives.len() {
            cost += estimator.subgraph_cardinality(query, &prefix);
        }
    }
    cost
}

// ---------------------------------------------------------------------------
// Cost-based join ordering
// ---------------------------------------------------------------------------

/// Orders `primitives` (in place, returned) so that the total predicted
/// partial-match population of the left-deep join is minimal.
///
/// For up to `exhaustive_limit` primitives the order is found by dynamic
/// programming over primitive subsets (Selinger-style, restricted to
/// connected prefixes when possible); beyond that a greedy ordering is used:
/// start from the most selective primitive and repeatedly append the connected
/// primitive whose addition keeps the predicted prefix population smallest.
fn order_primitives_by_cost(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    primitives: Vec<Primitive>,
    exhaustive_limit: usize,
) -> Vec<Primitive> {
    let n = primitives.len();
    if n <= 1 {
        return primitives;
    }
    if n <= exhaustive_limit && n <= 16 {
        order_exhaustive_dp(query, estimator, primitives)
    } else {
        order_greedy(query, estimator, primitives)
    }
}

fn primitive_vertices(query: &QueryGraph, p: &Primitive) -> BTreeSet<crate::QueryVertexId> {
    query.vertices_of_edges(&p.edges).into_iter().collect()
}

fn connected_to(
    query: &QueryGraph,
    placed_vertices: &BTreeSet<crate::QueryVertexId>,
    p: &Primitive,
) -> bool {
    primitive_vertices(query, p)
        .iter()
        .any(|v| placed_vertices.contains(v))
}

fn order_greedy(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    mut pool: Vec<Primitive>,
) -> Vec<Primitive> {
    let mut ordered: Vec<Primitive> = Vec::with_capacity(pool.len());
    let mut placed_vertices: BTreeSet<crate::QueryVertexId> = BTreeSet::new();
    let mut prefix_edges: Vec<QueryEdgeId> = Vec::new();
    while !pool.is_empty() {
        let candidates: Vec<usize> = (0..pool.len())
            .filter(|&i| ordered.is_empty() || connected_to(query, &placed_vertices, &pool[i]))
            .collect();
        let candidates = if candidates.is_empty() {
            (0..pool.len()).collect()
        } else {
            candidates
        };
        let pick = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let cost = |idx: usize| {
                    if ordered.is_empty() {
                        estimator.primitive_cardinality(query, &pool[idx].edges)
                    } else {
                        let mut edges = prefix_edges.clone();
                        edges.extend(pool[idx].edges.iter().copied());
                        estimator.subgraph_cardinality(query, &edges)
                    }
                };
                cost(a)
                    .partial_cmp(&cost(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("pool is non-empty");
        let p = pool.remove(pick);
        placed_vertices.extend(primitive_vertices(query, &p));
        prefix_edges.extend(p.edges.iter().copied());
        ordered.push(p);
    }
    ordered
}

fn order_exhaustive_dp(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    primitives: Vec<Primitive>,
) -> Vec<Primitive> {
    let n = primitives.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // Pre-compute the chain estimate of every subset (the cost of storing
    // that subset as an intermediate node) and whether the subset's edge set
    // is connected.
    let subset_edges = |mask: u32| -> Vec<QueryEdgeId> {
        let mut edges = Vec::new();
        for (i, p) in primitives.iter().enumerate() {
            if mask & (1 << i) != 0 {
                edges.extend(p.edges.iter().copied());
            }
        }
        edges
    };
    let mut subset_cost = vec![0.0f64; (full as usize) + 1];
    let mut subset_connected = vec![false; (full as usize) + 1];
    for mask in 1..=full {
        let edges = subset_edges(mask);
        subset_cost[mask as usize] = if mask.count_ones() == 1 {
            let idx = mask.trailing_zeros() as usize;
            estimator.primitive_cardinality(query, &primitives[idx].edges)
        } else {
            estimator.subgraph_cardinality(query, &edges)
        };
        subset_connected[mask as usize] = query.edges_connected(&edges);
    }

    // dp[mask] = (min total cost of materialising the prefix `mask`, last primitive).
    let mut dp = vec![(f64::INFINITY, usize::MAX); (full as usize) + 1];
    for i in 0..n {
        let mask = 1u32 << i;
        dp[mask as usize] = (subset_cost[mask as usize], i);
    }
    for mask in 1..=full {
        let (cost_so_far, _) = dp[mask as usize];
        if !cost_so_far.is_finite() {
            continue;
        }
        for next in 0..n {
            if mask & (1 << next) != 0 {
                continue;
            }
            let new_mask = mask | (1 << next);
            // Prefer connected prefixes; allow disconnected ones only when the
            // query itself forces them (handled by the greedy fallback below).
            if !subset_connected[new_mask as usize] && subset_connected[full as usize] {
                continue;
            }
            // The newly formed prefix is stored as an internal node unless it
            // is the root (all primitives placed).
            let stored = if new_mask == full {
                0.0
            } else {
                subset_cost[new_mask as usize]
            };
            let leaf = subset_cost[(1u32 << next) as usize];
            let cand = cost_so_far + leaf + stored;
            if cand < dp[new_mask as usize].0 {
                dp[new_mask as usize] = (cand, next);
            }
        }
    }

    if !dp[full as usize].0.is_finite() {
        // The connectivity restriction made the full order unreachable
        // (disconnected query); fall back to the greedy ordering.
        return order_greedy(query, estimator, primitives);
    }

    // Reconstruct the order by walking back from the full set.
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (_, last) = dp[mask as usize];
        order_rev.push(last);
        mask &= !(1u32 << last);
        if order_rev.len() > n {
            break;
        }
    }
    order_rev.reverse();
    let mut taken: Vec<Option<Primitive>> = primitives.into_iter().map(Some).collect();
    order_rev
        .into_iter()
        .filter_map(|i| taken[i].take())
        .collect()
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Cost-based decomposition: greedy wedge grouping (like
/// [`crate::SelectivityOrdered`]) followed by a join-order search that
/// minimises the total predicted partial-match population of the left-deep
/// SJ-Tree.
#[derive(Debug, Clone, Copy)]
pub struct CostBasedOrdered {
    /// Maximum number of query edges per primitive (1 or 2 are typical).
    pub max_primitive_size: usize,
    /// Largest number of primitives for which the exact DP ordering is used;
    /// larger plans fall back to the greedy ordering.
    pub exhaustive_limit: usize,
}

impl Default for CostBasedOrdered {
    fn default() -> Self {
        CostBasedOrdered {
            max_primitive_size: 2,
            exhaustive_limit: 12,
        }
    }
}

impl DecompositionStrategy for CostBasedOrdered {
    fn name(&self) -> &str {
        "cost-based"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        query.validate()?;
        let grouped = group_min_cardinality(query, estimator, self.max_primitive_size.max(1));
        let ordered = order_primitives_by_cost(query, estimator, grouped, self.exhaustive_limit);
        validate_decomposition(query, &ordered)?;
        Ok(ordered)
    }
}

/// Triad-statistics-driven decomposition (paper §4.3's "work in progress"):
/// adjacent query edges are paired into the two-edge wedge primitives whose
/// cardinality the multi-relational triad distribution estimates directly,
/// choosing the pairing that minimises the summed wedge estimates; the wedges
/// are then ordered with the cost model.
#[derive(Debug, Clone, Copy)]
pub struct TriadWedges {
    /// Largest number of primitives for which the exact DP ordering is used.
    pub exhaustive_limit: usize,
}

impl Default for TriadWedges {
    fn default() -> Self {
        TriadWedges {
            exhaustive_limit: 12,
        }
    }
}

impl DecompositionStrategy for TriadWedges {
    fn name(&self) -> &str {
        "triad-wedges"
    }

    fn decompose(
        &self,
        query: &QueryGraph,
        estimator: &SelectivityEstimator<'_>,
    ) -> Result<Vec<Primitive>, QueryError> {
        query.validate()?;
        // Greedy minimum-weight matching over adjacent edge pairs: repeatedly
        // take the unassigned adjacent pair with the smallest wedge estimate.
        let edges: Vec<QueryEdgeId> = query.edge_ids().collect();
        let mut pairs: Vec<(f64, QueryEdgeId, QueryEdgeId)> = Vec::new();
        for (i, &a) in edges.iter().enumerate() {
            for &b in &edges[i + 1..] {
                if query.edge(a).is_adjacent_to(query.edge(b)) {
                    pairs.push((estimator.primitive_cardinality(query, &[a, b]), a, b));
                }
            }
        }
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut assigned: BTreeSet<QueryEdgeId> = BTreeSet::new();
        let mut primitives = Vec::new();
        for (_, a, b) in pairs {
            if assigned.contains(&a) || assigned.contains(&b) {
                continue;
            }
            assigned.insert(a);
            assigned.insert(b);
            primitives.push(Primitive::new(vec![a, b]));
        }
        for &e in &edges {
            if !assigned.contains(&e) {
                primitives.push(Primitive::new(vec![e]));
            }
        }
        let ordered = order_primitives_by_cost(query, estimator, primitives, self.exhaustive_limit);
        validate_decomposition(query, &ordered)?;
        Ok(ordered)
    }
}

/// Greedy grouping of query edges into primitives of at most `max_size`
/// edges, seeding each primitive with the most selective unassigned edge and
/// extending it with the adjacent edge that keeps the primitive estimate
/// smallest.
fn group_min_cardinality(
    query: &QueryGraph,
    estimator: &SelectivityEstimator<'_>,
    max_size: usize,
) -> Vec<Primitive> {
    let mut ranked: Vec<QueryEdgeId> = query.edge_ids().collect();
    ranked.sort_by(|&a, &b| {
        estimator
            .edge_cardinality(query, a)
            .partial_cmp(&estimator.edge_cardinality(query, b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut assigned: BTreeSet<QueryEdgeId> = BTreeSet::new();
    let mut primitives = Vec::new();
    for &seed in &ranked {
        if assigned.contains(&seed) {
            continue;
        }
        let mut edges = vec![seed];
        assigned.insert(seed);
        while edges.len() < max_size {
            let candidate = ranked
                .iter()
                .copied()
                .filter(|e| !assigned.contains(e))
                .filter(|&e| {
                    edges
                        .iter()
                        .any(|&pe| query.edge(pe).is_adjacent_to(query.edge(e)))
                })
                .min_by(|&a, &b| {
                    let cost = |x: QueryEdgeId| {
                        let mut with = edges.clone();
                        with.push(x);
                        estimator.primitive_cardinality(query, &with)
                    };
                    cost(a)
                        .partial_cmp(&cost(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            match candidate {
                Some(e) => {
                    edges.push(e);
                    assigned.insert(e);
                }
                None => break,
            }
        }
        primitives.push(Primitive::new(edges));
    }
    primitives
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use crate::decompose::{LeftDeepEdgeChain, SelectivityOrdered};
    use crate::plan::Planner;
    use streamworks_graph::{Duration, DynamicGraph, EdgeEvent, Timestamp};
    use streamworks_summarize::{GraphSummary, SummaryConfig};

    fn fig2_query() -> QueryGraph {
        QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap()
    }

    /// A small news-like data graph: many mention edges, few located edges.
    fn news_graph() -> (DynamicGraph, GraphSummary) {
        let mut g = DynamicGraph::unbounded();
        let mut s = GraphSummary::with_config(SummaryConfig::full());
        let push = |g: &mut DynamicGraph,
                    s: &mut GraphSummary,
                    src: &str,
                    st: &str,
                    dst: &str,
                    dt: &str,
                    et: &str,
                    t: i64| {
            let ev = EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t));
            let r = g.ingest(&ev);
            if r.src_created {
                s.observe_vertex(g.vertex(r.src).unwrap().vtype);
            }
            if r.dst_created {
                s.observe_vertex(g.vertex(r.dst).unwrap().vtype);
            }
            let e = g.edge(r.edge).unwrap().clone();
            s.observe_insertion(g, &e);
        };
        let mut t = 0;
        for a in 0..30 {
            for k in 0..4 {
                push(
                    &mut g,
                    &mut s,
                    &format!("a{a}"),
                    "Article",
                    &format!("k{k}"),
                    "Keyword",
                    "mentions",
                    t,
                );
                t += 1;
            }
        }
        for a in 0..5 {
            push(
                &mut g,
                &mut s,
                &format!("a{a}"),
                "Article",
                "paris",
                "Location",
                "located",
                t,
            );
            t += 1;
        }
        (g, s)
    }

    #[test]
    fn cost_based_plan_is_valid_and_not_worse_than_blind() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let cost_prims = CostBasedOrdered::default().decompose(&q, &est).unwrap();
        validate_decomposition(&q, &cost_prims).unwrap();
        let blind_prims = LeftDeepEdgeChain.decompose(&q, &est).unwrap();
        let cost_cost = left_deep_order_cost(&q, &est, &cost_prims);
        let blind_cost = left_deep_order_cost(&q, &est, &blind_prims);
        assert!(
            cost_cost <= blind_cost,
            "cost-based {cost_cost} should not exceed blind {blind_cost}"
        );
    }

    #[test]
    fn cost_based_not_worse_than_simple_selectivity_ordering() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let cost_prims = CostBasedOrdered::default().decompose(&q, &est).unwrap();
        let sel_prims = SelectivityOrdered::default().decompose(&q, &est).unwrap();
        let cost_cost = left_deep_order_cost(&q, &est, &cost_prims);
        let sel_cost = left_deep_order_cost(&q, &est, &sel_prims);
        assert!(cost_cost <= sel_cost + 1e-9, "{cost_cost} vs {sel_cost}");
    }

    #[test]
    fn triad_wedges_produce_two_edge_primitives_on_fig2() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let prims = TriadWedges::default().decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        // The 6-edge Fig. 2 query decomposes into exactly three wedges.
        assert_eq!(prims.len(), 3);
        assert!(prims.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn triad_wedges_handle_odd_edge_counts() {
        let q = QueryGraphBuilder::new("tri")
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .edge("a", "x", "b")
            .edge("b", "y", "c")
            .edge("c", "z", "a")
            .build()
            .unwrap();
        let est = SelectivityEstimator::without_summary();
        let prims = TriadWedges::default().decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        assert_eq!(prims.iter().map(|p| p.len()).sum::<usize>(), 3);
        // One wedge plus one leftover single edge.
        assert_eq!(prims.len(), 2);
    }

    #[test]
    fn shape_cost_estimates_every_node_and_sums_non_root() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let plan = Planner::new()
            .with_statistics(&s, &g)
            .plan_with(q.clone(), &CostBasedOrdered::default())
            .unwrap();
        let cost = estimate_shape_cost(&q, &est, &plan.shape);
        assert_eq!(cost.nodes.len(), plan.shape.node_count());
        let non_root_sum: f64 = cost
            .nodes
            .iter()
            .filter(|n| n.node != plan.shape.root())
            .map(|n| n.estimated_matches)
            .sum();
        assert!((non_root_sum - cost.stored_partial_matches).abs() < 1e-6);
        assert!(cost.root_matches >= 0.0);
        let rendered = cost.render(&q);
        assert!(rendered.contains("estimated stored partial matches"));
        assert!(rendered.contains("leaf"));
    }

    #[test]
    fn selective_plans_have_lower_estimated_cost_on_skewed_data() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let planner = Planner::new().with_statistics(&s, &g);
        let cost_plan = planner
            .plan_with(q.clone(), &CostBasedOrdered::default())
            .unwrap();
        let blind_plan = planner.plan_with(q.clone(), &LeftDeepEdgeChain).unwrap();
        let c = estimate_shape_cost(&q, &est, &cost_plan.shape).stored_partial_matches;
        let b = estimate_shape_cost(&q, &est, &blind_plan.shape).stored_partial_matches;
        assert!(c <= b, "cost-based {c} vs blind {b}");
    }

    #[test]
    fn greedy_ordering_used_beyond_exhaustive_limit() {
        // A long path forces many primitives; with exhaustive_limit 2 the DP is
        // skipped and the greedy path must still produce a valid plan.
        let mut b = QueryGraphBuilder::new("long_path");
        for i in 0..9 {
            b = b.edge(&format!("v{i}"), "t", &format!("v{}", i + 1));
        }
        let q = b.build().unwrap();
        let est = SelectivityEstimator::without_summary();
        let strat = CostBasedOrdered {
            max_primitive_size: 1,
            exhaustive_limit: 2,
        };
        let prims = strat.decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        assert_eq!(prims.len(), 9);
    }

    #[test]
    fn disconnected_queries_fall_back_to_greedy_order() {
        let q = QueryGraphBuilder::new("two_parts")
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .vertex("d", "D")
            .edge("a", "x", "b")
            .edge("c", "y", "d")
            .build()
            .unwrap();
        let est = SelectivityEstimator::without_summary();
        let prims = CostBasedOrdered::default().decompose(&q, &est).unwrap();
        validate_decomposition(&q, &prims).unwrap();
        assert_eq!(prims.iter().map(|p| p.len()).sum::<usize>(), 2);
    }

    #[test]
    fn left_deep_order_cost_penalises_bad_orders() {
        let (g, s) = news_graph();
        let q = fig2_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        // Good order: start with a (mentions, located) wedge anchored on the
        // rare located edge. Bad order: chain the three frequent mention edges
        // first.
        let good = vec![
            Primitive::new(vec![QueryEdgeId(0), QueryEdgeId(3)]),
            Primitive::new(vec![QueryEdgeId(1), QueryEdgeId(4)]),
            Primitive::new(vec![QueryEdgeId(2), QueryEdgeId(5)]),
        ];
        let bad = vec![
            Primitive::new(vec![QueryEdgeId(0)]),
            Primitive::new(vec![QueryEdgeId(1)]),
            Primitive::new(vec![QueryEdgeId(2)]),
            Primitive::new(vec![QueryEdgeId(3)]),
            Primitive::new(vec![QueryEdgeId(4)]),
            Primitive::new(vec![QueryEdgeId(5)]),
        ];
        let good_cost = left_deep_order_cost(&q, &est, &good);
        let bad_cost = left_deep_order_cost(&q, &est, &bad);
        assert!(good_cost < bad_cost, "good={good_cost} bad={bad_cost}");
        assert!(left_deep_order_cost(&q, &est, &[]).is_infinite());
    }
}
