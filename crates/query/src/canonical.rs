//! Structural canonicalization of search primitives, for multi-query sharing.
//!
//! StreamWorks is a *registry* system: many standing queries watch one
//! stream, and registries built from shared templates (the Fig. 5 labelled
//! query family, per-tenant instantiations of one detection pattern) contain
//! many *structurally identical* search primitives that differ only in how
//! their query vertices are named. "Query Optimization for Dynamic Graphs"
//! (Choudhury et al., 2014) decomposes queries into primitives precisely so
//! such common substructures can be detected and evaluated **once**.
//!
//! [`CanonicalPrimitive`] is the detection half of that idea: a canonical
//! form of one decomposed [`Primitive`](crate::Primitive) — its typed,
//! directed edges plus every vertex/edge predicate, re-labelled into a
//! canonical vertex order that is invariant under query-vertex renaming. Two
//! primitives are isomorphic (one local search can serve both) **iff** their
//! canonical forms are equal; [`CanonicalPrimitive::fingerprint`] is a hash
//! of the form for cheap indexing, and [`CanonicalPrimitive::matches`] is the
//! explicit equality check behind the hash, so a fingerprint collision can
//! never merge non-isomorphic primitives.
//!
//! Canonicalization is exact: vertices are first partitioned into classes by
//! a renaming-invariant signature (type, predicates, incident-edge profile),
//! then the lexicographically minimal edge relabelling over all within-class
//! permutations is selected. Primitives are tiny (typically 1–3 edges), so
//! the enumeration is a registration-time micro-cost; a pathological
//! primitive whose class structure would require more than
//! [`MAX_CANONICAL_ASSIGNMENTS`] permutations is rejected (`build` returns
//! `None`) and simply does not participate in sharing.

use crate::query_graph::{QueryEdgeId, QueryGraph, QueryVertexId};
use std::hash::{Hash, Hasher};
use streamworks_graph::hash::FxHasher;

/// Upper bound on the vertex relabellings tried while canonicalizing one
/// primitive (the product of the factorials of its vertex-class sizes).
/// `7! = 5040` covers every primitive with up to seven mutually
/// indistinguishable vertices — far beyond the 1–3-edge primitives real
/// decompositions produce.
pub const MAX_CANONICAL_ASSIGNMENTS: u64 = 5_040;

/// One canonical edge: endpoints in canonical vertex ids, the (optional)
/// edge-type label, and the edge's predicate tokens in sorted order.
type CanonEdge = (u32, u32, Option<String>, Vec<String>);

/// Canonical label of one vertex position: the (optional) vertex-type label
/// plus the vertex's predicate tokens in sorted order.
type CanonVertex = (Option<String>, Vec<String>);

/// The canonical form of one search primitive (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalPrimitive {
    /// Vertex labels indexed by canonical vertex id.
    vertices: Vec<CanonVertex>,
    /// Canonical edges in lexicographic order.
    edges: Vec<CanonEdge>,
    /// Hash of `vertices` + `edges`.
    fingerprint: u64,
    /// The original query vertex occupying each canonical vertex id.
    vertex_order: Vec<QueryVertexId>,
    /// The original query edge realising each canonical edge position.
    edge_order: Vec<QueryEdgeId>,
}

/// Deterministic token for a predicate ([`Predicate::canonical_token`], a
/// hand-written stable rendering — *not* derived `Debug`, which a future
/// custom impl could silently change and thereby weaken fingerprints).
/// Predicates are compared as *sets* — conjunction order is irrelevant — so
/// callers sort the tokens.
fn predicate_tokens(preds: &[crate::predicate::Predicate]) -> Vec<String> {
    let mut tokens: Vec<String> = preds.iter().map(|p| p.canonical_token()).collect();
    tokens.sort_unstable();
    tokens
}

/// Edge-predicate tokens, optionally *lifted*: with `lift` set, an equality
/// comparison renders as `lifted_eq(key)` — the constant is abstracted to a
/// slot, so two edges that differ only in the compared literal produce equal
/// token lists. The number of lifted tokens still encodes the constant
/// *arity*: an edge with two `eq` predicates can never merge with an edge
/// carrying one.
fn edge_predicate_tokens(preds: &[crate::predicate::Predicate], lift: bool) -> Vec<String> {
    use crate::predicate::{CompareOp, Predicate};
    let mut tokens: Vec<String> = preds
        .iter()
        .map(|p| match p {
            Predicate::Compare {
                key,
                op: CompareOp::Eq,
                ..
            } if lift => format!("lifted_eq({}#{key})", key.len()),
            _ => p.canonical_token(),
        })
        .collect();
    tokens.sort_unstable();
    tokens
}

impl CanonicalPrimitive {
    /// Canonicalizes the primitive formed by `edges` within `query`.
    ///
    /// Returns `None` for an empty edge set or when exact canonicalization
    /// would exceed [`MAX_CANONICAL_ASSIGNMENTS`] relabellings — such a
    /// primitive is excluded from sharing rather than risking an unsound
    /// canonical form.
    pub fn build(query: &QueryGraph, edges: &[QueryEdgeId]) -> Option<CanonicalPrimitive> {
        CanonicalPrimitive::build_with(query, edges, false)
    }

    /// [`Self::build`] with edge `eq` constants optionally abstracted to
    /// slots (`lift`, see [`LiftedPrimitive`]): the canonical form is then
    /// invariant under changing the compared literals, not just under vertex
    /// renaming.
    fn build_with(
        query: &QueryGraph,
        edges: &[QueryEdgeId],
        lift: bool,
    ) -> Option<CanonicalPrimitive> {
        if edges.is_empty() {
            return None;
        }
        let vertices = query.vertices_of_edges(edges);
        let local_of = |v: QueryVertexId| -> u32 {
            vertices
                .iter()
                .position(|&x| x == v)
                .expect("endpoint of a primitive edge") as u32
        };

        // Renaming-invariant signature per vertex: its own label plus the
        // sorted profile of incident primitive edges (direction + type +
        // predicates). Vertices with different signatures can never map to
        // each other under an isomorphism, so permutations are only tried
        // within signature classes.
        let labels: Vec<CanonVertex> = vertices
            .iter()
            .map(|&v| {
                let vtx = query.vertex(v);
                (vtx.vtype.clone(), predicate_tokens(&vtx.predicates))
            })
            .collect();
        let signatures: Vec<(CanonVertex, Vec<String>)> = vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut profile: Vec<String> = edges
                    .iter()
                    .map(|&e| query.edge(e))
                    .filter(|qe| qe.src == v || qe.dst == v)
                    .map(|qe| {
                        format!(
                            "{}:{}:{:?}",
                            if qe.src == v { "out" } else { "in" },
                            qe.etype.as_deref().unwrap_or("*"),
                            edge_predicate_tokens(&qe.predicates, lift)
                        )
                    })
                    .collect();
                profile.sort_unstable();
                (labels[i].clone(), profile)
            })
            .collect();

        // Partition local vertex indices into signature classes, ordered by
        // signature so isomorphic primitives agree on the class layout.
        let mut order: Vec<usize> = (0..vertices.len()).collect();
        order.sort_by(|&a, &b| signatures[a].cmp(&signatures[b]));
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for &i in &order {
            match classes.last() {
                Some(class) if signatures[class[0]] == signatures[i] => {
                    classes.last_mut().unwrap().push(i)
                }
                _ => classes.push(vec![i]),
            }
        }

        // Guard the enumeration cost.
        let mut assignments: u64 = 1;
        for class in &classes {
            for k in 1..=class.len() as u64 {
                assignments = assignments.saturating_mul(k);
                if assignments > MAX_CANONICAL_ASSIGNMENTS {
                    return None;
                }
            }
        }

        // Canonical vertex labels are fixed by the class layout (every member
        // of a class shares its label by construction of the signature).
        let canon_vertices: Vec<CanonVertex> = classes
            .iter()
            .flat_map(|class| class.iter().map(|&i| labels[i].clone()))
            .collect();

        // Enumerate within-class permutations; keep the assignment whose
        // sorted edge relabelling is lexicographically minimal.
        let mut best: Option<(Vec<CanonEdge>, Vec<usize>, Vec<usize>)> = None;
        let mut class_perms: Vec<Vec<usize>> = classes.clone();
        enumerate_assignments(&mut class_perms, 0, &mut |assignment| {
            // `assignment[p]` = local vertex index placed at canonical id p.
            let mut canon_of = vec![0u32; vertices.len()];
            for (pos, &local) in assignment.iter().enumerate() {
                canon_of[local] = pos as u32;
            }
            let mut relabelled: Vec<(CanonEdge, usize)> = edges
                .iter()
                .enumerate()
                .map(|(ei, &e)| {
                    let qe = query.edge(e);
                    (
                        (
                            canon_of[local_of(qe.src) as usize],
                            canon_of[local_of(qe.dst) as usize],
                            qe.etype.clone(),
                            edge_predicate_tokens(&qe.predicates, lift),
                        ),
                        ei,
                    )
                })
                .collect();
            relabelled.sort();
            let (canon_edges, edge_idx): (Vec<CanonEdge>, Vec<usize>) =
                relabelled.into_iter().unzip();
            let better = match &best {
                None => true,
                Some((current, _, _)) => canon_edges < *current,
            };
            if better {
                best = Some((canon_edges, edge_idx, assignment.to_vec()));
            }
        });
        let (canon_edges, edge_idx, assignment) =
            best.expect("at least one assignment is enumerated");

        let vertex_order: Vec<QueryVertexId> =
            assignment.iter().map(|&local| vertices[local]).collect();
        let edge_order: Vec<QueryEdgeId> = edge_idx.iter().map(|&ei| edges[ei]).collect();

        let mut hasher = FxHasher::default();
        canon_vertices.hash(&mut hasher);
        canon_edges.hash(&mut hasher);
        Some(CanonicalPrimitive {
            vertices: canon_vertices,
            edges: canon_edges,
            fingerprint: hasher.finish(),
            vertex_order,
            edge_order,
        })
    }

    /// The structural fingerprint: equal for isomorphic primitives, and —
    /// modulo hash collisions, which [`Self::matches`] exists to rule out —
    /// different for non-isomorphic ones.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The explicit isomorphism check behind the hash: two primitives are
    /// isomorphic iff their canonical forms are equal. Index implementations
    /// **must** call this before merging two primitives that share a
    /// fingerprint; a hash collision between non-isomorphic primitives fails
    /// here.
    pub fn matches(&self, other: &CanonicalPrimitive) -> bool {
        self.vertices == other.vertices && self.edges == other.edges
    }

    /// Number of vertices in the primitive.
    pub fn vertex_count(&self) -> usize {
        self.vertex_order.len()
    }

    /// Number of edges in the primitive.
    pub fn edge_count(&self) -> usize {
        self.edge_order.len()
    }

    /// The original query vertex occupying each canonical vertex id: an
    /// embedding of the canonical pattern binds canonical vertex `i` exactly
    /// where the original query binds `vertex_order()[i]`.
    pub fn vertex_order(&self) -> &[QueryVertexId] {
        &self.vertex_order
    }

    /// The original query edge realising each canonical edge position (the
    /// canonical pattern's edge `i` corresponds to query edge
    /// `edge_order()[i]`).
    pub fn edge_order(&self) -> &[QueryEdgeId] {
        &self.edge_order
    }

    /// Materialises the canonical pattern as a standalone [`QueryGraph`]
    /// (vertices `p0..pk` in canonical order, edges in canonical order,
    /// window copied from `query`): the pattern a shared local search runs
    /// against, producing embeddings in canonical vertex/edge space.
    ///
    /// `query` must be the query this canonical form was built from (types
    /// and predicates are cloned through [`Self::vertex_order`] /
    /// [`Self::edge_order`]).
    pub fn pattern(&self, query: &QueryGraph) -> QueryGraph {
        let mut pattern = QueryGraph::new("shared-primitive", query.window());
        for (i, &qv) in self.vertex_order.iter().enumerate() {
            let v = query.vertex(qv);
            pattern
                .add_vertex(format!("p{i}"), v.vtype.clone(), v.predicates.clone())
                .expect("canonical vertex names are unique");
        }
        for &qe in &self.edge_order {
            let e = query.edge(qe);
            let src = self.canonical_vertex(e.src);
            let dst = self.canonical_vertex(e.dst);
            pattern.add_edge(
                QueryVertexId(src as usize),
                QueryVertexId(dst as usize),
                e.etype.clone(),
                e.predicates.clone(),
            );
        }
        pattern
    }

    /// The canonical id of an original query vertex of this primitive.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the primitive.
    pub fn canonical_vertex(&self, v: QueryVertexId) -> u32 {
        self.vertex_order
            .iter()
            .position(|&x| x == v)
            .expect("vertex belongs to the primitive") as u32
    }

    /// Overrides the fingerprint. **Test hook only**: lets collision-handling
    /// tests force two non-isomorphic primitives onto one hash bucket; the
    /// canonical form (and therefore [`Self::matches`]) is untouched.
    #[doc(hidden)]
    pub fn force_fingerprint_for_tests(&mut self, fingerprint: u64) {
        self.fingerprint = fingerprint;
    }
}

/// A canonical form with edge `eq` constants abstracted to *slots*:
/// predicate-lifted sharing.
///
/// Registries built from one labelled template (`label = "politics"`,
/// `label = "sports"`, ...) contain primitives and subtrees that are
/// isomorphic *except for the compared literal*. Lifting canonicalizes them
/// with every edge `Predicate::Compare { op: Eq }` rendered as a
/// constant-free `lifted_eq(key)` token, so all constant-variants intern to
/// **one** shared entry; the search then runs once against the lifted
/// pattern ([`Self::search_pattern`], the `eq` predicates removed), and each
/// embedding is dispatched to exactly the tenants whose registered constants
/// ([`Self::constants`]) equal the values the data edges actually bound at
/// the slot positions ([`Self::slots`]) — an O(1) hash per embedding instead
/// of one local search per distinct constant.
///
/// Constant *arity* stays part of the form (each lifted predicate
/// contributes one token), and the exact isomorphism check behind the
/// fingerprint is inherited from [`CanonicalPrimitive`]: same shape with a
/// different number of `eq` predicates can never merge. Vertex predicates
/// and non-`eq` edge predicates are never lifted.
#[derive(Debug, Clone)]
pub struct LiftedPrimitive {
    /// Canonical form over lifted edge-predicate tokens.
    canon: CanonicalPrimitive,
    /// Constant slots in canonical order: (canonical edge position, key).
    slots: Vec<(u32, String)>,
    /// This query's constant tokens ([`crate::predicate::eq_constant_token`])
    /// in slot order.
    constants: Vec<String>,
}

impl LiftedPrimitive {
    /// Canonicalizes the primitive formed by `edges` within `query`, lifting
    /// edge `eq` constants when `lift` is set (with `lift` off this is a
    /// plain [`CanonicalPrimitive::build`] wrapped with an empty slot table —
    /// the exact-constant fallback the engine uses when lifted sharing is
    /// disabled). Returns `None` exactly when [`CanonicalPrimitive::build`]
    /// would.
    pub fn build(query: &QueryGraph, edges: &[QueryEdgeId], lift: bool) -> Option<LiftedPrimitive> {
        use crate::predicate::{eq_constant_token, CompareOp, Predicate};
        let canon = CanonicalPrimitive::build_with(query, edges, lift)?;
        let mut slots = Vec::new();
        let mut constants = Vec::new();
        if lift {
            for (i, &qe) in canon.edge_order().iter().enumerate() {
                let mut lifted: Vec<(&str, String)> = query
                    .edge(qe)
                    .predicates
                    .iter()
                    .filter_map(|p| match p {
                        Predicate::Compare {
                            key,
                            op: CompareOp::Eq,
                            value,
                        } => Some((key.as_str(), eq_constant_token(value))),
                        _ => None,
                    })
                    .collect();
                // Deterministic within one edge: by key, ties by constant.
                lifted.sort_unstable();
                for (key, token) in lifted {
                    slots.push((i as u32, key.to_string()));
                    constants.push(token);
                }
            }
        }
        Some(LiftedPrimitive {
            canon,
            slots,
            constants,
        })
    }

    /// The underlying canonical form (fingerprint, isomorphism check, vertex
    /// and edge permutations).
    pub fn canon(&self) -> &CanonicalPrimitive {
        &self.canon
    }

    /// True when at least one constant was lifted (the entry needs constant
    /// dispatch).
    pub fn is_lifted(&self) -> bool {
        !self.slots.is_empty()
    }

    /// The constant slots: (canonical edge position, attribute key), in
    /// deterministic canonical order.
    pub fn slots(&self) -> &[(u32, String)] {
        &self.slots
    }

    /// This query's registered constants, aligned with [`Self::slots`].
    pub fn constants(&self) -> &[String] {
        &self.constants
    }

    /// Lifted-form equality: inherited from the canonical form. Equal lifted
    /// forms always agree on the slot table (it is derived from the lifted
    /// tokens), so two equal forms differ at most in [`Self::constants`].
    pub fn matches(&self, other: &LiftedPrimitive) -> bool {
        debug_assert!(
            !self.canon.matches(&other.canon) || self.slots == other.slots,
            "equal lifted forms must agree on slots"
        );
        self.canon.matches(&other.canon)
    }

    /// The pattern the shared search runs against: the canonical pattern with
    /// the lifted `eq` predicates removed (an embedding may bind any
    /// constant; dispatch decides who receives it). With nothing lifted this
    /// is exactly [`CanonicalPrimitive::pattern`].
    pub fn search_pattern(&self, query: &QueryGraph) -> QueryGraph {
        use crate::predicate::{CompareOp, Predicate};
        let mut pattern = self.canon.pattern(query);
        if self.is_lifted() {
            pattern.retain_edge_predicates(|p| {
                !matches!(
                    p,
                    Predicate::Compare {
                        op: CompareOp::Eq,
                        ..
                    }
                )
            });
        }
        pattern
    }
}

/// Recursively enumerates every within-class permutation, invoking `visit`
/// with the concatenated assignment (canonical position → local vertex
/// index). `classes[k]` is permuted in place for positions `k..`.
fn enumerate_assignments(
    classes: &mut [Vec<usize>],
    depth: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    if depth == classes.len() {
        let assignment: Vec<usize> = classes.iter().flat_map(|c| c.iter().copied()).collect();
        visit(&assignment);
        return;
    }
    let n = classes[depth].len();
    permute(classes, depth, 0, n, visit);
}

/// Heap-style permutation of `classes[depth][i..n]` by swapping.
fn permute(
    classes: &mut [Vec<usize>],
    depth: usize,
    i: usize,
    n: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    if i + 1 >= n {
        enumerate_assignments(classes, depth + 1, visit);
        return;
    }
    for j in i..n {
        classes[depth].swap(i, j);
        permute(classes, depth, i + 1, n, visit);
        classes[depth].swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use crate::predicate::{CompareOp, Predicate};
    use streamworks_graph::Duration;

    fn ids(edges: &[usize]) -> Vec<QueryEdgeId> {
        edges.iter().map(|&e| QueryEdgeId(e)).collect()
    }

    /// Two-article wedge, the canonical sharing case.
    fn pair_query(a1: &str, a2: &str, k: &str) -> QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex(k, "Keyword")
            .edge(a1, "mentions", k)
            .edge(a2, "mentions", k)
            .build()
            .unwrap()
    }

    #[test]
    fn renamed_primitives_share_a_canonical_form() {
        let q1 = pair_query("a1", "a2", "k");
        let q2 = pair_query("xx", "yy", "zz");
        let c1 = CanonicalPrimitive::build(&q1, &ids(&[0, 1])).unwrap();
        let c2 = CanonicalPrimitive::build(&q2, &ids(&[0, 1])).unwrap();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        assert!(c1.matches(&c2));
        assert_eq!(c1.vertex_count(), 3);
        assert_eq!(c1.edge_count(), 2);
    }

    #[test]
    fn isomorphic_leaves_of_one_query_share() {
        // The two single-edge leaves of the pair query are the same
        // primitive: (Article)-[mentions]->(Keyword).
        let q = pair_query("a1", "a2", "k");
        let c1 = CanonicalPrimitive::build(&q, &ids(&[0])).unwrap();
        let c2 = CanonicalPrimitive::build(&q, &ids(&[1])).unwrap();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        assert!(c1.matches(&c2));
        // Their vertex orders differ (a1 vs a2 at the article position).
        assert_ne!(c1.vertex_order(), c2.vertex_order());
    }

    #[test]
    fn edge_direction_distinguishes_primitives() {
        let forward = QueryGraphBuilder::new("f")
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .build()
            .unwrap();
        // Same typed-edge multiset, but the middle vertex now has two
        // out-edges instead of one in and one out: a classic near-identical
        // pair a weak (multiset) fingerprint would merge.
        let fanout = QueryGraphBuilder::new("g")
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("b", "flow", "a")
            .edge("b", "flow", "c")
            .build()
            .unwrap();
        let cf = CanonicalPrimitive::build(&forward, &ids(&[0, 1])).unwrap();
        let cg = CanonicalPrimitive::build(&fanout, &ids(&[0, 1])).unwrap();
        assert!(!cf.matches(&cg));
        assert_ne!(cf.fingerprint(), cg.fingerprint());
    }

    #[test]
    fn predicates_distinguish_primitives_and_order_does_not() {
        let with = |preds: Vec<Predicate>| {
            let mut q = QueryGraph::new("p", Duration::from_secs(60));
            let a = q.add_vertex("a", Some("Article".into()), vec![]).unwrap();
            let k = q.add_vertex("k", Some("Keyword".into()), vec![]).unwrap();
            q.add_edge(a, k, Some("mentions".into()), preds);
            q
        };
        let p1 = Predicate::eq("label", "politics");
        let p2 = Predicate::eq("weight", 3i64);
        let plain = with(vec![]);
        let labelled = with(vec![p1.clone()]);
        let both_ab = with(vec![p1.clone(), p2.clone()]);
        let both_ba = with(vec![p2, p1]);
        let c_plain = CanonicalPrimitive::build(&plain, &ids(&[0])).unwrap();
        let c_lab = CanonicalPrimitive::build(&labelled, &ids(&[0])).unwrap();
        let c_ab = CanonicalPrimitive::build(&both_ab, &ids(&[0])).unwrap();
        let c_ba = CanonicalPrimitive::build(&both_ba, &ids(&[0])).unwrap();
        assert!(!c_plain.matches(&c_lab));
        assert_ne!(c_plain.fingerprint(), c_lab.fingerprint());
        // Conjunction order is irrelevant.
        assert!(c_ab.matches(&c_ba));
        assert_eq!(c_ab.fingerprint(), c_ba.fingerprint());
    }

    #[test]
    fn forced_fingerprint_collisions_are_caught_by_matches() {
        // The adversarial case the index must survive: two non-isomorphic
        // primitives forced onto one hash value. `matches` (the equality
        // check behind the hash) still tells them apart.
        let path = QueryGraphBuilder::new("p")
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .build()
            .unwrap();
        let fan = QueryGraphBuilder::new("f")
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("a", "flow", "c")
            .build()
            .unwrap();
        let cp = CanonicalPrimitive::build(&path, &ids(&[0, 1])).unwrap();
        let mut cf = CanonicalPrimitive::build(&fan, &ids(&[0, 1])).unwrap();
        cf.force_fingerprint_for_tests(cp.fingerprint());
        assert_eq!(cp.fingerprint(), cf.fingerprint());
        assert!(!cp.matches(&cf), "collision must not imply isomorphism");
    }

    #[test]
    fn pattern_rebuilds_the_primitive_in_canonical_space() {
        let q = pair_query("a1", "a2", "k");
        let c = CanonicalPrimitive::build(&q, &ids(&[0, 1])).unwrap();
        let pattern = c.pattern(&q);
        assert_eq!(pattern.vertex_count(), 3);
        assert_eq!(pattern.edge_count(), 2);
        assert_eq!(pattern.window(), q.window());
        // The pattern is isomorphic to the primitive it came from.
        let all: Vec<QueryEdgeId> = pattern.edge_ids().collect();
        let c2 = CanonicalPrimitive::build(&pattern, &all).unwrap();
        assert!(c.matches(&c2));
        // Pattern edge i corresponds to query edge edge_order()[i], and its
        // endpoints map through vertex_order().
        for (i, &qe) in c.edge_order().iter().enumerate() {
            let pe = pattern.edge(QueryEdgeId(i));
            let oe = q.edge(qe);
            assert_eq!(c.vertex_order()[pe.src.0], oe.src);
            assert_eq!(c.vertex_order()[pe.dst.0], oe.dst);
            assert_eq!(pe.etype, oe.etype);
        }
    }

    #[test]
    fn oversized_symmetric_primitive_is_rejected() {
        // A star with 8 indistinguishable leaves would need 8! > 5040
        // relabellings: excluded from sharing instead of canonicalized.
        let mut b = QueryGraphBuilder::new("star").window(Duration::from_secs(1));
        for i in 0..8 {
            b = b.edge("hub", "rel", &format!("leaf{i}"));
        }
        let q = b.build().unwrap();
        let all: Vec<QueryEdgeId> = q.edge_ids().collect();
        assert!(CanonicalPrimitive::build(&q, &all).is_none());
        // A 5-leaf star (5! = 120) is fine.
        let mut b = QueryGraphBuilder::new("star5").window(Duration::from_secs(1));
        for i in 0..5 {
            b = b.edge("hub", "rel", &format!("leaf{i}"));
        }
        let q5 = b.build().unwrap();
        let all5: Vec<QueryEdgeId> = q5.edge_ids().collect();
        assert!(CanonicalPrimitive::build(&q5, &all5).is_some());
    }

    #[test]
    fn empty_primitive_is_rejected() {
        let q = pair_query("a1", "a2", "k");
        assert!(CanonicalPrimitive::build(&q, &[]).is_none());
    }

    /// A symmetric two-wedge subtree (two articles sharing a keyword *and* a
    /// location) has a nontrivial automorphism: swapping the articles maps
    /// the edge set onto itself. Canonicalization must still be stable under
    /// any renaming / edge reordering of the same shape.
    fn double_wedge(a1: &str, a2: &str, swap_edges: bool) -> QueryGraph {
        let mut b = QueryGraphBuilder::new("dw")
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location");
        b = if swap_edges {
            b.edge(a2, "located", "l")
                .edge(a1, "located", "l")
                .edge(a2, "mentions", "k")
                .edge(a1, "mentions", "k")
        } else {
            b.edge(a1, "mentions", "k")
                .edge(a2, "mentions", "k")
                .edge(a1, "located", "l")
                .edge(a2, "located", "l")
        };
        b.build().unwrap()
    }

    #[test]
    fn symmetric_subtree_canonicalizes_stably_under_renaming() {
        let q1 = double_wedge("a1", "a2", false);
        let q2 = double_wedge("yy", "xx", true);
        let c1 = CanonicalPrimitive::build(&q1, &ids(&[0, 1, 2, 3])).unwrap();
        let c2 = CanonicalPrimitive::build(&q2, &ids(&[0, 1, 2, 3])).unwrap();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        assert!(c1.matches(&c2));
        // The permutations are valid bijections even with the automorphism:
        // pattern edge i's endpoints map through vertex_order consistently.
        for (c, q) in [(&c1, &q1), (&c2, &q2)] {
            let pattern = c.pattern(q);
            for (i, &qe) in c.edge_order().iter().enumerate() {
                let pe = pattern.edge(QueryEdgeId(i));
                let oe = q.edge(qe);
                assert_eq!(c.vertex_order()[pe.src.0], oe.src);
                assert_eq!(c.vertex_order()[pe.dst.0], oe.dst);
            }
        }
    }

    #[test]
    fn forced_subtree_fingerprint_collision_is_caught_by_matches() {
        // Subtree-level analogue of the primitive collision case: a 3-edge
        // path and a 3-edge out-star (both one internal node's subtree in a
        // left-deep plan) forced onto one fingerprint must still be told
        // apart by the exact isomorphism check.
        let path = QueryGraphBuilder::new("p3")
            .window(Duration::from_secs(60))
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .edge("c", "flow", "d")
            .build()
            .unwrap();
        let star = QueryGraphBuilder::new("s3")
            .window(Duration::from_secs(60))
            .edge("h", "flow", "x")
            .edge("h", "flow", "y")
            .edge("h", "flow", "z")
            .build()
            .unwrap();
        let cp = CanonicalPrimitive::build(&path, &ids(&[0, 1, 2])).unwrap();
        let mut cs = CanonicalPrimitive::build(&star, &ids(&[0, 1, 2])).unwrap();
        cs.force_fingerprint_for_tests(cp.fingerprint());
        assert_eq!(cp.fingerprint(), cs.fingerprint());
        assert!(!cp.matches(&cs), "collision must not imply isomorphism");
    }

    /// One labelled mention edge, the lifting unit.
    fn labelled(preds: Vec<Predicate>) -> QueryGraph {
        let mut q = QueryGraph::new("t", Duration::from_secs(60));
        let a = q.add_vertex("a", Some("Article".into()), vec![]).unwrap();
        let k = q.add_vertex("k", Some("Keyword".into()), vec![]).unwrap();
        q.add_edge(a, k, Some("mentions".into()), preds);
        q
    }

    #[test]
    fn lifted_constant_variants_merge_and_keep_their_constants() {
        let politics = labelled(vec![Predicate::eq("label", "politics")]);
        let sports = labelled(vec![Predicate::eq("label", "sports")]);
        let lp = LiftedPrimitive::build(&politics, &ids(&[0]), true).unwrap();
        let ls = LiftedPrimitive::build(&sports, &ids(&[0]), true).unwrap();
        assert!(lp.is_lifted() && ls.is_lifted());
        assert!(lp.matches(&ls), "constant-variants share one lifted form");
        assert_eq!(lp.slots(), ls.slots());
        assert_ne!(lp.constants(), ls.constants());
        // Without lifting the same pair stays distinct.
        let up = LiftedPrimitive::build(&politics, &ids(&[0]), false).unwrap();
        let us = LiftedPrimitive::build(&sports, &ids(&[0]), false).unwrap();
        assert!(!up.is_lifted());
        assert!(!up.matches(&us));
    }

    #[test]
    fn lifted_arity_and_key_stay_part_of_the_form() {
        // Same shape, different eq arity: one lifted slot vs two.
        let one = labelled(vec![Predicate::eq("label", "politics")]);
        let two = labelled(vec![
            Predicate::eq("label", "politics"),
            Predicate::eq("weight", 3i64),
        ]);
        let l1 = LiftedPrimitive::build(&one, &ids(&[0]), true).unwrap();
        let l2 = LiftedPrimitive::build(&two, &ids(&[0]), true).unwrap();
        assert!(!l1.matches(&l2), "eq arity must not merge");
        // Same arity, different attribute key: also distinct.
        let other_key = labelled(vec![Predicate::eq("topic", "politics")]);
        let lk = LiftedPrimitive::build(&other_key, &ids(&[0]), true).unwrap();
        assert!(!l1.matches(&lk), "slot key must not merge");
        // Non-eq comparisons are never lifted: a Gt stays a concrete
        // predicate, so differing Gt constants keep the forms distinct.
        let gt2 = labelled(vec![Predicate::cmp("weight", CompareOp::Gt, 2i64)]);
        let gt5 = labelled(vec![Predicate::cmp("weight", CompareOp::Gt, 5i64)]);
        let g2 = LiftedPrimitive::build(&gt2, &ids(&[0]), true).unwrap();
        let g5 = LiftedPrimitive::build(&gt5, &ids(&[0]), true).unwrap();
        assert!(!g2.is_lifted());
        assert!(!g2.matches(&g5));
    }

    #[test]
    fn integral_float_constants_collide_into_the_integer_token() {
        // `Predicate::matches` accepts 3.0 where 3 was registered; the
        // lifted constant token must agree, or dispatch would misroute.
        let as_int = labelled(vec![Predicate::eq("weight", 3i64)]);
        let as_float = labelled(vec![Predicate::eq("weight", 3.0f64)]);
        let li = LiftedPrimitive::build(&as_int, &ids(&[0]), true).unwrap();
        let lf = LiftedPrimitive::build(&as_float, &ids(&[0]), true).unwrap();
        assert!(li.matches(&lf));
        assert_eq!(li.constants(), lf.constants());
    }

    #[test]
    fn symmetric_lifted_subtree_orders_slots_deterministically() {
        // Both wedge edges carry a lifted constant; the automorphism must
        // not make slot order (and thus dispatch keys) depend on variable
        // names or insertion order.
        let make = |a1: &str, a2: &str| {
            QueryGraphBuilder::new("lw")
                .window(Duration::from_hours(1))
                .vertex(a1, "Article")
                .vertex(a2, "Article")
                .vertex("k", "Keyword")
                .edge_with(a1, "mentions", "k", vec![Predicate::eq("label", "x")])
                .edge_with(a2, "mentions", "k", vec![Predicate::eq("label", "x")])
                .build()
                .unwrap()
        };
        let l1 = LiftedPrimitive::build(&make("a1", "a2"), &ids(&[0, 1]), true).unwrap();
        let l2 = LiftedPrimitive::build(&make("zz", "aa"), &ids(&[0, 1]), true).unwrap();
        assert!(l1.matches(&l2));
        assert_eq!(l1.slots(), l2.slots());
        assert_eq!(l1.constants(), l2.constants());
        assert_eq!(l1.slots().len(), 2);
        // The search pattern drops the lifted predicates entirely.
        let pat = l1.search_pattern(&make("a1", "a2"));
        assert!(pat.edges().all(|e| e.predicates.is_empty()));
    }

    #[test]
    fn vertex_types_distinguish_primitives() {
        let typed = pair_query("a1", "a2", "k");
        let other = QueryGraphBuilder::new("pair")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Person")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        let c1 = CanonicalPrimitive::build(&typed, &ids(&[0, 1])).unwrap();
        let c2 = CanonicalPrimitive::build(&other, &ids(&[0, 1])).unwrap();
        assert!(!c1.matches(&c2));
    }
}
