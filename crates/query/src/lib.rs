//! # streamworks-query
//!
//! Query model and planner for the StreamWorks reproduction: pattern graphs,
//! a small text DSL, selectivity estimation over `streamworks-summarize`
//! statistics, pluggable query-decomposition strategies, and the Subgraph
//! Join Tree (SJ-Tree) shape of paper §3.2/§4.1.
//!
//! ```
//! use streamworks_query::{parse_query, Planner};
//!
//! let query = parse_query(r#"
//!     QUERY common_keyword WINDOW 1h
//!     MATCH (a1:Article)-[:mentions]->(k:Keyword),
//!           (a2:Article)-[:mentions]->(k)
//! "#).unwrap();
//! let plan = Planner::new().plan(query).unwrap();
//! println!("{}", plan.explain());
//! assert_eq!(plan.shape.leaves().len(), 1); // both edges fit one 2-edge primitive
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod canonical;
mod cost;
mod decompose;
mod dsl;
mod error;
mod plan;
mod predicate;
mod query_graph;
mod rpq;
mod selectivity;
mod sjtree;

pub use builder::QueryGraphBuilder;
pub use canonical::{CanonicalPrimitive, LiftedPrimitive, MAX_CANONICAL_ASSIGNMENTS};
pub use cost::{
    estimate_shape_cost, left_deep_order_cost, CostBasedOrdered, NodeCostEstimate,
    ShapeCostEstimate, TriadWedges,
};
pub use decompose::{
    validate_decomposition, BalancedPairs, DecompositionStrategy, LeftDeepEdgeChain,
    ManualDecomposition, Primitive, SelectivityOrdered,
};
pub use dsl::{format_query, parse_query};
pub use error::QueryError;
pub use plan::{Planner, QueryPlan, TreeShapeKind};
pub use predicate::{canonical_value_token, eq_constant_token, CompareOp, Predicate};
pub use query_graph::{QueryEdge, QueryEdgeId, QueryGraph, QueryVertex, QueryVertexId};
pub use rpq::{parse_rpq, PathExpr, RpqDfa, RpqQuery};
pub use selectivity::{NullResolver, SelectivityEstimator, TypeResolver};
pub use sjtree::{SjNode, SjNodeId, SjTreeShape};
