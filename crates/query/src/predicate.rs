//! Attribute predicates attached to query vertices and edges.
//!
//! Predicates restrict which data vertices/edges may bind to a query element
//! beyond the type constraint — e.g. the labelled news queries of paper Fig. 5
//! pin the keyword vertex to a specific label ("politics", "accident", ...).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use streamworks_graph::{AttrValue, Attrs};

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn eval(self, ord: Ordering, equal: bool) -> bool {
        match self {
            CompareOp::Eq => equal,
            CompareOp::Ne => !equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }

    /// The textual operator as written in the DSL.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A predicate over the attribute map of one query element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `attrs[key] <op> value`. Missing attributes fail the predicate.
    Compare {
        /// Attribute key.
        key: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal to compare against.
        value: AttrValue,
    },
    /// `attrs[key]` is a string starting with `prefix`.
    HasPrefix {
        /// Attribute key.
        key: String,
        /// Required prefix.
        prefix: String,
    },
    /// `attrs[key]` is one of the listed values.
    InSet {
        /// Attribute key.
        key: String,
        /// Allowed values.
        values: Vec<AttrValue>,
    },
    /// The attribute key merely has to exist.
    Exists {
        /// Attribute key.
        key: String,
    },
}

impl Predicate {
    /// Convenience constructor for an equality predicate.
    pub fn eq(key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::Compare {
            key: key.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a comparison predicate.
    pub fn cmp(key: impl Into<String>, op: CompareOp, value: impl Into<AttrValue>) -> Self {
        Predicate::Compare {
            key: key.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the predicate against an attribute map.
    pub fn matches(&self, attrs: &Attrs) -> bool {
        match self {
            Predicate::Compare { key, op, value } => match attrs.get(key) {
                Some(actual) => {
                    let ord = actual.compare(value);
                    let equal = actual == value
                        || matches!(
                            (actual, value),
                            (AttrValue::Int(_), AttrValue::Float(_))
                                | (AttrValue::Float(_), AttrValue::Int(_))
                        ) && ord == Ordering::Equal;
                    op.eval(ord, equal)
                }
                None => false,
            },
            Predicate::HasPrefix { key, prefix } => attrs
                .get(key)
                .and_then(|v| v.as_str())
                .map(|s| s.starts_with(prefix))
                .unwrap_or(false),
            Predicate::InSet { key, values } => attrs
                .get(key)
                .map(|v| values.iter().any(|allowed| allowed == v))
                .unwrap_or(false),
            Predicate::Exists { key } => attrs.get(key).is_some(),
        }
    }

    /// Rough selectivity weight used by the planner: predicates make an
    /// element rarer, so each predicate multiplies the cardinality estimate by
    /// this factor.
    pub fn selectivity_factor(&self) -> f64 {
        match self {
            Predicate::Compare {
                op: CompareOp::Eq, ..
            } => 0.1,
            Predicate::Compare {
                op: CompareOp::Ne, ..
            } => 0.9,
            Predicate::Compare { .. } => 0.4,
            Predicate::HasPrefix { .. } => 0.2,
            Predicate::InSet { values, .. } => (0.1 * values.len() as f64).min(0.9),
            Predicate::Exists { .. } => 0.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> Attrs {
        Attrs::from_pairs([
            ("label", AttrValue::from("politics")),
            ("port", AttrValue::from(443i64)),
            ("score", AttrValue::from(0.7)),
        ])
    }

    #[test]
    fn equality_and_inequality() {
        let a = attrs();
        assert!(Predicate::eq("label", "politics").matches(&a));
        assert!(!Predicate::eq("label", "sports").matches(&a));
        assert!(Predicate::cmp("label", CompareOp::Ne, "sports").matches(&a));
        assert!(!Predicate::eq("missing", "x").matches(&a));
    }

    #[test]
    fn numeric_ranges() {
        let a = attrs();
        assert!(Predicate::cmp("port", CompareOp::Ge, 100i64).matches(&a));
        assert!(Predicate::cmp("port", CompareOp::Lt, 1000i64).matches(&a));
        assert!(!Predicate::cmp("port", CompareOp::Gt, 443i64).matches(&a));
        assert!(Predicate::cmp("port", CompareOp::Le, 443i64).matches(&a));
        // Int attribute compared against a float literal.
        assert!(Predicate::cmp("port", CompareOp::Lt, 443.5).matches(&a));
    }

    #[test]
    fn prefix_set_and_exists() {
        let a = attrs();
        assert!(Predicate::HasPrefix {
            key: "label".into(),
            prefix: "pol".into()
        }
        .matches(&a));
        assert!(!Predicate::HasPrefix {
            key: "port".into(),
            prefix: "4".into()
        }
        .matches(&a));
        assert!(Predicate::InSet {
            key: "label".into(),
            values: vec!["sports".into(), "politics".into()]
        }
        .matches(&a));
        assert!(Predicate::Exists {
            key: "score".into()
        }
        .matches(&a));
        assert!(!Predicate::Exists { key: "nope".into() }.matches(&a));
    }

    #[test]
    fn selectivity_factors_are_probabilities() {
        let preds = [
            Predicate::eq("a", 1i64),
            Predicate::cmp("a", CompareOp::Gt, 1i64),
            Predicate::HasPrefix {
                key: "a".into(),
                prefix: "x".into(),
            },
            Predicate::InSet {
                key: "a".into(),
                values: vec![1i64.into()],
            },
            Predicate::Exists { key: "a".into() },
        ];
        for p in preds {
            let f = p.selectivity_factor();
            assert!(f > 0.0 && f <= 1.0, "{p:?} -> {f}");
        }
    }

    #[test]
    fn op_symbols_round_trip() {
        assert_eq!(CompareOp::Eq.symbol(), "=");
        assert_eq!(CompareOp::Ge.symbol(), ">=");
    }
}
