//! Attribute predicates attached to query vertices and edges.
//!
//! Predicates restrict which data vertices/edges may bind to a query element
//! beyond the type constraint — e.g. the labelled news queries of paper Fig. 5
//! pin the keyword vertex to a specific label ("politics", "accident", ...).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use streamworks_graph::{AttrValue, Attrs};

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn eval(self, ord: Ordering, equal: bool) -> bool {
        match self {
            CompareOp::Eq => equal,
            CompareOp::Ne => !equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }

    /// The textual operator as written in the DSL.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A predicate over the attribute map of one query element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `attrs[key] <op> value`. Missing attributes fail the predicate.
    Compare {
        /// Attribute key.
        key: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal to compare against.
        value: AttrValue,
    },
    /// `attrs[key]` is a string starting with `prefix`.
    HasPrefix {
        /// Attribute key.
        key: String,
        /// Required prefix.
        prefix: String,
    },
    /// `attrs[key]` is one of the listed values.
    InSet {
        /// Attribute key.
        key: String,
        /// Allowed values.
        values: Vec<AttrValue>,
    },
    /// The attribute key merely has to exist.
    Exists {
        /// Attribute key.
        key: String,
    },
}

impl Predicate {
    /// Convenience constructor for an equality predicate.
    pub fn eq(key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::Compare {
            key: key.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a comparison predicate.
    pub fn cmp(key: impl Into<String>, op: CompareOp, value: impl Into<AttrValue>) -> Self {
        Predicate::Compare {
            key: key.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates the predicate against an attribute map.
    pub fn matches(&self, attrs: &Attrs) -> bool {
        match self {
            Predicate::Compare { key, op, value } => match attrs.get(key) {
                Some(actual) => {
                    let ord = actual.compare(value);
                    let equal = actual == value
                        || matches!(
                            (actual, value),
                            (AttrValue::Int(_), AttrValue::Float(_))
                                | (AttrValue::Float(_), AttrValue::Int(_))
                        ) && ord == Ordering::Equal;
                    op.eval(ord, equal)
                }
                None => false,
            },
            Predicate::HasPrefix { key, prefix } => attrs
                .get(key)
                .and_then(|v| v.as_str())
                .map(|s| s.starts_with(prefix))
                .unwrap_or(false),
            Predicate::InSet { key, values } => attrs
                .get(key)
                .map(|v| values.iter().any(|allowed| allowed == v))
                .unwrap_or(false),
            Predicate::Exists { key } => attrs.get(key).is_some(),
        }
    }

    /// A stable, unambiguous rendering used by canonical-form fingerprints
    /// (`CanonicalPrimitive`). Unlike the derived `Debug` output — which
    /// would silently change if a custom `Debug` impl were ever added — this
    /// string is part of the sharing contract: equal tokens mean the
    /// predicates accept exactly the same attribute maps.
    ///
    /// Embedded strings are length-prefixed so no key/value choice can make
    /// two different predicates collide, floats render via their bit pattern
    /// (total, `NaN`-safe), and `InSet` values are sorted so set order does
    /// not split otherwise-identical queries.
    pub fn canonical_token(&self) -> String {
        fn esc(s: &str) -> String {
            format!("{}#{s}", s.len())
        }
        let val = canonical_value_token;
        match self {
            Predicate::Compare { key, op, value } => {
                format!("cmp({},{},{})", esc(key), op.symbol(), val(value))
            }
            Predicate::HasPrefix { key, prefix } => {
                format!("prefix({},{})", esc(key), esc(prefix))
            }
            Predicate::InSet { key, values } => {
                let mut rendered: Vec<String> = values.iter().map(val).collect();
                rendered.sort_unstable();
                rendered.dedup();
                format!("in({},[{}])", esc(key), rendered.join(","))
            }
            Predicate::Exists { key } => format!("exists({})", esc(key)),
        }
    }

    /// The predicate's attribute key.
    pub fn key(&self) -> &str {
        match self {
            Predicate::Compare { key, .. }
            | Predicate::HasPrefix { key, .. }
            | Predicate::InSet { key, .. }
            | Predicate::Exists { key } => key,
        }
    }

    /// Rough selectivity weight used by the planner: predicates make an
    /// element rarer, so each predicate multiplies the cardinality estimate by
    /// this factor.
    pub fn selectivity_factor(&self) -> f64 {
        match self {
            Predicate::Compare {
                op: CompareOp::Eq, ..
            } => 0.1,
            Predicate::Compare {
                op: CompareOp::Ne, ..
            } => 0.9,
            Predicate::Compare { .. } => 0.4,
            Predicate::HasPrefix { .. } => 0.2,
            Predicate::InSet { values, .. } => (0.1 * values.len() as f64).min(0.9),
            Predicate::Exists { .. } => 0.8,
        }
    }
}

/// Stable rendering of one attribute value: the `val(...)` component of
/// [`Predicate::canonical_token`] (strings length-prefixed, floats via their
/// bit pattern). This is the *pinned* fingerprint encoding; for
/// constant-dispatch keys use [`eq_constant_token`], which additionally
/// normalises across the numeric types `Eq` treats as equal.
pub fn canonical_value_token(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => format!("s{}#{s}", s.len()),
        AttrValue::Int(i) => format!("i{i}"),
        AttrValue::Float(f) => format!("f{:016x}", f.to_bits()),
        AttrValue::Bool(b) => format!("b{}", *b as u8),
    }
}

/// Dispatch key of one attribute value under `Eq` semantics: equal tokens
/// **iff** `Predicate::matches` with `CompareOp::Eq` would accept the pair.
/// `Eq` treats `Int(1)` and `Float(1.0)` as equal, so integral floats
/// collapse onto the integer encoding; everything else renders like
/// [`canonical_value_token`]. Predicate-lifted sharing keys both the
/// registered constants and the runtime attribute values through this
/// function.
pub fn eq_constant_token(v: &AttrValue) -> String {
    if let AttrValue::Float(f) = v {
        // Integral float representable as i64: same bucket as the int.
        if f.trunc() == *f && *f >= -(2f64.powi(63)) && *f < 2f64.powi(63) {
            return format!("i{}", *f as i64);
        }
    }
    canonical_value_token(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> Attrs {
        Attrs::from_pairs([
            ("label", AttrValue::from("politics")),
            ("port", AttrValue::from(443i64)),
            ("score", AttrValue::from(0.7)),
        ])
    }

    #[test]
    fn equality_and_inequality() {
        let a = attrs();
        assert!(Predicate::eq("label", "politics").matches(&a));
        assert!(!Predicate::eq("label", "sports").matches(&a));
        assert!(Predicate::cmp("label", CompareOp::Ne, "sports").matches(&a));
        assert!(!Predicate::eq("missing", "x").matches(&a));
    }

    #[test]
    fn numeric_ranges() {
        let a = attrs();
        assert!(Predicate::cmp("port", CompareOp::Ge, 100i64).matches(&a));
        assert!(Predicate::cmp("port", CompareOp::Lt, 1000i64).matches(&a));
        assert!(!Predicate::cmp("port", CompareOp::Gt, 443i64).matches(&a));
        assert!(Predicate::cmp("port", CompareOp::Le, 443i64).matches(&a));
        // Int attribute compared against a float literal.
        assert!(Predicate::cmp("port", CompareOp::Lt, 443.5).matches(&a));
    }

    #[test]
    fn prefix_set_and_exists() {
        let a = attrs();
        assert!(Predicate::HasPrefix {
            key: "label".into(),
            prefix: "pol".into()
        }
        .matches(&a));
        assert!(!Predicate::HasPrefix {
            key: "port".into(),
            prefix: "4".into()
        }
        .matches(&a));
        assert!(Predicate::InSet {
            key: "label".into(),
            values: vec!["sports".into(), "politics".into()]
        }
        .matches(&a));
        assert!(Predicate::Exists {
            key: "score".into()
        }
        .matches(&a));
        assert!(!Predicate::Exists { key: "nope".into() }.matches(&a));
    }

    #[test]
    fn selectivity_factors_are_probabilities() {
        let preds = [
            Predicate::eq("a", 1i64),
            Predicate::cmp("a", CompareOp::Gt, 1i64),
            Predicate::HasPrefix {
                key: "a".into(),
                prefix: "x".into(),
            },
            Predicate::InSet {
                key: "a".into(),
                values: vec![1i64.into()],
            },
            Predicate::Exists { key: "a".into() },
        ];
        for p in preds {
            let f = p.selectivity_factor();
            assert!(f > 0.0 && f <= 1.0, "{p:?} -> {f}");
        }
    }

    #[test]
    fn canonical_tokens_distinguish_types_and_ignore_set_order() {
        // Int 1 vs Float 1.0 vs Str "1" must not collide.
        let toks: Vec<String> = [
            Predicate::eq("k", 1i64),
            Predicate::eq("k", 1.0),
            Predicate::eq("k", "1"),
        ]
        .iter()
        .map(|p| p.canonical_token())
        .collect();
        assert_ne!(toks[0], toks[1]);
        assert_ne!(toks[0], toks[2]);
        assert_ne!(toks[1], toks[2]);

        // InSet order must not matter.
        let a = Predicate::InSet {
            key: "k".into(),
            values: vec!["x".into(), "y".into()],
        };
        let b = Predicate::InSet {
            key: "k".into(),
            values: vec!["y".into(), "x".into()],
        };
        assert_eq!(a.canonical_token(), b.canonical_token());

        // Tricky embedded delimiters stay unambiguous.
        let c = Predicate::HasPrefix {
            key: "a,b".into(),
            prefix: "c".into(),
        };
        let d = Predicate::HasPrefix {
            key: "a".into(),
            prefix: "b,c".into(),
        };
        assert_ne!(c.canonical_token(), d.canonical_token());
    }

    #[test]
    fn canonical_tokens_are_stable_across_releases() {
        // These exact strings are persisted inside sharing fingerprints;
        // changing them silently splits or merges shared-query groups.
        assert_eq!(
            Predicate::eq("label", "politics").canonical_token(),
            "cmp(5#label,=,s8#politics)"
        );
        assert_eq!(
            Predicate::cmp("port", CompareOp::Ge, 443i64).canonical_token(),
            "cmp(4#port,>=,i443)"
        );
        assert_eq!(
            Predicate::Exists { key: "x".into() }.canonical_token(),
            "exists(1#x)"
        );
    }

    #[test]
    fn op_symbols_round_trip() {
        assert_eq!(CompareOp::Eq.symbol(), "=");
        assert_eq!(CompareOp::Ge.symbol(), ">=");
    }
}
