//! Error types for query construction and planning.

use std::fmt;

/// Errors raised while building, parsing or planning a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex variable name was used twice with conflicting definitions.
    DuplicateVertex(String),
    /// An edge referenced a vertex variable that was never declared.
    UnknownVertex(String),
    /// The query has no edges.
    EmptyQuery,
    /// The query graph is not connected and the chosen strategy requires it.
    Disconnected,
    /// A decomposition produced an invalid cover of the query edges.
    InvalidDecomposition(String),
    /// The DSL text could not be parsed.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DuplicateVertex(name) => {
                write!(
                    f,
                    "vertex variable `{name}` declared twice with different types"
                )
            }
            QueryError::UnknownVertex(name) => {
                write!(f, "edge references undeclared vertex variable `{name}`")
            }
            QueryError::EmptyQuery => write!(f, "query graph has no edges"),
            QueryError::Disconnected => write!(f, "query graph is not connected"),
            QueryError::InvalidDecomposition(msg) => {
                write!(f, "invalid query decomposition: {msg}")
            }
            QueryError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_cleanly() {
        assert!(QueryError::EmptyQuery.to_string().contains("no edges"));
        assert!(QueryError::UnknownVertex("x".into())
            .to_string()
            .contains("`x`"));
        let p = QueryError::Parse {
            line: 3,
            message: "unexpected token".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }
}
