//! Fluent builder for [`QueryGraph`]s.
//!
//! The builder mirrors how the paper's visual query composer (Fig. 4) lets a
//! user draw a pattern: declare typed vertices, connect them with typed edges,
//! optionally attach predicates, and set the time window.

use crate::error::QueryError;
use crate::predicate::Predicate;
use crate::query_graph::QueryGraph;
use streamworks_graph::Duration;

/// Builder for [`QueryGraph`].
#[derive(Debug, Clone)]
pub struct QueryGraphBuilder {
    name: String,
    window: Duration,
    // Stored operations are applied eagerly onto the graph; errors are kept
    // until `build` so the fluent chain does not need `?` on every call.
    graph: QueryGraph,
    error: Option<QueryError>,
}

impl QueryGraphBuilder {
    /// Starts a new query with the given name and a default 1-hour window.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        QueryGraphBuilder {
            graph: QueryGraph::new(name.clone(), Duration::from_hours(1)),
            name,
            window: Duration::from_hours(1),
            error: None,
        }
    }

    /// Sets the query window `tW`.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self.graph.set_window(window);
        self
    }

    /// Declares (or re-uses) a typed vertex variable.
    pub fn vertex(mut self, name: &str, vtype: &str) -> Self {
        if self.error.is_none() {
            if let Err(e) = self
                .graph
                .add_vertex(name, Some(vtype.to_owned()), Vec::new())
            {
                self.error = Some(e);
            }
        }
        self
    }

    /// Declares (or re-uses) an untyped vertex variable.
    pub fn any_vertex(mut self, name: &str) -> Self {
        if self.error.is_none() {
            if let Err(e) = self.graph.add_vertex(name, None, Vec::new()) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Attaches a predicate to an already-declared vertex.
    pub fn vertex_predicate(mut self, name: &str, predicate: Predicate) -> Self {
        if self.error.is_none() {
            match self.graph.vertex_by_name(name).map(|v| v.id) {
                Some(id) => {
                    // add_vertex with the same name appends predicates.
                    let _ = id;
                    if let Err(e) = self.graph.add_vertex(name, None, vec![predicate]) {
                        self.error = Some(e);
                    }
                }
                None => self.error = Some(QueryError::UnknownVertex(name.to_owned())),
            }
        }
        self
    }

    /// Adds a typed edge between two declared vertices. Undeclared endpoint
    /// names become untyped vertices.
    pub fn edge(self, src: &str, etype: &str, dst: &str) -> Self {
        self.edge_with(src, etype, dst, Vec::new())
    }

    /// Adds a typed edge carrying predicates.
    pub fn edge_with(
        mut self,
        src: &str,
        etype: &str,
        dst: &str,
        predicates: Vec<Predicate>,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let src_id = match self.graph.add_vertex(src, None, Vec::new()) {
            Ok(id) => id,
            Err(e) => {
                self.error = Some(e);
                return self;
            }
        };
        let dst_id = match self.graph.add_vertex(dst, None, Vec::new()) {
            Ok(id) => id,
            Err(e) => {
                self.error = Some(e);
                return self;
            }
        };
        self.graph
            .add_edge(src_id, dst_id, Some(etype.to_owned()), predicates);
        self
    }

    /// Adds an edge that matches any relation type.
    pub fn any_edge(mut self, src: &str, dst: &str) -> Self {
        if self.error.is_some() {
            return self;
        }
        let src_id = self.graph.add_vertex(src, None, Vec::new());
        let dst_id = self.graph.add_vertex(dst, None, Vec::new());
        match (src_id, dst_id) {
            (Ok(s), Ok(d)) => {
                self.graph.add_edge(s, d, None, Vec::new());
            }
            (Err(e), _) | (_, Err(e)) => self.error = Some(e),
        }
        self
    }

    /// Finalizes the query, validating it.
    pub fn build(self) -> Result<QueryGraph, QueryError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// The query name this builder was created with.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_fig2_news_query() {
        // "three articles or posts with a common keyword and location" (Fig. 2)
        let q = QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap();
        assert_eq!(q.vertex_count(), 5);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.window(), Duration::from_hours(6));
        assert!(q.is_connected());
        assert_eq!(
            q.vertex_by_name("a1").unwrap().vtype.as_deref(),
            Some("Article")
        );
    }

    #[test]
    fn edge_creates_untyped_endpoints() {
        let q = QueryGraphBuilder::new("q")
            .edge("x", "flow", "y")
            .build()
            .unwrap();
        assert_eq!(q.vertex_count(), 2);
        assert!(q.vertex_by_name("x").unwrap().vtype.is_none());
    }

    #[test]
    fn vertex_predicate_on_unknown_vertex_errors() {
        let err = QueryGraphBuilder::new("q")
            .vertex_predicate("ghost", Predicate::eq("label", "politics"))
            .edge("a", "b", "c")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownVertex(_)));
    }

    #[test]
    fn predicates_accumulate_on_vertices() {
        let q = QueryGraphBuilder::new("q")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .vertex_predicate("k", Predicate::eq("label", "politics"))
            .build()
            .unwrap();
        assert_eq!(q.vertex_by_name("k").unwrap().predicates.len(), 1);
    }

    #[test]
    fn empty_query_fails_to_build() {
        let err = QueryGraphBuilder::new("q")
            .vertex("a", "A")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::EmptyQuery));
    }

    #[test]
    fn conflicting_types_surface_at_build() {
        let err = QueryGraphBuilder::new("q")
            .vertex("a", "Article")
            .vertex("a", "Keyword")
            .edge("a", "mentions", "k")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateVertex(_)));
    }

    #[test]
    fn any_edge_matches_any_type() {
        let q = QueryGraphBuilder::new("q")
            .any_edge("a", "b")
            .build()
            .unwrap();
        assert!(q.edge(crate::query_graph::QueryEdgeId(0)).etype.is_none());
    }
}
