//! A small text DSL for registering queries.
//!
//! The paper's demo targets analysts who compose queries visually (Fig. 4);
//! for a library the equivalent affordance is a compact textual pattern
//! syntax. The grammar is a deliberately small Cypher-like subset:
//!
//! ```text
//! QUERY news_politics WINDOW 6h
//! MATCH (a1:Article)-[:mentions]->(k:Keyword),
//!       (a2:Article)-[:mentions]->(k),
//!       (a1)-[:located]->(l:Location),
//!       (a2)-[:located]->(l)
//! WHERE k.label = "politics"
//! ```
//!
//! * `QUERY <name>` — query name; optional `WINDOW <n>(ms|s|m|h)` sets `tW`.
//! * `MATCH` — comma-separated path patterns. A pattern element is
//!   `(var[:Type])-[:etype]->(var[:Type])` or the mirrored `<-[:etype]-`
//!   form; `[:etype]` may be `[]` to match any relation. Chains like
//!   `(a)-[:x]->(b)-[:y]->(c)` are allowed.
//! * `WHERE` — optional conjunction of `var.attr <op> literal` predicates
//!   with `op` in `=, !=, <, <=, >, >=` and literals being double-quoted
//!   strings, integers, floats or `true`/`false`.

use crate::error::QueryError;
use crate::predicate::{CompareOp, Predicate};
use crate::query_graph::QueryGraph;
use streamworks_graph::{AttrValue, Duration};

/// Parses a query written in the StreamWorks DSL.
pub fn parse_query(text: &str) -> Result<QueryGraph, QueryError> {
    Parser::new(text).parse()
}

/// Pretty-prints a query graph back into DSL-ish text (for plan explain output).
pub fn format_query(query: &QueryGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "QUERY {} WINDOW {}s\nMATCH ",
        query.name(),
        query.window().as_secs()
    ));
    let lines: Vec<String> = query.edge_ids().map(|e| query.describe_edge(e)).collect();
    out.push_str(&lines.join(",\n      "));
    let fmt_literal = |value: &AttrValue| match value {
        AttrValue::Str(s) => format!("\"{s}\""),
        other => other.to_string(),
    };
    let mut preds = Vec::new();
    for v in query.vertices() {
        for p in &v.predicates {
            if let Predicate::Compare { key, op, value } = p {
                preds.push(format!(
                    "{}.{} {} {}",
                    v.name,
                    key,
                    op.symbol(),
                    fmt_literal(value)
                ));
            }
        }
    }
    if !preds.is_empty() {
        out.push_str("\nWHERE ");
        out.push_str(&preds.join(" AND "));
    }
    out
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c == '\n' {
                self.line += 1;
                self.pos += 1;
            } else if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else if c == '#' {
                // Comment to end of line.
                while let Some(c) = self.rest().chars().next() {
                    self.pos += c.len_utf8();
                    if c == '\n' {
                        self.line += 1;
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            // Keyword must not be a prefix of a longer identifier.
            let after = rest[kw.len()..].chars().next();
            if after
                .map(|c| !c.is_alphanumeric() && c != '_')
                .unwrap_or(true)
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), QueryError> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{c}`, found `{}`",
                self.rest()
                    .chars()
                    .next()
                    .map(String::from)
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn parse_identifier(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == '_' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.error("expected identifier"))
        } else {
            Ok(self.text[start..self.pos].to_owned())
        }
    }

    fn parse_duration(&mut self) -> Result<Duration, QueryError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected duration value"));
        }
        let value: i64 = self.text[start..self.pos]
            .parse()
            .map_err(|_| self.error("invalid duration number"))?;
        // Unit suffix.
        let unit_start = self.pos;
        for c in self.rest().chars() {
            if c.is_ascii_alphabetic() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let unit = &self.text[unit_start..self.pos];
        match unit {
            "ms" => Ok(Duration::from_millis(value)),
            "s" | "" => Ok(Duration::from_secs(value)),
            "m" | "min" => Ok(Duration::from_mins(value)),
            "h" => Ok(Duration::from_hours(value)),
            other => Err(self.error(format!("unknown duration unit `{other}`"))),
        }
    }

    /// Parses `(name[:Type])`, returning `(name, Option<Type>)`.
    fn parse_node(&mut self) -> Result<(String, Option<String>), QueryError> {
        self.expect_char('(')?;
        let name = self.parse_identifier()?;
        let vtype = if self.eat_char(':') {
            Some(self.parse_identifier()?)
        } else {
            None
        };
        self.expect_char(')')?;
        Ok((name, vtype))
    }

    /// Parses `-[:etype]->` or `<-[:etype]-`, returning `(etype, forward)`.
    fn parse_relation(&mut self) -> Result<(Option<String>, bool), QueryError> {
        self.skip_ws();
        let backward = self.eat_char('<');
        self.expect_char('-')?;
        self.expect_char('[')?;
        // Accept `[:etype]`, `[etype]`, `[*]` and `[]`.
        let _ = self.eat_char(':');
        self.skip_ws();
        let etype = if self.rest().starts_with(']') || self.eat_char('*') {
            None
        } else {
            Some(self.parse_identifier()?)
        };
        self.expect_char(']')?;
        self.expect_char('-')?;
        let forward = if backward {
            false
        } else {
            self.expect_char('>')?;
            true
        };
        Ok((etype, forward))
    }

    fn parse_literal(&mut self) -> Result<AttrValue, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('"') {
            let inner_start = self.pos + 1;
            let mut end = None;
            for (i, c) in rest.char_indices().skip(1) {
                if c == '"' {
                    end = Some(self.pos + i);
                    break;
                }
            }
            let end = end.ok_or_else(|| self.error("unterminated string literal"))?;
            let s = self.text[inner_start..end].to_owned();
            self.pos = end + 1;
            return Ok(AttrValue::Str(s));
        }
        if self.eat_keyword("true") {
            return Ok(AttrValue::Bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(AttrValue::Bool(false));
        }
        // Number.
        let start = self.pos;
        let mut saw_dot = false;
        for c in self.rest().chars() {
            if c.is_ascii_digit() || c == '-' && self.pos == start {
                self.pos += 1;
            } else if c == '.' && !saw_dot {
                saw_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected literal"));
        }
        let raw = &self.text[start..self.pos];
        if saw_dot {
            raw.parse::<f64>()
                .map(AttrValue::Float)
                .map_err(|_| self.error("invalid float literal"))
        } else {
            raw.parse::<i64>()
                .map(AttrValue::Int)
                .map_err(|_| self.error("invalid integer literal"))
        }
    }

    fn parse_compare_op(&mut self) -> Result<CompareOp, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let (op, len) = if rest.starts_with("!=") {
            (CompareOp::Ne, 2)
        } else if rest.starts_with("<=") {
            (CompareOp::Le, 2)
        } else if rest.starts_with(">=") {
            (CompareOp::Ge, 2)
        } else if rest.starts_with('=') {
            (CompareOp::Eq, 1)
        } else if rest.starts_with('<') {
            (CompareOp::Lt, 1)
        } else if rest.starts_with('>') {
            (CompareOp::Gt, 1)
        } else {
            return Err(self.error("expected comparison operator"));
        };
        self.pos += len;
        Ok(op)
    }

    fn parse(mut self) -> Result<QueryGraph, QueryError> {
        if !self.eat_keyword("QUERY") {
            return Err(self.error("query must start with `QUERY <name>`"));
        }
        let name = self.parse_identifier()?;
        let window = if self.eat_keyword("WINDOW") {
            self.parse_duration()?
        } else {
            Duration::from_hours(1)
        };
        let mut query = QueryGraph::new(name, window);

        if !self.eat_keyword("MATCH") {
            return Err(self.error("expected `MATCH`"));
        }
        loop {
            // One path: node (relation node)+
            let (mut prev_name, mut prev_type) = self.parse_node()?;
            loop {
                let (etype, forward) = self.parse_relation()?;
                let (next_name, next_type) = self.parse_node()?;
                let src_v = query
                    .add_vertex(prev_name.clone(), prev_type.clone(), vec![])
                    .map_err(|e| self.error(e.to_string()))?;
                let dst_v = query
                    .add_vertex(next_name.clone(), next_type.clone(), vec![])
                    .map_err(|e| self.error(e.to_string()))?;
                if forward {
                    query.add_edge(src_v, dst_v, etype, vec![]);
                } else {
                    query.add_edge(dst_v, src_v, etype, vec![]);
                }
                prev_name = next_name;
                prev_type = next_type;
                // Peek: another relation continues the chain.
                self.skip_ws();
                let rest = self.rest();
                if !(rest.starts_with('-') || rest.starts_with('<')) {
                    break;
                }
            }
            if !self.eat_char(',') {
                break;
            }
        }

        if self.eat_keyword("WHERE") {
            loop {
                let var = self.parse_identifier()?;
                self.expect_char('.')?;
                let attr = self.parse_identifier()?;
                let op = self.parse_compare_op()?;
                let value = self.parse_literal()?;
                let predicate = Predicate::Compare {
                    key: attr,
                    op,
                    value,
                };
                if query.vertex_by_name(&var).is_none() {
                    return Err(self.error(format!("WHERE references unknown variable `{var}`")));
                }
                query
                    .add_vertex(var, None, vec![predicate])
                    .map_err(|e| self.error(e.to_string()))?;
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }

        self.skip_ws();
        if !self.rest().is_empty() {
            return Err(self.error(format!(
                "unexpected trailing input: `{}`",
                self.rest().chars().take(20).collect::<String>()
            )));
        }
        query.validate()?;
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::QueryEdgeId;

    #[test]
    fn parses_the_news_query() {
        let q = parse_query(
            r#"
            QUERY news_politics WINDOW 6h
            MATCH (a1:Article)-[:mentions]->(k:Keyword),
                  (a2:Article)-[:mentions]->(k),
                  (a1)-[:located]->(l:Location),
                  (a2)-[:located]->(l)
            WHERE k.label = "politics"
            "#,
        )
        .unwrap();
        assert_eq!(q.name(), "news_politics");
        assert_eq!(q.window(), Duration::from_hours(6));
        assert_eq!(q.vertex_count(), 4);
        assert_eq!(q.edge_count(), 4);
        let k = q.vertex_by_name("k").unwrap();
        assert_eq!(k.predicates.len(), 1);
        assert_eq!(k.vtype.as_deref(), Some("Keyword"));
    }

    #[test]
    fn parses_chained_paths_and_reverse_edges() {
        let q = parse_query(
            "QUERY chain WINDOW 30s MATCH (a:IP)-[:flow]->(b:IP)-[:flow]->(c:IP), (a)<-[:flow]-(c)",
        )
        .unwrap();
        assert_eq!(q.edge_count(), 3);
        // The reverse edge is stored as c -> a.
        let e = q.edge(QueryEdgeId(2));
        assert_eq!(q.vertex(e.src).name, "c");
        assert_eq!(q.vertex(e.dst).name, "a");
    }

    #[test]
    fn parses_untyped_relations_and_defaults_window() {
        let q = parse_query("QUERY any MATCH (a)-[]->(b)").unwrap();
        assert_eq!(q.window(), Duration::from_hours(1));
        assert!(q.edge(QueryEdgeId(0)).etype.is_none());
    }

    #[test]
    fn parses_numeric_and_boolean_predicates() {
        let q = parse_query(
            r#"QUERY p MATCH (a:IP)-[:flow]->(b:IP)
               WHERE a.port >= 1024 AND b.internal = true AND a.score < 0.5"#,
        )
        .unwrap();
        assert_eq!(q.vertex_by_name("a").unwrap().predicates.len(), 2);
        assert_eq!(q.vertex_by_name("b").unwrap().predicates.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse_query("QUERY x\nMATCH (a:IP)-[:flow]->\n(").unwrap_err();
        match err {
            QueryError::Parse { line, .. } => assert!(line >= 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_where_on_unknown_variable() {
        let err = parse_query(r#"QUERY x MATCH (a)-[:t]->(b) WHERE ghost.k = "v""#).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rejects_trailing_garbage_and_missing_match() {
        assert!(parse_query("QUERY x MATCH (a)-[:t]->(b) EXTRA").is_err());
        assert!(parse_query("MATCH (a)-[:t]->(b)").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let q = parse_query("# header comment\nQUERY c # trailing\nMATCH (a)-[:t]->(b) # done\n")
            .unwrap();
        assert_eq!(q.name(), "c");
    }

    #[test]
    fn format_round_trips_through_parse() {
        let q = parse_query(
            r#"QUERY roundtrip WINDOW 300s
               MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)
               WHERE k.label = "sports""#,
        )
        .unwrap();
        let text = format_query(&q);
        let q2 = parse_query(&text).unwrap();
        assert_eq!(q2.name(), "roundtrip");
        assert_eq!(q2.edge_count(), q.edge_count());
        assert_eq!(q2.vertex_count(), q.vertex_count());
        assert_eq!(q2.window(), q.window());
        assert_eq!(q2.vertex_by_name("k").unwrap().predicates.len(), 1);
    }
}
