//! The query (pattern) graph.
//!
//! A [`QueryGraph`] is the pattern `Gq` of paper §2.1: a small directed,
//! typed multigraph whose vertices are *variables* (optionally constrained by
//! a vertex type and attribute predicates) and whose edges are relationship
//! constraints. The continuous-query semantics add a time window `tW`: a
//! match is only reported while the span of its data-edge timestamps is below
//! the window.

use crate::error::QueryError;
use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use streamworks_graph::{AttrValue, Duration};

/// Index of a vertex within a [`QueryGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct QueryVertexId(pub usize);

/// Index of an edge within a [`QueryGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct QueryEdgeId(pub usize);

/// A query vertex (pattern variable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryVertex {
    /// Dense id.
    pub id: QueryVertexId,
    /// Variable name, unique within the query (e.g. `"a1"`).
    pub name: String,
    /// Required vertex type label; `None` matches any type.
    pub vtype: Option<String>,
    /// Attribute predicates a data vertex must satisfy to bind here.
    pub predicates: Vec<Predicate>,
}

/// A query edge (relationship constraint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEdge {
    /// Dense id.
    pub id: QueryEdgeId,
    /// Source query vertex.
    pub src: QueryVertexId,
    /// Destination query vertex.
    pub dst: QueryVertexId,
    /// Required edge type label; `None` matches any type.
    pub etype: Option<String>,
    /// Attribute predicates a data edge must satisfy to bind here.
    pub predicates: Vec<Predicate>,
}

impl QueryEdge {
    /// Both endpoints of the edge.
    pub fn endpoints(&self) -> [QueryVertexId; 2] {
        [self.src, self.dst]
    }

    /// The endpoint opposite to `v`, if `v` is an endpoint.
    pub fn other_endpoint(&self, v: QueryVertexId) -> Option<QueryVertexId> {
        if v == self.src {
            Some(self.dst)
        } else if v == self.dst {
            Some(self.src)
        } else {
            None
        }
    }

    /// True if the two edges share at least one endpoint.
    pub fn is_adjacent_to(&self, other: &QueryEdge) -> bool {
        self.endpoints()
            .iter()
            .any(|v| other.endpoints().contains(v))
    }
}

/// A directed, typed pattern graph with an associated time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    name: String,
    window: Duration,
    vertices: Vec<QueryVertex>,
    edges: Vec<QueryEdge>,
}

impl QueryGraph {
    /// Creates an empty query graph with a name and time window `tW`.
    pub fn new(name: impl Into<String>, window: Duration) -> Self {
        QueryGraph {
            name: name.into(),
            window,
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The query's name (used in match events and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The query's time window `tW`.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Overrides the window (used by experiment sweeps).
    pub fn set_window(&mut self, window: Duration) {
        self.window = window;
    }

    /// Drops every edge predicate `keep` rejects, on every edge. Used by
    /// predicate-lifted sharing to materialise the constant-free search
    /// pattern of a canonical form.
    pub fn retain_edge_predicates(&mut self, keep: impl Fn(&Predicate) -> bool) {
        for e in &mut self.edges {
            e.predicates.retain(&keep);
        }
    }

    /// Extends (creating on first use) the [`Predicate::InSet`] on `key` of
    /// edge `e` with `values`. Used by predicate-lifted sharing: a shared
    /// entry's constant-free search pattern regains the *union* of its
    /// subscribers' `eq` constants as an `InSet` filter, so the shared
    /// search stays as selective as the tenants' own predicates instead of
    /// enumerating every embedding of the unconstrained shape. Callers are
    /// expected to deduplicate values across calls.
    pub fn extend_in_set(&mut self, e: QueryEdgeId, key: &str, values: &[AttrValue]) {
        let edge = &mut self.edges[e.0];
        for p in &mut edge.predicates {
            if let Predicate::InSet { key: k, values: vs } = p {
                if k == key {
                    vs.extend(values.iter().cloned());
                    return;
                }
            }
        }
        edge.predicates.push(Predicate::InSet {
            key: key.to_owned(),
            values: values.to_vec(),
        });
    }

    /// Adds a vertex; returns an error if a vertex with the same name but a
    /// different type already exists, otherwise returns the existing or new id.
    pub fn add_vertex(
        &mut self,
        name: impl Into<String>,
        vtype: Option<String>,
        predicates: Vec<Predicate>,
    ) -> Result<QueryVertexId, QueryError> {
        let name = name.into();
        if let Some(existing) = self.vertices.iter_mut().find(|v| v.name == name) {
            match (&existing.vtype, &vtype) {
                (Some(a), Some(b)) if a != b => {
                    return Err(QueryError::DuplicateVertex(name));
                }
                (None, Some(b)) => existing.vtype = Some(b.clone()),
                _ => {}
            }
            existing.predicates.extend(predicates);
            return Ok(existing.id);
        }
        let id = QueryVertexId(self.vertices.len());
        self.vertices.push(QueryVertex {
            id,
            name,
            vtype,
            predicates,
        });
        Ok(id)
    }

    /// Adds an edge between two existing vertices.
    pub fn add_edge(
        &mut self,
        src: QueryVertexId,
        dst: QueryVertexId,
        etype: Option<String>,
        predicates: Vec<Predicate>,
    ) -> QueryEdgeId {
        let id = QueryEdgeId(self.edges.len());
        self.edges.push(QueryEdge {
            id,
            src,
            dst,
            etype,
            predicates,
        });
        id
    }

    /// Vertex lookup by id.
    pub fn vertex(&self, id: QueryVertexId) -> &QueryVertex {
        &self.vertices[id.0]
    }

    /// Edge lookup by id.
    pub fn edge(&self, id: QueryEdgeId) -> &QueryEdge {
        &self.edges[id.0]
    }

    /// Vertex lookup by variable name.
    pub fn vertex_by_name(&self, name: &str) -> Option<&QueryVertex> {
        self.vertices.iter().find(|v| v.name == name)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates vertices in id order.
    pub fn vertices(&self) -> impl Iterator<Item = &QueryVertex> {
        self.vertices.iter()
    }

    /// Iterates edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = &QueryEdge> {
        self.edges.iter()
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = QueryEdgeId> + '_ {
        (0..self.edges.len()).map(QueryEdgeId)
    }

    /// Edges incident to a query vertex.
    pub fn incident_edges(&self, v: QueryVertexId) -> impl Iterator<Item = &QueryEdge> {
        self.edges.iter().filter(move |e| e.src == v || e.dst == v)
    }

    /// The set of vertices touched by a set of edges, in sorted order.
    pub fn vertices_of_edges(&self, edges: &[QueryEdgeId]) -> Vec<QueryVertexId> {
        let mut set = BTreeSet::new();
        for &e in edges {
            let edge = self.edge(e);
            set.insert(edge.src);
            set.insert(edge.dst);
        }
        set.into_iter().collect()
    }

    /// True if the subgraph induced by `edges` is connected (and non-empty).
    pub fn edges_connected(&self, edges: &[QueryEdgeId]) -> bool {
        if edges.is_empty() {
            return false;
        }
        let edge_set: BTreeSet<_> = edges.iter().copied().collect();
        let mut visited_edges = BTreeSet::new();
        let mut visited_vertices = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(edges[0]);
        visited_edges.insert(edges[0]);
        while let Some(eid) = queue.pop_front() {
            let e = self.edge(eid);
            for v in e.endpoints() {
                if visited_vertices.insert(v) {
                    for adj in self.incident_edges(v) {
                        if edge_set.contains(&adj.id) && visited_edges.insert(adj.id) {
                            queue.push_back(adj.id);
                        }
                    }
                }
            }
        }
        visited_edges.len() == edge_set.len()
    }

    /// True if the whole query graph is connected.
    pub fn is_connected(&self) -> bool {
        let all: Vec<_> = self.edge_ids().collect();
        if all.is_empty() {
            return self.vertices.len() <= 1;
        }
        // Also require that no vertex is isolated.
        self.edges_connected(&all)
            && self
                .vertices
                .iter()
                .all(|v| self.incident_edges(v.id).next().is_some())
    }

    /// Basic sanity check used before planning.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.edges.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        Ok(())
    }

    /// Human-readable single-line description of an edge, e.g.
    /// `(a1:Article)-[mentions]->(k:Keyword)`.
    pub fn describe_edge(&self, id: QueryEdgeId) -> String {
        let e = self.edge(id);
        let src = self.vertex(e.src);
        let dst = self.vertex(e.dst);
        let fmt_v = |v: &QueryVertex| match &v.vtype {
            Some(t) => format!("({}:{})", v.name, t),
            None => format!("({})", v.name),
        };
        let et = e.etype.clone().unwrap_or_else(|| "*".to_owned());
        format!("{}-[{}]->{}", fmt_v(src), et, fmt_v(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> QueryGraph {
        let mut q = QueryGraph::new("tri", Duration::from_secs(60));
        let a = q.add_vertex("a", Some("IP".into()), vec![]).unwrap();
        let b = q.add_vertex("b", Some("IP".into()), vec![]).unwrap();
        let c = q.add_vertex("c", Some("IP".into()), vec![]).unwrap();
        q.add_edge(a, b, Some("flow".into()), vec![]);
        q.add_edge(b, c, Some("flow".into()), vec![]);
        q.add_edge(c, a, Some("flow".into()), vec![]);
        q
    }

    #[test]
    fn vertices_dedupe_by_name() {
        let mut q = QueryGraph::new("q", Duration::from_secs(1));
        let a1 = q.add_vertex("a", Some("Article".into()), vec![]).unwrap();
        let a2 = q.add_vertex("a", None, vec![]).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(q.vertex_count(), 1);
        // Conflicting types error out.
        let err = q
            .add_vertex("a", Some("Keyword".into()), vec![])
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateVertex(_)));
    }

    #[test]
    fn later_type_refines_untyped_vertex() {
        let mut q = QueryGraph::new("q", Duration::from_secs(1));
        q.add_vertex("a", None, vec![]).unwrap();
        q.add_vertex("a", Some("Article".into()), vec![]).unwrap();
        assert_eq!(
            q.vertex_by_name("a").unwrap().vtype.as_deref(),
            Some("Article")
        );
    }

    #[test]
    fn connectivity_detection() {
        let q = triangle();
        assert!(q.is_connected());
        assert!(q.edges_connected(&[QueryEdgeId(0), QueryEdgeId(1)]));
        assert!(!q.edges_connected(&[]));

        let mut disc = QueryGraph::new("disc", Duration::from_secs(1));
        let a = disc.add_vertex("a", None, vec![]).unwrap();
        let b = disc.add_vertex("b", None, vec![]).unwrap();
        let c = disc.add_vertex("c", None, vec![]).unwrap();
        let d = disc.add_vertex("d", None, vec![]).unwrap();
        disc.add_edge(a, b, None, vec![]);
        disc.add_edge(c, d, None, vec![]);
        assert!(!disc.is_connected());
        assert!(!disc.edges_connected(&[QueryEdgeId(0), QueryEdgeId(1)]));
    }

    #[test]
    fn vertices_of_edges_sorted_unique() {
        let q = triangle();
        let vs = q.vertices_of_edges(&[QueryEdgeId(0), QueryEdgeId(1)]);
        assert_eq!(
            vs,
            vec![QueryVertexId(0), QueryVertexId(1), QueryVertexId(2)]
        );
    }

    #[test]
    fn validate_rejects_empty_query() {
        let q = QueryGraph::new("empty", Duration::from_secs(1));
        assert!(matches!(q.validate(), Err(QueryError::EmptyQuery)));
        assert!(triangle().validate().is_ok());
    }

    #[test]
    fn describe_edge_formats() {
        let q = triangle();
        assert_eq!(q.describe_edge(QueryEdgeId(0)), "(a:IP)-[flow]->(b:IP)");
    }

    #[test]
    fn incident_edges_and_adjacency() {
        let q = triangle();
        assert_eq!(q.incident_edges(QueryVertexId(0)).count(), 2);
        let e0 = q.edge(QueryEdgeId(0));
        let e1 = q.edge(QueryEdgeId(1));
        assert!(e0.is_adjacent_to(e1));
        assert_eq!(e0.other_endpoint(QueryVertexId(0)), Some(QueryVertexId(1)));
        assert_eq!(e0.other_endpoint(QueryVertexId(2)), None);
    }

    #[test]
    fn extend_in_set_creates_then_accumulates_per_key() {
        use streamworks_graph::Attrs;
        let mut q = triangle();
        let e = QueryEdgeId(0);
        q.extend_in_set(e, "label", &["politics".into()]);
        // First call creates the predicate; it rejects other values.
        let accepts = |q: &QueryGraph, label: &str| {
            q.edge(e)
                .predicates
                .iter()
                .all(|p| p.matches(&Attrs::from_pairs([("label", AttrValue::from(label))])))
        };
        assert!(accepts(&q, "politics"));
        assert!(!accepts(&q, "sports"));
        // Later calls widen the same predicate instead of stacking a second
        // (conjunctive, hence unsatisfiable) InSet on the key.
        q.extend_in_set(e, "label", &["sports".into()]);
        assert!(accepts(&q, "politics"));
        assert!(accepts(&q, "sports"));
        assert!(!accepts(&q, "culture"));
        assert_eq!(q.edge(e).predicates.len(), 1);
        // A different key gets its own predicate.
        q.extend_in_set(e, "region", &["eu".into()]);
        assert_eq!(q.edge(e).predicates.len(), 2);
    }
}
