//! Windowed regular path queries (RPQ) over edge labels.
//!
//! The StreamWorks query model (paper §3) is fixed-shape subgraph
//! isomorphism; this module adds the second query class from the ROADMAP: a
//! regular expression over *edge types* matched against paths in the sliding
//! window, in the style of S-Graffito (Pacaci, Bonifati, Özsu). The query
//! side is classic automata plumbing:
//!
//! 1. a tiny regex AST ([`PathExpr`]: label, concatenation, alternation,
//!    Kleene star/plus, optional, bounded repetition),
//! 2. compiled via Thompson's construction into an epsilon-NFA,
//! 3. determinized with the subset construction,
//! 4. minimized with Moore partition refinement (partial transition function;
//!    missing transitions act as an implicit dead state).
//!
//! The incremental product-graph evaluation lives in `streamworks-core`
//! (`rpq` module); this crate only knows about labels and states.
//!
//! ```
//! use streamworks_query::parse_rpq;
//!
//! let q = parse_rpq("RPQ lateral WINDOW 5m PATH login (flow)+ exploit").unwrap();
//! let dfa = q.compile();
//! assert!(dfa.accepts(["login", "flow", "exploit"]));
//! assert!(dfa.accepts(["login", "flow", "flow", "flow", "exploit"]));
//! assert!(!dfa.accepts(["login", "exploit"]));
//! ```

use crate::error::QueryError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use streamworks_graph::Duration;

/// A regular expression over edge labels.
///
/// Labels are edge-type names as interned by the graph (`"flow"`, `"login"`,
/// ...). The expression describes the *label string* read along a directed
/// path; vertices are unconstrained (endpoint predicates are future work).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathExpr {
    /// A single edge with the given type name.
    Label(String),
    /// `a b c` — the sub-expressions matched in sequence.
    Concat(Vec<PathExpr>),
    /// `a | b` — either alternative.
    Alt(Vec<PathExpr>),
    /// `a*` — zero or more repetitions.
    Star(Box<PathExpr>),
    /// `a+` — one or more repetitions.
    Plus(Box<PathExpr>),
    /// `a?` — zero or one occurrence.
    Optional(Box<PathExpr>),
    /// `a{m,n}` — between `m` and `n` repetitions; `None` max means `m` or
    /// more (`a{m,}`).
    Repeat(Box<PathExpr>, u32, Option<u32>),
}

impl PathExpr {
    /// Collects every distinct label mentioned by the expression, in first
    /// appearance order.
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<String>) {
        match self {
            PathExpr::Label(l) => {
                if !out.iter().any(|x| x == l) {
                    out.push(l.clone());
                }
            }
            PathExpr::Concat(parts) | PathExpr::Alt(parts) => {
                for p in parts {
                    p.collect_labels(out);
                }
            }
            PathExpr::Star(inner) | PathExpr::Plus(inner) | PathExpr::Optional(inner) => {
                inner.collect_labels(out)
            }
            PathExpr::Repeat(inner, _, _) => inner.collect_labels(out),
        }
    }

    /// True if the expression matches the empty label string (a zero-hop
    /// path). The engine rejects such queries: a zero-length path is every
    /// vertex, which is not a useful streaming match.
    pub fn matches_empty(&self) -> bool {
        match self {
            PathExpr::Label(_) => false,
            PathExpr::Concat(parts) => parts.iter().all(|p| p.matches_empty()),
            PathExpr::Alt(parts) => parts.iter().any(|p| p.matches_empty()),
            PathExpr::Star(_) | PathExpr::Optional(_) => true,
            PathExpr::Plus(inner) => inner.matches_empty(),
            PathExpr::Repeat(inner, min, _) => *min == 0 || inner.matches_empty(),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Label(l) => write!(f, "{l}"),
            PathExpr::Concat(parts) => {
                let mut first = true;
                for p in parts {
                    if !first {
                        write!(f, " ")?;
                    }
                    first = false;
                    if matches!(p, PathExpr::Alt(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            PathExpr::Alt(parts) => {
                let mut first = true;
                for p in parts {
                    if !first {
                        write!(f, " | ")?;
                    }
                    first = false;
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            PathExpr::Star(inner) => write!(f, "({inner})*"),
            PathExpr::Plus(inner) => write!(f, "({inner})+"),
            PathExpr::Optional(inner) => write!(f, "({inner})?"),
            PathExpr::Repeat(inner, min, Some(max)) => write!(f, "({inner}){{{min},{max}}}"),
            PathExpr::Repeat(inner, min, None) => write!(f, "({inner}){{{min},}}"),
        }
    }
}

/// A complete windowed regular path query: name, window `tW`, and pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpqQuery {
    name: String,
    window: Duration,
    pattern: PathExpr,
}

impl RpqQuery {
    /// Builds a query from parts, rejecting patterns that match the empty
    /// path (zero hops would make every vertex a match).
    pub fn new(
        name: impl Into<String>,
        window: Duration,
        pattern: PathExpr,
    ) -> Result<Self, QueryError> {
        if pattern.matches_empty() {
            return Err(QueryError::EmptyQuery);
        }
        Ok(RpqQuery {
            name: name.into(),
            window,
            pattern,
        })
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sliding-window width `tW`.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The path pattern.
    pub fn pattern(&self) -> &PathExpr {
        &self.pattern
    }

    /// Compiles the pattern to a minimized DFA.
    pub fn compile(&self) -> RpqDfa {
        RpqDfa::compile(&self.pattern)
    }
}

// ---------------------------------------------------------------------------
// Thompson NFA
// ---------------------------------------------------------------------------

const EPSILON: u32 = u32::MAX;

/// Epsilon-NFA fragment machinery (Thompson's construction).
struct Nfa {
    /// `transitions[state]` = list of `(symbol, target)`; `symbol == EPSILON`
    /// is an epsilon move, otherwise an index into the label alphabet.
    transitions: Vec<Vec<(u32, usize)>>,
}

impl Nfa {
    fn new() -> Self {
        Nfa {
            transitions: Vec::new(),
        }
    }

    fn add_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn add_edge(&mut self, from: usize, symbol: u32, to: usize) {
        self.transitions[from].push((symbol, to));
    }

    /// Builds the fragment for `expr`, returning `(start, accept)` states.
    fn build(&mut self, expr: &PathExpr, alphabet: &BTreeMap<&str, u32>) -> (usize, usize) {
        match expr {
            PathExpr::Label(l) => {
                let start = self.add_state();
                let accept = self.add_state();
                self.add_edge(start, alphabet[l.as_str()], accept);
                (start, accept)
            }
            PathExpr::Concat(parts) => {
                debug_assert!(!parts.is_empty(), "parser never emits empty Concat");
                let mut iter = parts.iter();
                let (start, mut accept) = self.build(iter.next().unwrap(), alphabet);
                for part in iter {
                    let (s, a) = self.build(part, alphabet);
                    self.add_edge(accept, EPSILON, s);
                    accept = a;
                }
                (start, accept)
            }
            PathExpr::Alt(parts) => {
                let start = self.add_state();
                let accept = self.add_state();
                for part in parts {
                    let (s, a) = self.build(part, alphabet);
                    self.add_edge(start, EPSILON, s);
                    self.add_edge(a, EPSILON, accept);
                }
                (start, accept)
            }
            PathExpr::Star(inner) => {
                let start = self.add_state();
                let accept = self.add_state();
                let (s, a) = self.build(inner, alphabet);
                self.add_edge(start, EPSILON, s);
                self.add_edge(start, EPSILON, accept);
                self.add_edge(a, EPSILON, s);
                self.add_edge(a, EPSILON, accept);
                (start, accept)
            }
            PathExpr::Plus(inner) => {
                // a+ = a a*
                let (s, a) = self.build(inner, alphabet);
                let accept = self.add_state();
                self.add_edge(a, EPSILON, s);
                self.add_edge(a, EPSILON, accept);
                (s, accept)
            }
            PathExpr::Optional(inner) => {
                let (s, a) = self.build(inner, alphabet);
                self.add_edge(s, EPSILON, a);
                (s, a)
            }
            PathExpr::Repeat(inner, min, max) => {
                // Desugar: a{m,n} = a^m (a?)^(n-m);  a{m,} = a^m a*.
                let start = self.add_state();
                let mut accept = start;
                for _ in 0..*min {
                    let (s, a) = self.build(inner, alphabet);
                    self.add_edge(accept, EPSILON, s);
                    accept = a;
                }
                match max {
                    Some(max) => {
                        for _ in *min..*max {
                            let (s, a) = self.build(inner, alphabet);
                            self.add_edge(accept, EPSILON, s);
                            self.add_edge(s, EPSILON, a);
                            accept = a;
                        }
                    }
                    None => {
                        let (s, a) = self.build(inner, alphabet);
                        self.add_edge(accept, EPSILON, s);
                        self.add_edge(s, EPSILON, a);
                        self.add_edge(a, EPSILON, s);
                        accept = a;
                    }
                }
                (start, accept)
            }
        }
    }

    /// Epsilon-closure of `states` (sorted, deduplicated).
    fn closure(&self, mut states: Vec<usize>) -> Vec<usize> {
        let mut seen = vec![false; self.transitions.len()];
        let mut stack: Vec<usize> = states.clone();
        for &s in &states {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &(sym, to) in &self.transitions[s] {
                if sym == EPSILON && !seen[to] {
                    seen[to] = true;
                    states.push(to);
                    stack.push(to);
                }
            }
        }
        states.sort_unstable();
        states.dedup();
        states
    }
}

// ---------------------------------------------------------------------------
// DFA
// ---------------------------------------------------------------------------

/// A minimized deterministic automaton over edge labels.
///
/// The transition function is partial: a missing entry means the label string
/// can never reach an accepting state (implicit dead state). State `0` is the
/// start state after minimization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpqDfa {
    /// The alphabet: edge-type names, indexed by symbol id.
    labels: Vec<String>,
    /// `transitions[state][symbol]` → next state, or `None` (dead).
    transitions: Vec<Vec<Option<u32>>>,
    /// Per-state accepting flag.
    accepting: Vec<bool>,
}

impl RpqDfa {
    /// Compiles a pattern: Thompson NFA → subset construction → Moore
    /// minimization → reachable-state renumbering with start state `0`.
    pub fn compile(pattern: &PathExpr) -> RpqDfa {
        let labels = pattern.labels();
        let alphabet: BTreeMap<&str, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.as_str(), i as u32))
            .collect();

        let mut nfa = Nfa::new();
        let (start, accept) = nfa.build(pattern, &alphabet);

        // Subset construction.
        let nsym = labels.len();
        let mut dfa_of: BTreeMap<Vec<usize>, u32> = BTreeMap::new();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut transitions: Vec<Vec<Option<u32>>> = Vec::new();
        let start_set = nfa.closure(vec![start]);
        dfa_of.insert(start_set.clone(), 0);
        subsets.push(start_set);
        transitions.push(vec![None; nsym]);
        let mut frontier = vec![0u32];
        while let Some(d) = frontier.pop() {
            for sym in 0..nsym as u32 {
                let mut next: Vec<usize> = Vec::new();
                for &s in &subsets[d as usize] {
                    for &(edge_sym, to) in &nfa.transitions[s] {
                        if edge_sym == sym {
                            next.push(to);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next = nfa.closure(next);
                let id = match dfa_of.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as u32;
                        dfa_of.insert(next.clone(), id);
                        subsets.push(next);
                        transitions.push(vec![None; nsym]);
                        frontier.push(id);
                        id
                    }
                };
                transitions[d as usize][sym as usize] = Some(id);
            }
        }
        let accepting: Vec<bool> = subsets.iter().map(|set| set.contains(&accept)).collect();

        Self::minimize(labels, transitions, accepting)
    }

    /// Moore partition refinement on a partial DFA. `None` successors form
    /// their own implicit class, so the dead state never materializes.
    fn minimize(
        labels: Vec<String>,
        transitions: Vec<Vec<Option<u32>>>,
        accepting: Vec<bool>,
    ) -> RpqDfa {
        let n = transitions.len();
        let nsym = labels.len();
        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<u32> = accepting.iter().map(|&a| a as u32).collect();
        loop {
            // Signature of a state: (class, class of successor per symbol).
            let mut next_class: BTreeMap<(u32, Vec<Option<u32>>), u32> = BTreeMap::new();
            let mut assignment = vec![0u32; n];
            for s in 0..n {
                let sig: Vec<Option<u32>> = (0..nsym)
                    .map(|sym| transitions[s][sym].map(|t| class[t as usize]))
                    .collect();
                let next = next_class.len() as u32;
                let id = *next_class.entry((class[s], sig)).or_insert(next);
                assignment[s] = id;
            }
            if assignment == class {
                break;
            }
            class = assignment;
        }

        // Renumber reachable classes breadth-first from the start class so
        // the start state is 0 and numbering is deterministic.
        let mut renumber: Vec<Option<u32>> = vec![None; n];
        let mut order: Vec<u32> = Vec::new();
        let start_class = class[0];
        renumber[start_class as usize] = Some(0);
        order.push(start_class);
        let mut head = 0;
        while head < order.len() {
            let c = order[head];
            head += 1;
            // Representative: first state with this class.
            let rep = (0..n).find(|&s| class[s] == c).unwrap();
            for t in transitions[rep].iter().take(nsym).flatten() {
                let tc = class[*t as usize];
                if renumber[tc as usize].is_none() {
                    renumber[tc as usize] = Some(order.len() as u32);
                    order.push(tc);
                }
            }
        }

        let mut min_transitions = vec![vec![None; nsym]; order.len()];
        let mut min_accepting = vec![false; order.len()];
        for (new_id, &c) in order.iter().enumerate() {
            let rep = (0..n).find(|&s| class[s] == c).unwrap();
            min_accepting[new_id] = accepting[rep];
            for sym in 0..nsym {
                min_transitions[new_id][sym] =
                    transitions[rep][sym].map(|t| renumber[class[t as usize] as usize].unwrap());
            }
        }

        RpqDfa {
            labels,
            transitions: min_transitions,
            accepting: min_accepting,
        }
    }

    /// The start state (always `0`).
    pub fn start(&self) -> u32 {
        0
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The alphabet (edge-type names) in symbol order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Symbol id of a label, if it is part of the alphabet.
    pub fn symbol(&self, label: &str) -> Option<u32> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// One transition step; `None` means the dead state.
    pub fn step(&self, state: u32, symbol: u32) -> Option<u32> {
        self.transitions[state as usize][symbol as usize]
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// Symbols with at least one outgoing transition from the start state.
    /// The product-graph operator uses this to decide which edges can root a
    /// new spanning tree.
    pub fn start_symbols(&self) -> Vec<u32> {
        (0..self.labels.len() as u32)
            .filter(|&sym| self.step(0, sym).is_some())
            .collect()
    }

    /// Runs the DFA over a label string (test/diagnostic helper).
    pub fn accepts<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let mut state = self.start();
        for label in word {
            let Some(sym) = self.symbol(label) else {
                return false;
            };
            match self.step(state, sym) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.is_accepting(state)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses the RPQ text syntax:
///
/// ```text
/// RPQ <name> [WINDOW <duration>] PATH <pattern>
/// ```
///
/// where `<pattern>` is a regular expression over edge-type names:
/// juxtaposition concatenates, `|` alternates, postfix `*` `+` `?` and
/// `{m,n}` / `{m,}` repeat, and parentheses group. `#` starts a line
/// comment. The window defaults to one hour, mirroring the SJ-Tree DSL.
pub fn parse_rpq(text: &str) -> Result<RpqQuery, QueryError> {
    RpqParser {
        text: text.as_bytes(),
        pos: 0,
        line: 1,
    }
    .parse()
}

struct RpqParser<'a> {
    text: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> RpqParser<'a> {
    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() {
            match self.text[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.text.len() && self.text[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn eat_char(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        let bytes = keyword.as_bytes();
        let end = self.pos + bytes.len();
        if end > self.text.len() {
            return false;
        }
        if !self.text[self.pos..end].eq_ignore_ascii_case(bytes) {
            return false;
        }
        // Word boundary.
        if let Some(&next) = self.text.get(end) {
            if next.is_ascii_alphanumeric() || next == b'_' {
                return false;
            }
        }
        self.pos = end;
        true
    }

    fn parse_identifier(&mut self) -> Result<String, QueryError> {
        let start = self.pos;
        while self
            .peek()
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.text[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string())
    }

    fn parse_number(&mut self) -> Result<i64, QueryError> {
        let start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.text[start..self.pos])
            .expect("digit bytes are ASCII")
            .parse()
            .map_err(|_| self.error("number out of range"))
    }

    fn parse_duration(&mut self) -> Result<Duration, QueryError> {
        let value = self.parse_number()?;
        let unit_start = self.pos;
        while self
            .peek()
            .map(|c| c.is_ascii_alphabetic())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let unit = std::str::from_utf8(&self.text[unit_start..self.pos]).unwrap();
        match unit {
            "ms" => Ok(Duration::from_millis(value)),
            "s" | "" => Ok(Duration::from_secs(value)),
            "m" | "min" => Ok(Duration::from_mins(value)),
            "h" => Ok(Duration::from_hours(value)),
            other => Err(self.error(format!("unknown duration unit '{other}'"))),
        }
    }

    fn parse(mut self) -> Result<RpqQuery, QueryError> {
        self.skip_ws();
        if !self.eat_keyword("RPQ") {
            return Err(self.error("expected RPQ keyword"));
        }
        self.skip_ws();
        let name = self.parse_identifier()?;
        self.skip_ws();
        let window = if self.eat_keyword("WINDOW") {
            self.skip_ws();
            self.parse_duration()?
        } else {
            Duration::from_hours(1)
        };
        self.skip_ws();
        if !self.eat_keyword("PATH") {
            return Err(self.error("expected PATH keyword"));
        }
        let pattern = self.parse_alt()?;
        self.skip_ws();
        if self.pos != self.text.len() {
            return Err(self.error("unexpected trailing input after pattern"));
        }
        RpqQuery::new(name, window, pattern)
    }

    /// alt := concat ('|' concat)*
    fn parse_alt(&mut self) -> Result<PathExpr, QueryError> {
        let mut parts = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.eat_char(b'|') {
                parts.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            PathExpr::Alt(parts)
        })
    }

    /// concat := postfix+
    fn parse_concat(&mut self) -> Result<PathExpr, QueryError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'(' => {
                    parts.push(self.parse_postfix()?);
                }
                _ => break,
            }
        }
        match parts.len() {
            0 => Err(self.error("expected a label or '(' in path pattern")),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(PathExpr::Concat(parts)),
        }
    }

    /// postfix := atom ('*' | '+' | '?' | '{m,n}')*
    fn parse_postfix(&mut self) -> Result<PathExpr, QueryError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    expr = PathExpr::Star(Box::new(expr));
                }
                Some(b'+') => {
                    self.pos += 1;
                    expr = PathExpr::Plus(Box::new(expr));
                }
                Some(b'?') => {
                    self.pos += 1;
                    expr = PathExpr::Optional(Box::new(expr));
                }
                Some(b'{') => {
                    self.pos += 1;
                    self.skip_ws();
                    let min = self.parse_number()? as u32;
                    self.skip_ws();
                    let max = if self.eat_char(b',') {
                        self.skip_ws();
                        if self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                            Some(self.parse_number()? as u32)
                        } else {
                            None
                        }
                    } else {
                        Some(min)
                    };
                    self.skip_ws();
                    if !self.eat_char(b'}') {
                        return Err(self.error("expected '}' in repetition bound"));
                    }
                    if let Some(max) = max {
                        if max < min {
                            return Err(self
                                .error(format!("repetition bound {{{min},{max}}} has max < min")));
                        }
                        if max == 0 {
                            return Err(self.error("repetition bound {0,0} matches nothing"));
                        }
                    }
                    expr = PathExpr::Repeat(Box::new(expr), min, max);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// atom := label | '(' alt ')'
    fn parse_atom(&mut self) -> Result<PathExpr, QueryError> {
        self.skip_ws();
        if self.eat_char(b'(') {
            let inner = self.parse_alt()?;
            self.skip_ws();
            if !self.eat_char(b')') {
                return Err(self.error("expected ')'"));
            }
            Ok(inner)
        } else {
            Ok(PathExpr::Label(self.parse_identifier()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfa(text: &str) -> RpqDfa {
        parse_rpq(text).unwrap().compile()
    }

    #[test]
    fn parses_name_window_and_pattern() {
        let q = parse_rpq("RPQ chase WINDOW 30m PATH login (flow | dns)* exploit").unwrap();
        assert_eq!(q.name(), "chase");
        assert_eq!(q.window(), Duration::from_mins(30));
        assert_eq!(q.pattern().to_string(), "login (flow | dns)* exploit");
    }

    #[test]
    fn default_window_is_one_hour() {
        let q = parse_rpq("RPQ p PATH a b").unwrap();
        assert_eq!(q.window(), Duration::from_hours(1));
    }

    #[test]
    fn rejects_empty_matching_patterns() {
        assert!(matches!(
            parse_rpq("RPQ p PATH a*"),
            Err(QueryError::EmptyQuery)
        ));
        assert!(matches!(
            parse_rpq("RPQ p PATH a? | b?"),
            Err(QueryError::EmptyQuery)
        ));
        // a+ requires at least one edge, so it is fine.
        assert!(parse_rpq("RPQ p PATH a+").is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_rpq("QUERY p PATH a").is_err());
        assert!(parse_rpq("RPQ p PATH (a").is_err());
        assert!(parse_rpq("RPQ p PATH a{3,1}").is_err());
        assert!(parse_rpq("RPQ p PATH a ] b").is_err());
        assert!(parse_rpq("RPQ p WINDOW 5fortnights PATH a").is_err());
    }

    #[test]
    fn concatenation_and_alternation() {
        let d = dfa("RPQ p PATH a b | c");
        assert!(d.accepts(["a", "b"]));
        assert!(d.accepts(["c"]));
        assert!(!d.accepts(["a"]));
        assert!(!d.accepts(["a", "c"]));
        assert!(!d.accepts(["b"]));
    }

    #[test]
    fn star_plus_optional() {
        let d = dfa("RPQ p PATH a b* c? d+");
        assert!(d.accepts(["a", "d"]));
        assert!(d.accepts(["a", "b", "b", "c", "d", "d"]));
        assert!(d.accepts(["a", "c", "d"]));
        assert!(!d.accepts(["a"]));
        assert!(!d.accepts(["a", "c", "c", "d"]));
    }

    #[test]
    fn bounded_repetition() {
        let d = dfa("RPQ p PATH a{2,4}");
        assert!(!d.accepts(["a"]));
        assert!(d.accepts(["a", "a"]));
        assert!(d.accepts(["a", "a", "a", "a"]));
        assert!(!d.accepts(["a", "a", "a", "a", "a"]));

        let open = dfa("RPQ p PATH a{3,}");
        assert!(!open.accepts(["a", "a"]));
        assert!(open.accepts(["a", "a", "a"]));
        assert!(open.accepts(vec!["a"; 10]));

        let exact = dfa("RPQ p PATH a{3}");
        assert!(exact.accepts(["a", "a", "a"]));
        assert!(!exact.accepts(["a", "a"]));
        assert!(!exact.accepts(["a", "a", "a", "a"]));
    }

    #[test]
    fn unknown_labels_never_accept() {
        let d = dfa("RPQ p PATH a+");
        assert!(!d.accepts(["z"]));
        assert!(!d.accepts(["a", "z"]));
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // (a|b)(a|b) and the expanded alternation compile to the same DFA
        // shape: 3 live states.
        let d = dfa("RPQ p PATH (a | b)(a | b)");
        assert_eq!(d.state_count(), 3);
        let e = dfa("RPQ p PATH a a | a b | b a | b b");
        assert_eq!(e.state_count(), 3);
    }

    #[test]
    fn minimization_handles_star_loops() {
        let d = dfa("RPQ p PATH a (b a)*");
        // The start state and the after-b state both accept exactly
        // `a (b a)*`, so minimization merges them: 2 live states.
        assert_eq!(d.state_count(), 2);
        assert!(d.accepts(["a"]));
        assert!(d.accepts(["a", "b", "a", "b", "a"]));
        assert!(!d.accepts(["a", "b"]));
    }

    #[test]
    fn start_symbols_reflect_rootable_labels() {
        let d = dfa("RPQ p PATH (login | dns) flow*");
        let starts: Vec<&str> = d
            .start_symbols()
            .into_iter()
            .map(|s| d.labels()[s as usize].as_str())
            .collect();
        assert_eq!(starts, vec!["login", "dns"]);
    }

    #[test]
    fn dfa_round_trips_through_serde() {
        let q = parse_rpq("RPQ p WINDOW 10s PATH a (b | c)+ d?").unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: RpqQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
        assert_eq!(q.compile(), back.compile());
    }

    #[test]
    fn display_round_trips() {
        let q = parse_rpq("RPQ p PATH login (flow | dns)* exploit{1,2}").unwrap();
        let rendered = format!("RPQ p PATH {}", q.pattern());
        let reparsed = parse_rpq(&rendered).unwrap();
        assert_eq!(q.compile(), reparsed.compile());
    }
}
