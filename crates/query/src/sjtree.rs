//! The Subgraph Join Tree (SJ-Tree) shape.
//!
//! Paper §3.2 defines the SJ-Tree as a binary tree whose nodes correspond to
//! subgraphs of the query graph with four properties:
//!
//! 1. the root's subgraph is the whole query graph;
//! 2. an internal node's subgraph is the join (union) of its children's;
//! 3. every node maintains a collection of matching data subgraphs;
//! 4. every internal node maintains a CUT-SUBGRAPH — the intersection of its
//!    children's query subgraphs — which is the join condition.
//!
//! This module defines the *shape* only (which query edges live at which node,
//! parents/children/cuts, leaf join order). The per-node match collections of
//! property 3 are runtime state and live in `streamworks-core`.

use crate::decompose::Primitive;
use crate::error::QueryError;
use crate::query_graph::{QueryEdgeId, QueryGraph, QueryVertexId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Index of a node within an [`SjTreeShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SjNodeId(pub usize);

/// One node of the SJ-Tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SjNode {
    /// Dense id of the node.
    pub id: SjNodeId,
    /// Query edges covered by this node's subgraph (sorted).
    pub edges: Vec<QueryEdgeId>,
    /// Query vertices touched by `edges` (sorted).
    pub vertices: Vec<QueryVertexId>,
    /// Children (left, right) for internal nodes; `None` for leaves.
    pub children: Option<(SjNodeId, SjNodeId)>,
    /// Parent node; `None` for the root.
    pub parent: Option<SjNodeId>,
    /// For internal nodes: the query vertices shared by both children — the
    /// CUT-SUBGRAPH of paper property 4 (restricted to vertices, which is the
    /// join key; shared edges would be disallowed by edge-disjoint primitives).
    pub cut_vertices: Vec<QueryVertexId>,
}

impl SjNode {
    /// True if the node is a leaf (a search primitive).
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The static shape of an SJ-Tree for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SjTreeShape {
    nodes: Vec<SjNode>,
    root: SjNodeId,
    /// Leaves in join order (leftmost = matched first).
    leaves: Vec<SjNodeId>,
}

impl SjTreeShape {
    /// Builds a *left-deep* SJ-Tree from an ordered list of primitives:
    /// the first two primitives join at the lowest internal node, each further
    /// primitive joins the accumulated subtree one level higher. A single
    /// primitive yields a tree with just one (root, leaf) node.
    pub fn left_deep(query: &QueryGraph, primitives: &[Primitive]) -> Result<Self, QueryError> {
        Self::build(query, primitives, false)
    }

    /// Builds a *balanced* SJ-Tree: primitives become leaves of a (nearly)
    /// balanced binary tree, pairing adjacent primitives level by level.
    pub fn balanced(query: &QueryGraph, primitives: &[Primitive]) -> Result<Self, QueryError> {
        Self::build(query, primitives, true)
    }

    fn build(
        query: &QueryGraph,
        primitives: &[Primitive],
        balanced: bool,
    ) -> Result<Self, QueryError> {
        if primitives.is_empty() {
            return Err(QueryError::InvalidDecomposition(
                "cannot build an SJ-Tree from zero primitives".into(),
            ));
        }
        crate::decompose::validate_decomposition(query, primitives)?;

        let mut nodes: Vec<SjNode> = Vec::new();
        let mut leaves = Vec::new();
        let make_leaf = |p: &Primitive, nodes: &mut Vec<SjNode>| -> SjNodeId {
            let id = SjNodeId(nodes.len());
            nodes.push(SjNode {
                id,
                edges: p.edges.clone(),
                vertices: query.vertices_of_edges(&p.edges),
                children: None,
                parent: None,
                cut_vertices: Vec::new(),
            });
            id
        };

        // Create all leaves first, in join order.
        let leaf_ids: Vec<SjNodeId> = primitives
            .iter()
            .map(|p| {
                let id = make_leaf(p, &mut nodes);
                leaves.push(id);
                id
            })
            .collect();

        let join = |nodes: &mut Vec<SjNode>, left: SjNodeId, right: SjNodeId| -> SjNodeId {
            let id = SjNodeId(nodes.len());
            let mut edges: Vec<QueryEdgeId> = nodes[left.0]
                .edges
                .iter()
                .chain(nodes[right.0].edges.iter())
                .copied()
                .collect();
            edges.sort_unstable();
            edges.dedup();
            let vertices = query.vertices_of_edges(&edges);
            let left_set: BTreeSet<_> = nodes[left.0].vertices.iter().copied().collect();
            let cut_vertices: Vec<QueryVertexId> = nodes[right.0]
                .vertices
                .iter()
                .copied()
                .filter(|v| left_set.contains(v))
                .collect();
            nodes.push(SjNode {
                id,
                edges,
                vertices,
                children: Some((left, right)),
                parent: None,
                cut_vertices,
            });
            nodes[left.0].parent = Some(id);
            nodes[right.0].parent = Some(id);
            id
        };

        let root = if balanced {
            // Pair up level by level.
            let mut level = leaf_ids.clone();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len() / 2 + 1);
                let mut i = 0;
                while i + 1 < level.len() {
                    next.push(join(&mut nodes, level[i], level[i + 1]));
                    i += 2;
                }
                if i < level.len() {
                    next.push(level[i]);
                }
                level = next;
            }
            level[0]
        } else {
            // Left-deep chain.
            let mut acc = leaf_ids[0];
            for &leaf in &leaf_ids[1..] {
                acc = join(&mut nodes, acc, leaf);
            }
            acc
        };

        let shape = SjTreeShape {
            nodes,
            root,
            leaves,
        };
        shape.validate(query)?;
        Ok(shape)
    }

    /// The root node id.
    pub fn root(&self) -> SjNodeId {
        self.root
    }

    /// Node lookup.
    pub fn node(&self, id: SjNodeId) -> &SjNode {
        &self.nodes[id.0]
    }

    /// All nodes in creation order (leaves first).
    pub fn nodes(&self) -> impl Iterator<Item = &SjNode> {
        self.nodes.iter()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaves in join order.
    pub fn leaves(&self) -> &[SjNodeId] {
        &self.leaves
    }

    /// The query edges of a node's search primitive, as a borrowed slice.
    ///
    /// Matchers iterate this per incoming data edge; exposing the slice keeps
    /// the hot path free of per-event clones of the primitive's edge list.
    #[inline]
    pub fn primitive_edges(&self, id: SjNodeId) -> &[QueryEdgeId] {
        &self.node(id).edges
    }

    /// The sibling of a node (the other child of its parent), if any.
    pub fn sibling(&self, id: SjNodeId) -> Option<SjNodeId> {
        let parent = self.node(id).parent?;
        let (l, r) = self.node(parent).children?;
        Some(if l == id { r } else { l })
    }

    /// The query vertices on which matches at `id` must agree with matches at
    /// its sibling to be joined — i.e. the parent's cut. Empty for the root.
    pub fn join_key(&self, id: SjNodeId) -> &[QueryVertexId] {
        match self.node(id).parent {
            Some(p) => &self.node(p).cut_vertices,
            None => &[],
        }
    }

    /// Height of the tree (1 for a single node).
    pub fn height(&self) -> usize {
        fn depth(shape: &SjTreeShape, id: SjNodeId) -> usize {
            match shape.node(id).children {
                None => 1,
                Some((l, r)) => 1 + depth(shape, l).max(depth(shape, r)),
            }
        }
        depth(self, self.root)
    }

    /// Checks SJ-Tree properties 1, 2 and 4 against the query graph
    /// (property 3 concerns runtime match collections).
    pub fn validate(&self, query: &QueryGraph) -> Result<(), QueryError> {
        // Property 1: root covers the whole query graph.
        let root = self.node(self.root);
        let all_edges: Vec<QueryEdgeId> = query.edge_ids().collect();
        if root.edges != all_edges {
            return Err(QueryError::InvalidDecomposition(
                "root subgraph is not the full query graph".into(),
            ));
        }
        for node in &self.nodes {
            if let Some((l, r)) = node.children {
                // Property 2: node = union of children, children edge-disjoint.
                let left = &self.nodes[l.0];
                let right = &self.nodes[r.0];
                let mut union: Vec<QueryEdgeId> = left
                    .edges
                    .iter()
                    .chain(right.edges.iter())
                    .copied()
                    .collect();
                union.sort_unstable();
                let mut dedup = union.clone();
                dedup.dedup();
                if dedup.len() != union.len() {
                    return Err(QueryError::InvalidDecomposition(format!(
                        "children of node {:?} overlap in edges",
                        node.id
                    )));
                }
                if dedup != node.edges {
                    return Err(QueryError::InvalidDecomposition(format!(
                        "node {:?} is not the join of its children",
                        node.id
                    )));
                }
                // Property 4: cut = intersection of children's vertices.
                let lset: BTreeSet<_> = left.vertices.iter().copied().collect();
                let expected: Vec<QueryVertexId> = right
                    .vertices
                    .iter()
                    .copied()
                    .filter(|v| lset.contains(v))
                    .collect();
                if expected != node.cut_vertices {
                    return Err(QueryError::InvalidDecomposition(format!(
                        "node {:?} cut-subgraph mismatch",
                        node.id
                    )));
                }
                // Parent pointers are consistent.
                if left.parent != Some(node.id) || right.parent != Some(node.id) {
                    return Err(QueryError::InvalidDecomposition(
                        "inconsistent parent pointers".into(),
                    ));
                }
            } else if !self.leaves.contains(&node.id) {
                return Err(QueryError::InvalidDecomposition(format!(
                    "node {:?} has no children but is not registered as a leaf",
                    node.id
                )));
            }
        }
        Ok(())
    }

    /// Renders the tree as indented ASCII, labelling each node with the query
    /// edges it covers and its cut vertices (used by `plan explain` output and
    /// the query_plans example reproducing Fig. 2).
    pub fn render(&self, query: &QueryGraph) -> String {
        fn rec(
            shape: &SjTreeShape,
            query: &QueryGraph,
            id: SjNodeId,
            depth: usize,
            out: &mut String,
        ) {
            let node = shape.node(id);
            let indent = "  ".repeat(depth);
            let edges: Vec<String> = node.edges.iter().map(|&e| query.describe_edge(e)).collect();
            let cut: Vec<&str> = node
                .cut_vertices
                .iter()
                .map(|&v| query.vertex(v).name.as_str())
                .collect();
            let kind = if node.is_leaf() { "leaf" } else { "join" };
            out.push_str(&format!(
                "{indent}[{kind} n{}] {{{}}}{}\n",
                node.id.0,
                edges.join(", "),
                if cut.is_empty() {
                    String::new()
                } else {
                    format!(" cut on ({})", cut.join(", "))
                }
            ));
            if let Some((l, r)) = node.children {
                rec(shape, query, l, depth + 1, out);
                rec(shape, query, r, depth + 1, out);
            }
        }
        let mut out = String::new();
        rec(self, query, self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use crate::decompose::{DecompositionStrategy, ManualDecomposition, SelectivityOrdered};
    use crate::selectivity::SelectivityEstimator;
    use streamworks_graph::Duration;

    fn fig2_query() -> QueryGraph {
        QueryGraphBuilder::new("news_triple")
            .window(Duration::from_hours(6))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("a3", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a3", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .edge("a3", "located", "l")
            .build()
            .unwrap()
    }

    fn fig2_primitives() -> Vec<Primitive> {
        // The decomposition shown in Fig. 2: one (article, keyword, location)
        // wedge per article.
        vec![
            Primitive::new(vec![QueryEdgeId(0), QueryEdgeId(3)]),
            Primitive::new(vec![QueryEdgeId(1), QueryEdgeId(4)]),
            Primitive::new(vec![QueryEdgeId(2), QueryEdgeId(5)]),
        ]
    }

    #[test]
    fn left_deep_tree_satisfies_paper_properties() {
        let q = fig2_query();
        let shape = SjTreeShape::left_deep(&q, &fig2_primitives()).unwrap();
        shape.validate(&q).unwrap();
        assert_eq!(shape.leaves().len(), 3);
        assert_eq!(shape.node_count(), 5);
        assert_eq!(shape.height(), 3);
        // Root covers all 6 edges.
        assert_eq!(shape.node(shape.root()).edges.len(), 6);
        // The lowest join's cut is {k, l}: the shared keyword and location.
        let first_join = shape.node(shape.leaves()[1]).parent.unwrap();
        let cut_names: Vec<&str> = shape
            .node(first_join)
            .cut_vertices
            .iter()
            .map(|&v| q.vertex(v).name.as_str())
            .collect();
        assert_eq!(cut_names, vec!["k", "l"]);
    }

    #[test]
    fn balanced_tree_has_lower_height_for_many_primitives() {
        let q = QueryGraphBuilder::new("path")
            .edge("v0", "t", "v1")
            .edge("v1", "t", "v2")
            .edge("v2", "t", "v3")
            .edge("v3", "t", "v4")
            .edge("v4", "t", "v5")
            .edge("v5", "t", "v6")
            .edge("v6", "t", "v7")
            .edge("v7", "t", "v8")
            .build()
            .unwrap();
        let prims: Vec<Primitive> = q.edge_ids().map(|e| Primitive::new(vec![e])).collect();
        let deep = SjTreeShape::left_deep(&q, &prims).unwrap();
        let balanced = SjTreeShape::balanced(&q, &prims).unwrap();
        deep.validate(&q).unwrap();
        balanced.validate(&q).unwrap();
        assert_eq!(deep.height(), 8 + 1 - 1);
        assert!(balanced.height() < deep.height());
        assert_eq!(balanced.node_count(), deep.node_count());
    }

    #[test]
    fn sibling_and_join_key_are_consistent() {
        let q = fig2_query();
        let shape = SjTreeShape::left_deep(&q, &fig2_primitives()).unwrap();
        let l0 = shape.leaves()[0];
        let l1 = shape.leaves()[1];
        assert_eq!(shape.sibling(l0), Some(l1));
        assert_eq!(shape.sibling(l1), Some(l0));
        assert_eq!(shape.join_key(l0), shape.join_key(l1));
        assert!(!shape.join_key(l0).is_empty());
        assert!(shape.join_key(shape.root()).is_empty());
        assert_eq!(shape.sibling(shape.root()), None);
    }

    #[test]
    fn single_primitive_tree_is_root_leaf() {
        let q = QueryGraphBuilder::new("one")
            .edge("a", "t", "b")
            .build()
            .unwrap();
        let prims = vec![Primitive::new(vec![QueryEdgeId(0)])];
        let shape = SjTreeShape::left_deep(&q, &prims).unwrap();
        assert_eq!(shape.node_count(), 1);
        assert_eq!(shape.root(), shape.leaves()[0]);
        assert_eq!(shape.height(), 1);
        shape.validate(&q).unwrap();
    }

    #[test]
    fn strategy_output_builds_valid_trees() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        for strategy in [
            Box::new(SelectivityOrdered::default()) as Box<dyn DecompositionStrategy>,
            Box::new(crate::decompose::LeftDeepEdgeChain) as Box<dyn DecompositionStrategy>,
            Box::new(crate::decompose::BalancedPairs) as Box<dyn DecompositionStrategy>,
        ] {
            let prims = strategy.decompose(&q, &est).unwrap();
            let shape = SjTreeShape::left_deep(&q, &prims).unwrap();
            shape.validate(&q).unwrap();
            assert_eq!(
                shape.node(shape.root()).edges.len(),
                q.edge_count(),
                "strategy {}",
                strategy.name()
            );
        }
    }

    #[test]
    fn manual_fig2_decomposition_renders() {
        let q = fig2_query();
        let est = SelectivityEstimator::without_summary();
        let prims = ManualDecomposition::new(vec![
            vec![QueryEdgeId(0), QueryEdgeId(3)],
            vec![QueryEdgeId(1), QueryEdgeId(4)],
            vec![QueryEdgeId(2), QueryEdgeId(5)],
        ])
        .decompose(&q, &est)
        .unwrap();
        let shape = SjTreeShape::left_deep(&q, &prims).unwrap();
        let rendered = shape.render(&q);
        assert!(rendered.contains("leaf"));
        assert!(rendered.contains("join"));
        assert!(rendered.contains("cut on (k, l)"));
        assert!(rendered.contains("(a1:Article)-[mentions]->(k:Keyword)"));
    }

    #[test]
    fn empty_primitive_list_is_rejected() {
        let q = fig2_query();
        assert!(SjTreeShape::left_deep(&q, &[]).is_err());
    }
}
