//! Selectivity estimation for query subgraphs.
//!
//! Paper §4.1: "The query decomposition is performed by utilizing statistics
//! and summaries about the data graph such as degree distribution, vertex and
//! edge type distribution and multi-relational triad distribution." This
//! module turns a [`GraphSummary`] into cardinality estimates for single query
//! edges and two-edge primitives, which the decomposition strategies use to
//! "push the most selective subgraph at the lowest level".
//!
//! When no summary is available the estimator falls back to a purely
//! structural heuristic (more type/predicate constraints ⇒ more selective),
//! so planning still produces a deterministic, reasonable SJ-Tree.

use crate::query_graph::{QueryEdgeId, QueryGraph};
use streamworks_graph::{Direction, DynamicGraph, TypeId};
use streamworks_summarize::{GraphSummary, Orientation, WedgeKey};

/// Resolves type *names* (as used in query graphs) to the dense [`TypeId`]s
/// a particular data graph uses internally.
pub trait TypeResolver {
    /// Resolve a vertex type label.
    fn resolve_vertex_type(&self, name: &str) -> Option<TypeId>;
    /// Resolve an edge type label.
    fn resolve_edge_type(&self, name: &str) -> Option<TypeId>;
}

impl TypeResolver for DynamicGraph {
    fn resolve_vertex_type(&self, name: &str) -> Option<TypeId> {
        self.vertex_type_id(name)
    }
    fn resolve_edge_type(&self, name: &str) -> Option<TypeId> {
        self.edge_type_id(name)
    }
}

/// A resolver that knows no types; forces the structural fallback estimates.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullResolver;

impl TypeResolver for NullResolver {
    fn resolve_vertex_type(&self, _name: &str) -> Option<TypeId> {
        None
    }
    fn resolve_edge_type(&self, _name: &str) -> Option<TypeId> {
        None
    }
}

/// Cardinality estimator combining a graph summary with a type resolver.
pub struct SelectivityEstimator<'a> {
    summary: Option<&'a GraphSummary>,
    resolver: &'a dyn TypeResolver,
}

impl<'a> SelectivityEstimator<'a> {
    /// Estimator backed by a summary (statistics-driven planning).
    pub fn with_summary(summary: &'a GraphSummary, resolver: &'a dyn TypeResolver) -> Self {
        SelectivityEstimator {
            summary: Some(summary),
            resolver,
        }
    }

    /// Estimator with no statistics (structural fallback only).
    pub fn without_summary() -> SelectivityEstimator<'static> {
        SelectivityEstimator {
            summary: None,
            resolver: &NullResolver,
        }
    }

    /// True if real statistics back this estimator.
    pub fn has_summary(&self) -> bool {
        self.summary.is_some()
    }

    fn predicate_factor(query: &QueryGraph, edge: QueryEdgeId) -> f64 {
        let e = query.edge(edge);
        let mut factor = 1.0;
        for p in &e.predicates {
            factor *= p.selectivity_factor();
        }
        for v in [e.src, e.dst] {
            for p in &query.vertex(v).predicates {
                factor *= p.selectivity_factor();
            }
        }
        factor.max(1e-6)
    }

    /// Structural fallback: a fixed base divided by the number of constraints.
    fn structural_cardinality(query: &QueryGraph, edge: QueryEdgeId) -> f64 {
        let e = query.edge(edge);
        let mut constraints = 0u32;
        if e.etype.is_some() {
            constraints += 1;
        }
        if query.vertex(e.src).vtype.is_some() {
            constraints += 1;
        }
        if query.vertex(e.dst).vtype.is_some() {
            constraints += 1;
        }
        let base = 10_000.0 / (1.0 + constraints as f64);
        base * Self::predicate_factor(query, edge)
    }

    /// Estimated number of data edges that can match query edge `edge`.
    pub fn edge_cardinality(&self, query: &QueryGraph, edge: QueryEdgeId) -> f64 {
        let Some(summary) = self.summary else {
            return Self::structural_cardinality(query, edge);
        };
        let e = query.edge(edge);
        let src_t = query
            .vertex(e.src)
            .vtype
            .as_deref()
            .and_then(|n| self.resolver.resolve_vertex_type(n));
        let dst_t = query
            .vertex(e.dst)
            .vtype
            .as_deref()
            .and_then(|n| self.resolver.resolve_vertex_type(n));
        let Some(etype) = e
            .etype
            .as_deref()
            .and_then(|n| self.resolver.resolve_edge_type(n))
        else {
            // Untyped edge (or a type the data graph has never seen): use the
            // total live edge population as the estimate.
            let total = summary.types().total_edges().max(1) as f64;
            return total * Self::predicate_factor(query, edge);
        };
        let base = summary.estimated_edge_matches(src_t, etype, dst_t);
        base * Self::predicate_factor(query, edge)
    }

    /// Estimated number of data subgraphs matching a small connected primitive
    /// (one or two query edges).
    pub fn primitive_cardinality(&self, query: &QueryGraph, edges: &[QueryEdgeId]) -> f64 {
        match edges {
            [] => f64::INFINITY,
            [single] => self.edge_cardinality(query, *single),
            [a, b] => self.wedge_cardinality(query, *a, *b),
            many => {
                // Larger primitives: product of edge estimates damped by the
                // number of shared vertices (a crude but monotone combination).
                let mut product = 1.0;
                for &e in many {
                    product *= self.edge_cardinality(query, e).max(0.01);
                }
                product.powf(1.0 / many.len() as f64)
            }
        }
    }

    /// Estimate for a two-edge primitive, preferring triad statistics.
    fn wedge_cardinality(&self, query: &QueryGraph, a: QueryEdgeId, b: QueryEdgeId) -> f64 {
        let ea = query.edge(a);
        let eb = query.edge(b);
        // Find the shared (centre) vertex, if any.
        let shared = ea
            .endpoints()
            .into_iter()
            .find(|v| eb.endpoints().contains(v));
        let card_a = self.edge_cardinality(query, a);
        let card_b = self.edge_cardinality(query, b);
        let Some(center) = shared else {
            // Disconnected pair: cartesian product.
            return card_a * card_b;
        };
        if let (Some(summary), Some(center_t)) = (
            self.summary,
            query
                .vertex(center)
                .vtype
                .as_deref()
                .and_then(|n| self.resolver.resolve_vertex_type(n)),
        ) {
            let resolve_leg = |e: &crate::query_graph::QueryEdge| -> Option<(TypeId, Orientation)> {
                let et = e
                    .etype
                    .as_deref()
                    .and_then(|n| self.resolver.resolve_edge_type(n))?;
                let orientation = if e.src == center {
                    Orientation::Outgoing
                } else {
                    Orientation::Incoming
                };
                Some((et, orientation))
            };
            if let (Some(leg_a), Some(leg_b)) = (resolve_leg(ea), resolve_leg(eb)) {
                let key = WedgeKey::new(center_t, leg_a, leg_b);
                let wedges = summary.estimated_wedges(&key);
                if wedges >= 0.0 {
                    let factor =
                        Self::predicate_factor(query, a) * Self::predicate_factor(query, b);
                    return (wedges * factor).max(0.01);
                }
            }
            // Triads unavailable: independence fallback via fan-out.
            let _ = summary;
        }
        // Independence fallback: the cheaper edge count times the average
        // fan-out of extending across the centre vertex.
        let fanout = self.center_fanout(query, center, if card_a <= card_b { b } else { a });
        (card_a.min(card_b) * fanout).max(0.01)
    }

    fn center_fanout(
        &self,
        query: &QueryGraph,
        center: crate::query_graph::QueryVertexId,
        extension_edge: QueryEdgeId,
    ) -> f64 {
        let Some(summary) = self.summary else {
            return 2.0;
        };
        let e = query.edge(extension_edge);
        let Some(center_t) = query
            .vertex(center)
            .vtype
            .as_deref()
            .and_then(|n| self.resolver.resolve_vertex_type(n))
        else {
            return 2.0;
        };
        let Some(etype) = e
            .etype
            .as_deref()
            .and_then(|n| self.resolver.resolve_edge_type(n))
        else {
            return 2.0;
        };
        let dir = if e.src == center {
            Direction::Out
        } else {
            Direction::In
        };
        summary.estimated_fanout(center_t, dir, etype)
    }

    /// Per-edge estimates for every edge of the query (used in plan explain output).
    pub fn all_edge_estimates(&self, query: &QueryGraph) -> Vec<(QueryEdgeId, f64)> {
        query
            .edge_ids()
            .map(|e| (e, self.edge_cardinality(query, e)))
            .collect()
    }

    /// Estimated number of data vertices that can bind a query vertex: the
    /// live count of its vertex type (or the total vertex population when the
    /// variable is untyped), scaled by its attribute-predicate selectivity.
    pub fn vertex_domain(
        &self,
        query: &QueryGraph,
        vertex: crate::query_graph::QueryVertexId,
    ) -> f64 {
        let qv = query.vertex(vertex);
        let mut factor = 1.0;
        for p in &qv.predicates {
            factor *= p.selectivity_factor();
        }
        let base = match self.summary {
            Some(summary) => {
                let total = summary.types().total_vertices().max(1) as f64;
                match qv
                    .vtype
                    .as_deref()
                    .and_then(|n| self.resolver.resolve_vertex_type(n))
                {
                    Some(t) => {
                        let count = summary.types().vertex_count(t) as f64;
                        if count > 0.0 {
                            count
                        } else {
                            total
                        }
                    }
                    None => total,
                }
            }
            // Structural fallback: typed variables are assumed to bind a
            // modest fraction of an (unknown) vertex population.
            None => {
                if qv.vtype.is_some() {
                    1_000.0
                } else {
                    10_000.0
                }
            }
        };
        (base * factor).max(1.0)
    }

    /// Estimated number of embeddings of the connected query subgraph induced
    /// by `edges` — the classic chain estimator: start from the most selective
    /// edge and expand one adjacent edge at a time, multiplying by a fan-out
    /// factor (one free endpoint), a closure probability (both endpoints
    /// already bound) or the full edge cardinality (cartesian extension).
    ///
    /// This is the building block of the plan cost model (see [`crate::estimate_shape_cost`]):
    /// the estimate for an SJ-Tree node's subgraph approximates the number of
    /// partial matches the runtime will store at that node.
    pub fn subgraph_cardinality(&self, query: &QueryGraph, edges: &[QueryEdgeId]) -> f64 {
        if edges.is_empty() {
            return f64::INFINITY;
        }
        let mut remaining: Vec<QueryEdgeId> = edges.to_vec();
        remaining.sort_unstable();
        remaining.dedup();

        // Seed with the most selective edge.
        let seed_pos = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                self.edge_cardinality(query, a)
                    .partial_cmp(&self.edge_cardinality(query, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let seed = remaining.swap_remove(seed_pos);
        let mut card = self.edge_cardinality(query, seed).max(0.01);
        let mut bound: std::collections::BTreeSet<_> =
            query.edge(seed).endpoints().into_iter().collect();

        while !remaining.is_empty() {
            // Prefer an edge touching an already-bound vertex; otherwise take
            // the most selective remaining edge as a cartesian extension.
            let next_pos = remaining
                .iter()
                .enumerate()
                .filter(|(_, &e)| query.edge(e).endpoints().iter().any(|v| bound.contains(v)))
                .min_by(|(_, &a), (_, &b)| {
                    self.edge_cardinality(query, a)
                        .partial_cmp(&self.edge_cardinality(query, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let e = remaining.swap_remove(next_pos);
            let qe = query.edge(e);
            let ecard = self.edge_cardinality(query, e).max(0.01);
            let [u, w] = qe.endpoints();
            let u_bound = bound.contains(&u);
            let w_bound = bound.contains(&w);
            let factor = match (u_bound, w_bound) {
                // Closure edge: probability that a specific (u, w) pair is
                // connected by an edge of this kind.
                (true, true) => {
                    let pairs = self.vertex_domain(query, u) * self.vertex_domain(query, w);
                    (ecard / pairs.max(1.0)).min(1.0)
                }
                // Expansion across one bound endpoint: average fan-out.
                (true, false) => ecard / self.vertex_domain(query, u).max(1.0),
                (false, true) => ecard / self.vertex_domain(query, w).max(1.0),
                // Disconnected extension: cartesian product.
                (false, false) => ecard,
            };
            card = (card * factor.max(1e-9)).max(0.01);
            bound.insert(u);
            bound.insert(w);
        }
        card
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryGraphBuilder;
    use crate::predicate::Predicate;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_summarize::SummaryConfig;

    /// A small news-like data graph: many mention edges, few located edges.
    fn news_graph() -> (DynamicGraph, GraphSummary) {
        let mut g = DynamicGraph::unbounded();
        let mut s = GraphSummary::with_config(SummaryConfig::full());
        let push = |g: &mut DynamicGraph,
                    s: &mut GraphSummary,
                    src: &str,
                    st: &str,
                    dst: &str,
                    dt: &str,
                    et: &str,
                    t: i64| {
            let ev = EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t));
            let r = g.ingest(&ev);
            if r.src_created {
                s.observe_vertex(g.vertex(r.src).unwrap().vtype);
            }
            if r.dst_created {
                s.observe_vertex(g.vertex(r.dst).unwrap().vtype);
            }
            let e = g.edge(r.edge).unwrap().clone();
            s.observe_insertion(g, &e);
        };
        let mut t = 0;
        for a in 0..20 {
            for k in 0..5 {
                push(
                    &mut g,
                    &mut s,
                    &format!("a{a}"),
                    "Article",
                    &format!("k{k}"),
                    "Keyword",
                    "mentions",
                    t,
                );
                t += 1;
            }
        }
        for a in 0..4 {
            push(
                &mut g,
                &mut s,
                &format!("a{a}"),
                "Article",
                "paris",
                "Location",
                "located",
                t,
            );
            t += 1;
        }
        (g, s)
    }

    fn news_query() -> QueryGraph {
        QueryGraphBuilder::new("q")
            .vertex("a1", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a1", "located", "l")
            .build()
            .unwrap()
    }

    #[test]
    fn statistics_rank_rare_edges_as_more_selective() {
        let (g, s) = news_graph();
        let q = news_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let mentions = est.edge_cardinality(&q, QueryEdgeId(0));
        let located = est.edge_cardinality(&q, QueryEdgeId(1));
        assert!(mentions > located, "mentions={mentions} located={located}");
        assert_eq!(mentions, 100.0);
        assert_eq!(located, 4.0);
    }

    #[test]
    fn predicates_reduce_estimates() {
        let (g, s) = news_graph();
        let mut q = news_query();
        let k = q.vertex_by_name("k").unwrap().id;
        let _ = k;
        q.add_vertex("k", None, vec![Predicate::eq("label", "politics")])
            .unwrap();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let with_pred = est.edge_cardinality(&q, QueryEdgeId(0));
        assert!(with_pred < 100.0);
    }

    #[test]
    fn wedge_estimate_uses_triads_when_available() {
        let (g, s) = news_graph();
        let q = news_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let wedge = est.primitive_cardinality(&q, &[QueryEdgeId(0), QueryEdgeId(1)]);
        // Articles with both a mention and a location: only 4 articles have a
        // location and each has 5 mentions => 20 wedges.
        assert!(wedge > 0.0);
        assert!(wedge <= 30.0, "wedge estimate too large: {wedge}");
    }

    #[test]
    fn fallback_without_summary_prefers_more_constrained_edges() {
        let q = QueryGraphBuilder::new("q")
            .vertex("a", "Article")
            .any_vertex("x")
            .edge("a", "mentions", "k")
            .any_edge("x", "y")
            .build()
            .unwrap();
        let est = SelectivityEstimator::without_summary();
        let typed = est.edge_cardinality(&q, QueryEdgeId(0));
        let untyped = est.edge_cardinality(&q, QueryEdgeId(1));
        assert!(typed < untyped);
        assert!(!est.has_summary());
    }

    #[test]
    fn unknown_type_names_fall_back_to_total_edges() {
        let (g, s) = news_graph();
        let q = QueryGraphBuilder::new("q")
            .vertex("x", "Malware")
            .vertex("y", "Malware")
            .edge("x", "infects", "y")
            .build()
            .unwrap();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let card = est.edge_cardinality(&q, QueryEdgeId(0));
        // The type was never observed, so the estimator uses the live edge count.
        assert_eq!(card, s.types().total_edges() as f64);
        let _ = g;
    }

    #[test]
    fn disconnected_primitive_is_cartesian() {
        let (g, s) = news_graph();
        let q = QueryGraphBuilder::new("q")
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k1", "Keyword")
            .vertex("k2", "Keyword")
            .edge("a1", "mentions", "k1")
            .edge("a2", "mentions", "k2")
            .build()
            .unwrap();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let pair = est.primitive_cardinality(&q, &[QueryEdgeId(0), QueryEdgeId(1)]);
        assert_eq!(pair, 100.0 * 100.0);
    }

    #[test]
    fn empty_primitive_is_infinite() {
        let est = SelectivityEstimator::without_summary();
        let q = news_query();
        assert!(est.primitive_cardinality(&q, &[]).is_infinite());
    }

    #[test]
    fn vertex_domain_reflects_type_population() {
        let (g, s) = news_graph();
        let q = news_query();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let article = q.vertex_by_name("a1").unwrap().id;
        let location = q.vertex_by_name("l").unwrap().id;
        let articles = est.vertex_domain(&q, article);
        let locations = est.vertex_domain(&q, location);
        // 20 articles vs. a single location in the synthetic data graph.
        assert!(
            articles > locations,
            "articles={articles} locations={locations}"
        );
        assert!(locations >= 1.0);
    }

    #[test]
    fn vertex_domain_fallback_is_finite_without_summary() {
        let q = news_query();
        let est = SelectivityEstimator::without_summary();
        let a = q.vertex_by_name("a1").unwrap().id;
        let d = est.vertex_domain(&q, a);
        assert!(d.is_finite() && d >= 1.0);
    }

    #[test]
    fn subgraph_cardinality_shrinks_with_more_constraints() {
        let (g, s) = news_graph();
        let q = QueryGraphBuilder::new("q")
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .build()
            .unwrap();
        let est = SelectivityEstimator::with_summary(&s, &g);
        let one = est.subgraph_cardinality(&q, &[QueryEdgeId(0)]);
        let two = est.subgraph_cardinality(&q, &[QueryEdgeId(0), QueryEdgeId(2)]);
        let all: Vec<QueryEdgeId> = q.edge_ids().collect();
        let full = est.subgraph_cardinality(&q, &all);
        // Adding the rare `located` edge to the frequent `mentions` edge must
        // not increase the estimate, and the full 4-edge pattern must not be
        // larger than the 2-edge wedge estimate.
        assert!(two <= one, "two={two} one={one}");
        assert!(full <= one * one, "full={full}");
        assert!(full > 0.0);
    }

    #[test]
    fn subgraph_cardinality_handles_disconnected_and_empty_sets() {
        let (g, s) = news_graph();
        let q = QueryGraphBuilder::new("q")
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k1", "Keyword")
            .vertex("k2", "Keyword")
            .edge("a1", "mentions", "k1")
            .edge("a2", "mentions", "k2")
            .build()
            .unwrap();
        let est = SelectivityEstimator::with_summary(&s, &g);
        assert!(est.subgraph_cardinality(&q, &[]).is_infinite());
        let pair = est.subgraph_cardinality(&q, &[QueryEdgeId(0), QueryEdgeId(1)]);
        let single = est.subgraph_cardinality(&q, &[QueryEdgeId(0)]);
        // Disconnected pair behaves like a cartesian product of the two edges.
        assert!(pair >= single, "pair={pair} single={single}");
    }
}
