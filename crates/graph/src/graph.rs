//! The dynamic multi-relational property graph.
//!
//! [`DynamicGraph`] is the data-graph substrate of StreamWorks (paper §2.1):
//! a directed, typed, timestamped multigraph that is updated one edge event at
//! a time and optionally forgets edges that have fallen out of a retention
//! window. It is intentionally a *store*, not a matcher: the incremental
//! algorithm lives in `streamworks-core` and queries this structure through
//! the neighbourhood accessors defined here.

use crate::adjacency::{AdjEntry, AdjacencyList, Direction};
use crate::attr::Attrs;
use crate::edge::{Edge, EdgeEvent};
use crate::error::GraphError;
use crate::ids::{Duration, EdgeId, Timestamp, TypeId, VertexId};
use crate::interner::Interner;
use crate::stats::GraphStats;
use crate::vertex::Vertex;
use crate::window::SlidingWindow;
use serde::{Deserialize, Serialize};

/// Configuration of a [`DynamicGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphConfig {
    /// How long edges are retained after their timestamp. `None` keeps all edges.
    ///
    /// For correctness of a continuous query with window `tW` the retention
    /// must be at least `tW`; the engine in `streamworks-core` enforces that.
    pub retention: Option<Duration>,
    /// Initial capacity hint for the vertex table.
    pub expected_vertices: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            retention: None,
            expected_vertices: 1024,
        }
    }
}

impl GraphConfig {
    /// Config with a retention horizon.
    pub fn with_retention(retention: Duration) -> Self {
        GraphConfig {
            retention: Some(retention),
            ..Default::default()
        }
    }
}

/// Outcome of ingesting one edge event.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestResult {
    /// Id assigned to the new edge.
    pub edge: EdgeId,
    /// Resolved source vertex.
    pub src: VertexId,
    /// Resolved destination vertex.
    pub dst: VertexId,
    /// True if the source vertex was created by this ingest.
    pub src_created: bool,
    /// True if the destination vertex was created by this ingest.
    pub dst_created: bool,
    /// Edges that expired out of the retention window as a consequence of the
    /// stream time advancing to this event's timestamp.
    pub expired: Vec<EdgeId>,
}

/// Dense, id-indexed storage for live edges.
///
/// Edge ids are allocated sequentially and expire in (approximately)
/// timestamp order, so the live edges always occupy a narrow id band. Storing
/// them in a deque indexed by `id - base` makes the per-edge lookup on the
/// matcher hot path a bounds check plus an index — no hashing — and ingest a
/// plain `push_back`. Expired slots become `None` holes; the dead prefix is
/// trimmed as soon as it clears.
///
/// A straggler — an edge that stays live long after its id-neighbours expired
/// (e.g. a producer with a skewed future clock advances stream time so far
/// that everything after it expires on arrival) — would pin `base` and let
/// the deque grow with the stream. When the deque exceeds a multiple of the
/// live count, stragglers at the front are migrated into a small `overflow`
/// hash map so the dense band stays proportional to the live population.
#[derive(Debug, Clone, Default)]
struct EdgeSlab {
    /// Edge id of `slots[0]`.
    base: u64,
    slots: std::collections::VecDeque<Option<Edge>>,
    /// Long-lived stragglers evicted from the front of the dense band.
    /// Empty in the common in-order-expiry case.
    overflow: crate::hash::FxHashMap<EdgeId, Edge>,
    live: usize,
}

impl EdgeSlab {
    /// Appends an edge; its id must be the next sequential id.
    #[inline]
    fn push(&mut self, edge: Edge) {
        debug_assert_eq!(edge.id.0, self.base + self.slots.len() as u64);
        self.slots.push_back(Some(edge));
        self.live += 1;
        if self.slots.len() > 4 * self.live + 1024 {
            self.evict_stragglers();
        }
    }

    #[inline]
    fn get(&self, id: EdgeId) -> Option<&Edge> {
        match id.0.checked_sub(self.base) {
            Some(idx) => self.slots.get(idx as usize)?.as_ref(),
            // Below the dense band: either long expired or a straggler.
            None => self.overflow.get(&id),
        }
    }

    #[inline]
    fn contains(&self, id: EdgeId) -> bool {
        self.get(id).is_some()
    }

    fn remove(&mut self, id: EdgeId) -> Option<Edge> {
        let Some(idx) = id.0.checked_sub(self.base) else {
            let removed = self.overflow.remove(&id);
            if removed.is_some() {
                self.live -= 1;
            }
            return removed;
        };
        let removed = self.slots.get_mut(idx as usize)?.take();
        if removed.is_some() {
            self.live -= 1;
            self.trim_front();
        }
        removed
    }

    /// Reclaims the dead prefix (expiry tracks timestamp order, which tracks
    /// id order for in-order streams, so this stays tight).
    fn trim_front(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Moves live edges pinning the front of an oversized dense band into the
    /// overflow map until the band is proportional to the live count again.
    fn evict_stragglers(&mut self) {
        while self.slots.len() > 4 * self.live + 1024 {
            match self.slots.pop_front() {
                Some(Some(edge)) => {
                    self.base += 1;
                    self.overflow.insert(edge.id, edge);
                }
                Some(None) => self.base += 1,
                None => break,
            }
            self.trim_front();
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }

    /// Smallest live edge id: the dense band's front (kept live by
    /// `trim_front`) or an older straggler in the overflow map.
    fn oldest_live(&self) -> Option<EdgeId> {
        let band = if self.slots.is_empty() {
            None
        } else {
            Some(EdgeId(self.base))
        };
        let straggler = self.overflow.keys().min().copied();
        match (band, straggler) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    fn iter(&self) -> impl Iterator<Item = &Edge> {
        self.overflow
            .values()
            .chain(self.slots.iter().filter_map(|s| s.as_ref()))
    }
}

/// A directed, typed, timestamped multigraph with sliding-window retention.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    config: GraphConfig,
    key_interner: Interner,
    vtype_interner: Interner,
    etype_interner: Interner,
    vertices: Vec<Vertex>,
    /// Vertex id per interned key symbol (symbols are dense, so a vector
    /// replaces a second hash probe on ingest). `u32::MAX` = no vertex.
    vertex_by_key: Vec<VertexId>,
    edges: EdgeSlab,
    adjacency: Vec<AdjacencyList>,
    window: SlidingWindow,
    next_edge_id: u64,
    /// Live edge count per edge type.
    edge_type_counts: Vec<u64>,
    /// Vertex count per vertex type (vertices are never removed).
    vertex_type_counts: Vec<u64>,
    /// Cumulative number of ingested edges (including expired ones).
    ingested_edges: u64,
}

impl DynamicGraph {
    /// Creates an empty graph with the given configuration.
    pub fn new(config: GraphConfig) -> Self {
        let window = SlidingWindow::new(config.retention);
        DynamicGraph {
            key_interner: Interner::with_capacity(config.expected_vertices),
            vtype_interner: Interner::new(),
            etype_interner: Interner::new(),
            vertices: Vec::with_capacity(config.expected_vertices),
            vertex_by_key: Vec::with_capacity(config.expected_vertices),
            edges: EdgeSlab::default(),
            adjacency: Vec::with_capacity(config.expected_vertices),
            window,
            next_edge_id: 0,
            edge_type_counts: Vec::new(),
            vertex_type_counts: Vec::new(),
            ingested_edges: 0,
            config,
        }
    }

    /// Creates an empty graph with default configuration (no retention).
    pub fn unbounded() -> Self {
        Self::new(GraphConfig::default())
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Type and key interning
    // ------------------------------------------------------------------

    /// Interns (or looks up) a vertex type label.
    pub fn intern_vertex_type(&mut self, name: &str) -> TypeId {
        let id = TypeId(self.vtype_interner.intern(name));
        if id.index() >= self.vertex_type_counts.len() {
            self.vertex_type_counts.resize(id.index() + 1, 0);
        }
        id
    }

    /// Interns (or looks up) an edge type label.
    pub fn intern_edge_type(&mut self, name: &str) -> TypeId {
        let id = TypeId(self.etype_interner.intern(name));
        if id.index() >= self.edge_type_counts.len() {
            self.edge_type_counts.resize(id.index() + 1, 0);
        }
        id
    }

    /// Looks up a vertex type label without interning it.
    pub fn vertex_type_id(&self, name: &str) -> Option<TypeId> {
        self.vtype_interner.lookup(name).map(TypeId)
    }

    /// Looks up an edge type label without interning it.
    pub fn edge_type_id(&self, name: &str) -> Option<TypeId> {
        self.etype_interner.lookup(name).map(TypeId)
    }

    /// Resolves a vertex type id back to its label.
    pub fn vertex_type_name(&self, id: TypeId) -> Option<&str> {
        self.vtype_interner.resolve(id.0)
    }

    /// Resolves an edge type id back to its label.
    pub fn edge_type_name(&self, id: TypeId) -> Option<&str> {
        self.etype_interner.resolve(id.0)
    }

    /// Number of distinct vertex types observed.
    pub fn vertex_type_count(&self) -> usize {
        self.vtype_interner.len()
    }

    /// Number of distinct edge types observed.
    pub fn edge_type_count(&self) -> usize {
        self.etype_interner.len()
    }

    /// Resolves the external key of a vertex.
    pub fn vertex_key(&self, v: VertexId) -> Option<&str> {
        self.vertices
            .get(v.index())
            .and_then(|vx| self.key_interner.resolve(vx.key_sym))
    }

    /// Looks up a vertex by its external key.
    pub fn vertex_by_key(&self, key: &str) -> Option<VertexId> {
        let sym = self.key_interner.lookup(key)?;
        match self.vertex_by_key.get(sym as usize) {
            Some(&v) if v.0 != u32::MAX => Some(v),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Ensures a vertex with the given external key and type exists, returning
    /// its id and whether it was created.
    ///
    /// If the vertex already exists its type is *not* changed (the first
    /// observation wins), matching the append-only semantics of a stream.
    pub fn ensure_vertex(&mut self, key: &str, vtype_name: &str) -> (VertexId, bool) {
        let vtype = self.intern_vertex_type(vtype_name);
        self.ensure_vertex_typed(key, vtype)
    }

    /// Like [`Self::ensure_vertex`] but with a pre-interned type id.
    pub fn ensure_vertex_typed(&mut self, key: &str, vtype: TypeId) -> (VertexId, bool) {
        let sym = self.key_interner.intern(key);
        if let Some(&v) = self.vertex_by_key.get(sym as usize) {
            if v.0 != u32::MAX {
                return (v, false);
            }
        }
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            id,
            key_sym: sym,
            vtype,
            attrs: Attrs::new(),
            out_degree: 0,
            in_degree: 0,
        });
        self.adjacency.push(AdjacencyList::new());
        if sym as usize >= self.vertex_by_key.len() {
            self.vertex_by_key
                .resize(sym as usize + 1, VertexId(u32::MAX));
        }
        self.vertex_by_key[sym as usize] = id;
        if vtype.index() >= self.vertex_type_counts.len() {
            self.vertex_type_counts.resize(vtype.index() + 1, 0);
        }
        self.vertex_type_counts[vtype.index()] += 1;
        (id, true)
    }

    /// Sets an attribute on an existing vertex.
    pub fn set_vertex_attr(
        &mut self,
        v: VertexId,
        key: impl Into<String>,
        value: impl Into<crate::AttrValue>,
    ) -> Result<(), GraphError> {
        let vx = self
            .vertices
            .get_mut(v.index())
            .ok_or(GraphError::UnknownVertex(v))?;
        vx.attrs.set(key, value);
        Ok(())
    }

    /// Ingests a single edge event: resolves or creates both endpoint
    /// vertices, inserts the edge, advances stream time and expires edges that
    /// fall out of the retention window.
    pub fn ingest(&mut self, event: &EdgeEvent) -> IngestResult {
        let (src, src_created) = self.ensure_vertex(&event.src_key, &event.src_type);
        let (dst, dst_created) = self.ensure_vertex(&event.dst_key, &event.dst_type);
        let etype = self.intern_edge_type(&event.edge_type);
        let (edge, expired) =
            self.add_edge_internal(src, dst, etype, event.timestamp, event.attrs.clone());
        IngestResult {
            edge,
            src,
            dst,
            src_created,
            dst_created,
            expired,
        }
    }

    /// Inserts an edge between two existing vertices with a pre-interned type.
    /// Returns the new edge id and any edges expired by the time advance.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        etype: TypeId,
        timestamp: Timestamp,
        attrs: Attrs,
    ) -> Result<(EdgeId, Vec<EdgeId>), GraphError> {
        if src.index() >= self.vertices.len() {
            return Err(GraphError::UnknownVertex(src));
        }
        if dst.index() >= self.vertices.len() {
            return Err(GraphError::UnknownVertex(dst));
        }
        if etype.index() >= self.edge_type_counts.len() {
            return Err(GraphError::UnknownType(etype));
        }
        Ok(self.add_edge_internal(src, dst, etype, timestamp, attrs))
    }

    fn add_edge_internal(
        &mut self,
        src: VertexId,
        dst: VertexId,
        etype: TypeId,
        timestamp: Timestamp,
        attrs: Attrs,
    ) -> (EdgeId, Vec<EdgeId>) {
        let id = EdgeId(self.next_edge_id);
        self.next_edge_id += 1;
        self.ingested_edges += 1;

        let edge = Edge {
            id,
            src,
            dst,
            etype,
            timestamp,
            attrs,
        };
        self.edges.push(edge);
        self.edge_type_counts[etype.index()] += 1;

        self.adjacency[src.index()].push(
            Direction::Out,
            etype,
            AdjEntry {
                edge: id,
                neighbor: dst,
                timestamp,
            },
        );
        self.adjacency[dst.index()].push(
            Direction::In,
            etype,
            AdjEntry {
                edge: id,
                neighbor: src,
                timestamp,
            },
        );
        self.vertices[src.index()].out_degree += 1;
        self.vertices[dst.index()].in_degree += 1;

        let expired = self.window.insert(id, timestamp);
        for &e in &expired {
            self.remove_edge_internal(e);
        }
        (id, expired)
    }

    /// Advances stream time without inserting an edge, expiring old edges.
    pub fn advance_time(&mut self, ts: Timestamp) -> Vec<EdgeId> {
        let expired = self.window.advance(ts);
        for &e in &expired {
            self.remove_edge_internal(e);
        }
        expired
    }

    fn remove_edge_internal(&mut self, id: EdgeId) {
        let Some(edge) = self.edges.remove(id) else {
            return;
        };
        self.edge_type_counts[edge.etype.index()] =
            self.edge_type_counts[edge.etype.index()].saturating_sub(1);
        let src = &mut self.vertices[edge.src.index()];
        src.out_degree = src.out_degree.saturating_sub(1);
        let dst = &mut self.vertices[edge.dst.index()];
        dst.in_degree = dst.in_degree.saturating_sub(1);

        // Both `note_dead` calls must land before any compaction: a
        // self-loop touches the same adjacency list twice, and compacting
        // between the two calls (compaction rebuilds both sides and resets
        // the live counters) would make the second call double-decrement.
        if edge.src == edge.dst {
            let adj = &mut self.adjacency[edge.src.index()];
            adj.note_dead(Direction::Out, edge.etype);
            adj.note_dead(Direction::In, edge.etype);
            if adj.should_compact() {
                let edges = &self.edges;
                adj.compact(|e| edges.contains(e));
            }
            return;
        }
        for (v, dir) in [(edge.src, Direction::Out), (edge.dst, Direction::In)] {
            let adj = &mut self.adjacency[v.index()];
            adj.note_dead(dir, edge.etype);
            if adj.should_compact() {
                let edges = &self.edges;
                adj.compact(|e| edges.contains(e));
            }
        }
    }

    // ------------------------------------------------------------------
    // Lookup and iteration
    // ------------------------------------------------------------------

    /// Returns the vertex record for `v`.
    pub fn vertex(&self, v: VertexId) -> Option<&Vertex> {
        self.vertices.get(v.index())
    }

    /// Returns the live edge record for `e` (expired edges return `None`).
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Option<&Edge> {
        self.edges.get(e)
    }

    /// True if the edge is still live (not expired).
    #[inline]
    pub fn is_live(&self, e: EdgeId) -> bool {
        self.edges.contains(e)
    }

    /// Number of vertices ever created.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of live edges.
    pub fn live_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of edges ingested, including expired ones.
    pub fn ingested_edge_count(&self) -> u64 {
        self.ingested_edges
    }

    /// The smallest edge id still live, `None` when no edge is. Edge ids are
    /// assigned in arrival order, so every id below this bound has expired —
    /// the horizon behind which arrival-order bookkeeping (e.g. the engine's
    /// checkpoint-replay intervals) can be discarded.
    pub fn oldest_live_edge_id(&self) -> Option<EdgeId> {
        self.edges.oldest_live()
    }

    /// Largest observed stream timestamp.
    pub fn now(&self) -> Timestamp {
        self.window.now()
    }

    /// The retention window, if configured.
    pub fn retention(&self) -> Option<Duration> {
        self.config.retention
    }

    /// Replaces the retention window. Widening it keeps more future edges;
    /// narrowing it takes effect as stream time advances. Used by the
    /// continuous-query engine to ensure retention covers the largest
    /// registered query window.
    pub fn set_retention(&mut self, retention: Option<Duration>) {
        self.config.retention = retention;
        self.window.set_retention(retention);
    }

    /// Live out-degree + in-degree of a vertex.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.vertices
            .get(v.index())
            .map(|x| x.degree())
            .unwrap_or(0)
    }

    /// Number of live vertices of a given type (vertices never expire, so this
    /// counts every vertex ever observed with the type).
    pub fn vertices_of_type(&self, t: TypeId) -> u64 {
        self.vertex_type_counts.get(t.index()).copied().unwrap_or(0)
    }

    /// Number of live edges of a given type.
    pub fn edges_of_type(&self, t: TypeId) -> u64 {
        self.edge_type_counts.get(t.index()).copied().unwrap_or(0)
    }

    /// Iterates all vertex records.
    pub fn vertices(&self) -> impl Iterator<Item = &Vertex> {
        self.vertices.iter()
    }

    /// Iterates all live edges in id (arrival) order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Iterates the live edges incident to `v` in direction `dir` with edge
    /// type `etype`.
    #[inline]
    pub fn incident_edges(
        &self,
        v: VertexId,
        dir: Direction,
        etype: TypeId,
    ) -> impl Iterator<Item = &Edge> + '_ {
        let entries = self
            .adjacency
            .get(v.index())
            .map(|a| a.entries(dir, etype))
            .unwrap_or(&[]);
        entries.iter().filter_map(move |e| self.edges.get(e.edge))
    }

    /// Iterates the live edges incident to `v` in direction `dir`, across all
    /// edge types.
    pub fn incident_edges_any_type(
        &self,
        v: VertexId,
        dir: Direction,
    ) -> impl Iterator<Item = &Edge> + '_ {
        self.adjacency
            .get(v.index())
            .into_iter()
            .flat_map(move |a| a.entries_all_types(dir))
            .filter_map(move |(_, e)| self.edges.get(e.edge))
    }

    /// A monotonically growing version of the graph's type schema (vertex and
    /// edge type interners). Matchers cache compiled type constraints and only
    /// re-resolve when this changes, keeping the per-edge hot path free of
    /// interner probing.
    #[inline]
    pub fn schema_version(&self) -> u64 {
        ((self.vtype_interner.len() as u64) << 32) | self.etype_interner.len() as u64
    }

    /// Iterates `(edge, neighbor)` pairs for the live neighbourhood of `v` in
    /// direction `dir` restricted to edge type `etype`.
    pub fn neighbors(
        &self,
        v: VertexId,
        dir: Direction,
        etype: TypeId,
    ) -> impl Iterator<Item = (&Edge, VertexId)> + '_ {
        self.incident_edges(v, dir, etype).map(move |e| {
            let n = match dir {
                Direction::Out => e.dst,
                Direction::In => e.src,
            };
            (e, n)
        })
    }

    /// Count of live incident edges of a given type and direction (degree by
    /// type) — an O(1) counter read, no neighbourhood scan.
    #[inline]
    pub fn degree_by_type(&self, v: VertexId, dir: Direction, etype: TypeId) -> usize {
        self.adjacency
            .get(v.index())
            .map(|a| a.live_count(dir, etype))
            .unwrap_or(0)
    }

    /// Iterates `(edge type, live incident-edge count)` for a vertex and
    /// direction. O(#types present), independent of degree.
    pub fn live_type_counts(
        &self,
        v: VertexId,
        dir: Direction,
    ) -> impl Iterator<Item = (TypeId, usize)> + '_ {
        self.adjacency
            .get(v.index())
            .into_iter()
            .flat_map(move |a| a.live_counts(dir))
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            vertices: self.vertex_count() as u64,
            live_edges: self.live_edge_count() as u64,
            ingested_edges: self.ingested_edges,
            expired_edges: self.window.expired_total(),
            vertex_types: self.vertex_type_count() as u64,
            edge_types: self.edge_type_count() as u64,
            now: self.now(),
        }
    }
}

impl Default for DynamicGraph {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(src: &str, dst: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, "IP", dst, "IP", et, Timestamp::from_secs(t))
    }

    #[test]
    fn self_loop_expiry_keeps_live_counters_exact_across_compaction() {
        // Enough expired self-loops to cross the compaction threshold while
        // they are being removed: compaction between the Out- and In-side
        // dead notes of one loop used to double-decrement the live counter.
        let mut g = DynamicGraph::unbounded();
        g.set_retention(Some(Duration::from_secs(1)));
        for _ in 0..40 {
            g.ingest(&event("a", "a", "flow", 1));
        }
        let a = g.vertex_by_key("a").unwrap();
        let flow = g.edge_type_id("flow").unwrap();
        assert_eq!(g.degree_by_type(a, Direction::Out, flow), 40);

        let expired = g.advance_time(Timestamp::from_secs(100));
        assert_eq!(expired.len(), 40);
        assert_eq!(g.live_edge_count(), 0);
        assert_eq!(g.degree_by_type(a, Direction::Out, flow), 0);
        assert_eq!(g.degree_by_type(a, Direction::In, flow), 0);

        // The list stays usable: a fresh loop counts 1 on both sides.
        g.ingest(&event("a", "a", "flow", 100));
        assert_eq!(g.degree_by_type(a, Direction::Out, flow), 1);
        assert_eq!(g.degree_by_type(a, Direction::In, flow), 1);
    }

    #[test]
    fn ingest_creates_vertices_once() {
        let mut g = DynamicGraph::unbounded();
        let r1 = g.ingest(&event("a", "b", "flow", 1));
        assert!(r1.src_created && r1.dst_created);
        let r2 = g.ingest(&event("a", "c", "flow", 2));
        assert!(!r2.src_created && r2.dst_created);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.live_edge_count(), 2);
        assert_eq!(g.vertex_by_key("a"), Some(r1.src));
    }

    #[test]
    fn neighbors_filtered_by_type_and_direction() {
        let mut g = DynamicGraph::unbounded();
        g.ingest(&event("a", "b", "flow", 1));
        g.ingest(&event("a", "c", "login", 2));
        g.ingest(&event("d", "a", "flow", 3));
        let a = g.vertex_by_key("a").unwrap();
        let flow = g.edge_type_id("flow").unwrap();
        let login = g.edge_type_id("login").unwrap();

        let out_flow: Vec<_> = g.neighbors(a, Direction::Out, flow).collect();
        assert_eq!(out_flow.len(), 1);
        assert_eq!(g.vertex_key(out_flow[0].1), Some("b"));

        let out_login: Vec<_> = g.neighbors(a, Direction::Out, login).collect();
        assert_eq!(out_login.len(), 1);

        let in_flow: Vec<_> = g.neighbors(a, Direction::In, flow).collect();
        assert_eq!(in_flow.len(), 1);
        assert_eq!(g.vertex_key(in_flow[0].1), Some("d"));
    }

    #[test]
    fn retention_expires_edges_and_updates_degrees() {
        let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(10)));
        g.ingest(&event("a", "b", "flow", 0));
        g.ingest(&event("a", "c", "flow", 5));
        let a = g.vertex_by_key("a").unwrap();
        assert_eq!(g.degree(a), 2);

        let r = g.ingest(&event("a", "d", "flow", 20));
        assert_eq!(r.expired.len(), 2);
        assert_eq!(g.live_edge_count(), 1);
        assert_eq!(g.degree(a), 1);
        let flow = g.edge_type_id("flow").unwrap();
        assert_eq!(g.edges_of_type(flow), 1);

        // Expired edges are no longer visible through adjacency.
        let out: Vec<_> = g.neighbors(a, Direction::Out, flow).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(g.vertex_key(out[0].1), Some("d"));
    }

    #[test]
    fn advance_time_expires_without_insert() {
        let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(1)));
        g.ingest(&event("a", "b", "flow", 0));
        let expired = g.advance_time(Timestamp::from_secs(100));
        assert_eq!(expired.len(), 1);
        assert_eq!(g.live_edge_count(), 0);
        assert_eq!(g.stats().expired_edges, 1);
    }

    #[test]
    fn multigraph_allows_parallel_edges() {
        let mut g = DynamicGraph::unbounded();
        g.ingest(&event("a", "b", "flow", 1));
        g.ingest(&event("a", "b", "flow", 2));
        g.ingest(&event("a", "b", "flow", 3));
        assert_eq!(g.live_edge_count(), 3);
        let a = g.vertex_by_key("a").unwrap();
        let flow = g.edge_type_id("flow").unwrap();
        assert_eq!(g.degree_by_type(a, Direction::Out, flow), 3);
    }

    #[test]
    fn add_edge_rejects_unknown_vertices_and_types() {
        let mut g = DynamicGraph::unbounded();
        let (a, _) = g.ensure_vertex("a", "IP");
        let flow = g.intern_edge_type("flow");
        let err = g
            .add_edge(a, VertexId(99), flow, Timestamp::from_secs(1), Attrs::new())
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertex(_)));
        let err = g
            .add_edge(a, a, TypeId(42), Timestamp::from_secs(1), Attrs::new())
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownType(_)));
    }

    #[test]
    fn vertex_attrs_can_be_set_and_read() {
        let mut g = DynamicGraph::unbounded();
        let (a, _) = g.ensure_vertex("article-1", "Article");
        g.set_vertex_attr(a, "section", "politics").unwrap();
        assert_eq!(
            g.vertex(a).unwrap().attrs.get("section").unwrap().as_str(),
            Some("politics")
        );
        assert!(g.set_vertex_attr(VertexId(9), "x", 1i64).is_err());
    }

    #[test]
    fn type_counts_track_live_population() {
        let mut g = DynamicGraph::unbounded();
        g.ingest(&EdgeEvent::new(
            "art1",
            "Article",
            "kw1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(1),
        ));
        g.ingest(&EdgeEvent::new(
            "art2",
            "Article",
            "kw1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(2),
        ));
        let article = g.vertex_type_id("Article").unwrap();
        let keyword = g.vertex_type_id("Keyword").unwrap();
        let mentions = g.edge_type_id("mentions").unwrap();
        assert_eq!(g.vertices_of_type(article), 2);
        assert_eq!(g.vertices_of_type(keyword), 1);
        assert_eq!(g.edges_of_type(mentions), 2);
        assert_eq!(g.vertex_type_name(article), Some("Article"));
        assert_eq!(g.edge_type_name(mentions), Some("mentions"));
    }

    #[test]
    fn straggler_edge_does_not_pin_slab_memory() {
        // A producer with a skewed clock delivers one edge far in the future;
        // stream time jumps forward and every subsequent normally-stamped
        // edge expires on arrival. The straggler must not pin the dense edge
        // band: memory stays proportional to the live count.
        let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(60)));
        g.ingest(&event("skewed", "victim", "flow", 1_000_000));
        for i in 0..20_000i64 {
            g.ingest(&event("a", "b", "flow", i));
        }
        assert_eq!(g.live_edge_count(), 1, "only the future edge is live");
        assert!(
            g.edges.slots.len() <= 4 * g.edges.live + 1024 + 1,
            "dense band grew to {} slots for {} live edges",
            g.edges.slots.len(),
            g.edges.live
        );
        // The straggler is still fully addressable after spilling to overflow.
        let skewed = g.vertex_by_key("skewed").unwrap();
        let flow = g.edge_type_id("flow").unwrap();
        let visible: Vec<_> = g.neighbors(skewed, Direction::Out, flow).collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(g.edges().count(), 1);
        // The oldest live id is the overflow straggler (id 0), not the band.
        assert_eq!(g.oldest_live_edge_id(), Some(EdgeId(0)));
    }

    #[test]
    fn oldest_live_edge_id_tracks_expiry() {
        let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(10)));
        assert_eq!(g.oldest_live_edge_id(), None);
        g.ingest(&event("a", "b", "flow", 0));
        g.ingest(&event("c", "d", "flow", 5));
        assert_eq!(g.oldest_live_edge_id(), Some(EdgeId(0)));
        // Advancing time expires the first edge; the bound moves forward.
        g.ingest(&event("e", "f", "flow", 12));
        assert_eq!(g.oldest_live_edge_id(), Some(EdgeId(1)));
        g.ingest(&event("g", "h", "flow", 100));
        assert_eq!(g.oldest_live_edge_id(), Some(EdgeId(3)));
    }

    #[test]
    fn heavy_expiry_compacts_adjacency_without_losing_live_edges() {
        let mut g = DynamicGraph::new(GraphConfig::with_retention(Duration::from_secs(10)));
        // A hub vertex receives many edges over a long stream; old ones must
        // disappear from its neighbourhood while recent ones stay visible.
        for i in 0..1000i64 {
            g.ingest(&event("hub", &format!("peer{i}"), "flow", i));
        }
        let hub = g.vertex_by_key("hub").unwrap();
        let flow = g.edge_type_id("flow").unwrap();
        let visible: Vec<_> = g.neighbors(hub, Direction::Out, flow).collect();
        // Retention of 10s at t=999 keeps edges with t in [989, 999] => 11 edges.
        assert_eq!(visible.len(), 11);
        assert!(visible
            .iter()
            .all(|(e, _)| e.timestamp >= Timestamp::from_secs(989)));
        assert_eq!(g.live_edge_count(), 11);
    }
}
