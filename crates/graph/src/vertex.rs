//! Vertex records.

use crate::attr::Attrs;
use crate::ids::{TypeId, VertexId};
use serde::{Deserialize, Serialize};

/// A vertex stored inside a [`crate::DynamicGraph`].
///
/// Vertices are created implicitly the first time an edge event references
/// their external key. A vertex keeps its interned key symbol, its type, its
/// attribute map and running degree counters (maintained by the graph as
/// edges are inserted and expired).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    /// Stable vertex identifier.
    pub id: VertexId,
    /// Symbol of the external key in the graph's key interner.
    pub key_sym: u32,
    /// Interned vertex type.
    pub vtype: TypeId,
    /// Optional attributes.
    pub attrs: Attrs,
    /// Number of live (non-expired) outgoing edges.
    pub out_degree: u32,
    /// Number of live (non-expired) incoming edges.
    pub in_degree: u32,
}

impl Vertex {
    /// Total live degree (in + out).
    pub fn degree(&self) -> u32 {
        self.in_degree + self.out_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_sums_both_directions() {
        let v = Vertex {
            id: VertexId(0),
            key_sym: 0,
            vtype: TypeId(0),
            attrs: Attrs::new(),
            out_degree: 3,
            in_degree: 4,
        };
        assert_eq!(v.degree(), 7);
    }
}
