//! Identifier newtypes used throughout StreamWorks.
//!
//! All identifiers are small, `Copy`, densely allocated integers so that they
//! can be used directly as indices into `Vec`-backed stores and as cheap hash
//! keys. Wrapping them in newtypes prevents mixing up, say, a vertex id with
//! an edge id at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`crate::DynamicGraph`].
///
/// Vertex ids are allocated densely starting from zero in insertion order and
/// are never reused, even if all edges incident to a vertex expire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Identifier of an edge in a [`crate::DynamicGraph`].
///
/// Edge ids are allocated densely in arrival order. Because the data graph is
/// a stream, the edge id also acts as an arrival sequence number: `e1.0 < e2.0`
/// implies edge `e1` arrived no later than `e2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// Identifier of an interned vertex- or edge-type label.
///
/// Type ids are produced by the [`crate::Interner`]; equal labels always map
/// to equal ids within one graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TypeId(pub u32);

/// A point in stream time, expressed in integer microseconds.
///
/// The paper defines the time interval `τ(g)` of a subgraph `g` as the span
/// between its earliest and latest edge timestamp; windows (`tW`) and spans
/// are represented as [`Duration`] values in the same unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Timestamp(pub i64);

/// A length of stream time in integer microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Duration(pub i64);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Timestamp {
    /// Constructs a timestamp from whole seconds of stream time.
    #[inline]
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Constructs a timestamp from whole milliseconds of stream time.
    #[inline]
    pub fn from_millis(millis: i64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Constructs a timestamp from microseconds of stream time.
    #[inline]
    pub fn from_micros(micros: i64) -> Self {
        Timestamp(micros)
    }

    /// Raw microsecond value.
    #[inline]
    pub fn as_micros(self) -> i64 {
        self.0
    }

    /// The duration elapsed since `earlier`. Negative if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// This timestamp shifted forward by `d`.
    #[inline]
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// This timestamp shifted backward by `d`, saturating at `i64::MIN`.
    #[inline]
    pub fn minus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from whole seconds.
    #[inline]
    pub fn from_secs(secs: i64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Constructs a duration from whole milliseconds.
    #[inline]
    pub fn from_millis(millis: i64) -> Self {
        Duration(millis * 1_000)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub fn from_micros(micros: i64) -> Self {
        Duration(micros)
    }

    /// Constructs a duration from whole minutes.
    #[inline]
    pub fn from_mins(mins: i64) -> Self {
        Duration(mins * 60 * 1_000_000)
    }

    /// Constructs a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: i64) -> Self {
        Duration(hours * 3600 * 1_000_000)
    }

    /// Raw microsecond value.
    #[inline]
    pub fn as_micros(self) -> i64 {
        self.0
    }

    /// Number of whole seconds in this duration.
    #[inline]
    pub fn as_secs(self) -> i64 {
        self.0 / 1_000_000
    }

    /// True if this duration is zero or negative.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 <= 0
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({}us)", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dur({}us)", self.0)
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        self.plus(rhs)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_roundtrips() {
        let t = Timestamp::from_secs(10);
        let d = Duration::from_secs(3);
        assert_eq!(t + d, Timestamp::from_secs(13));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.minus(d), Timestamp::from_secs(7));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_mins(2), Duration::from_secs(120));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
    }

    #[test]
    fn duration_emptiness() {
        assert!(Duration::ZERO.is_empty());
        assert!(Duration::from_micros(-5).is_empty());
        assert!(!Duration::from_micros(5).is_empty());
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(10) > EdgeId(9));
        assert_eq!(TypeId(3).index(), 3);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(VertexId(7).to_string(), "v7");
        assert_eq!(EdgeId(9).to_string(), "e9");
        assert_eq!(format!("{:?}", TypeId(2)), "t2");
    }

    #[test]
    fn timestamp_since_can_be_negative() {
        let a = Timestamp::from_secs(5);
        let b = Timestamp::from_secs(8);
        assert!(a.since(b).is_empty());
        assert_eq!(b.since(a), Duration::from_secs(3));
    }
}
