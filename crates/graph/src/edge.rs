//! Edge records and the external edge-event type fed into the graph.

use crate::attr::Attrs;
use crate::ids::{EdgeId, Timestamp, TypeId, VertexId};
use serde::{Deserialize, Serialize};

/// An edge stored inside a [`crate::DynamicGraph`].
///
/// Edges are directed (`src -> dst`), typed, timestamped and may carry
/// attributes. A dynamic multi-relational graph is a multigraph: several
/// edges with the same endpoints and type but different timestamps may
/// coexist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Stable edge identifier (also the arrival sequence number).
    pub id: EdgeId,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Interned edge (relation) type.
    pub etype: TypeId,
    /// Stream timestamp of the edge.
    pub timestamp: Timestamp,
    /// Optional attributes.
    pub attrs: Attrs,
}

impl Edge {
    /// Returns the endpoint opposite to `v`, or `None` if `v` is not an endpoint.
    pub fn other_endpoint(&self, v: VertexId) -> Option<VertexId> {
        if v == self.src {
            Some(self.dst)
        } else if v == self.dst {
            Some(self.src)
        } else {
            None
        }
    }

    /// True if `v` is one of the endpoints.
    pub fn touches(&self, v: VertexId) -> bool {
        self.src == v || self.dst == v
    }

    /// True if the edge is a self-loop.
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }
}

/// An edge event as produced by a workload generator or trace reader, *before*
/// it is resolved against the graph's interner.
///
/// Vertex endpoints are identified by external string keys and typed by
/// string labels; [`crate::DynamicGraph::ingest`] resolves them to dense ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// External key of the source vertex (e.g. an IP address or article URI).
    pub src_key: String,
    /// Vertex type label of the source vertex.
    pub src_type: String,
    /// External key of the destination vertex.
    pub dst_key: String,
    /// Vertex type label of the destination vertex.
    pub dst_type: String,
    /// Edge (relation) type label.
    pub edge_type: String,
    /// Stream timestamp.
    pub timestamp: Timestamp,
    /// Edge attributes.
    pub attrs: Attrs,
}

impl EdgeEvent {
    /// Convenience constructor without attributes.
    pub fn new(
        src_key: impl Into<String>,
        src_type: impl Into<String>,
        dst_key: impl Into<String>,
        dst_type: impl Into<String>,
        edge_type: impl Into<String>,
        timestamp: Timestamp,
    ) -> Self {
        EdgeEvent {
            src_key: src_key.into(),
            src_type: src_type.into(),
            dst_key: dst_key.into(),
            dst_type: dst_type.into(),
            edge_type: edge_type.into(),
            timestamp,
            attrs: Attrs::new(),
        }
    }

    /// Adds an attribute, builder-style.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<crate::AttrValue>) -> Self {
        self.attrs.set(key, value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: u32, dst: u32) -> Edge {
        Edge {
            id: EdgeId(0),
            src: VertexId(src),
            dst: VertexId(dst),
            etype: TypeId(0),
            timestamp: Timestamp::from_secs(1),
            attrs: Attrs::new(),
        }
    }

    #[test]
    fn other_endpoint_resolves_both_directions() {
        let e = edge(1, 2);
        assert_eq!(e.other_endpoint(VertexId(1)), Some(VertexId(2)));
        assert_eq!(e.other_endpoint(VertexId(2)), Some(VertexId(1)));
        assert_eq!(e.other_endpoint(VertexId(3)), None);
    }

    #[test]
    fn touches_and_loops() {
        let e = edge(1, 2);
        assert!(e.touches(VertexId(1)));
        assert!(!e.touches(VertexId(5)));
        assert!(!e.is_loop());
        assert!(edge(4, 4).is_loop());
    }

    #[test]
    fn edge_event_builder_sets_attrs() {
        let ev = EdgeEvent::new(
            "10.0.0.1",
            "IP",
            "10.0.0.2",
            "IP",
            "flow",
            Timestamp::from_secs(5),
        )
        .with_attr("port", 80i64);
        assert_eq!(ev.attrs.get("port").unwrap().as_int(), Some(80));
        assert_eq!(ev.edge_type, "flow");
    }
}
