//! Per-vertex adjacency lists grouped by direction and edge type.
//!
//! The matcher's *local search* (paper §4.1) repeatedly asks for "edges of
//! type `t` incident to vertex `v` in direction `d`". Grouping adjacency by
//! `(direction, edge type)` makes that query a single map lookup plus a dense
//! scan, instead of a filter over all incident edges. Each `(direction, type)`
//! bucket additionally maintains a **live-edge counter**, so typed degree
//! queries — and the summarizer's wedge accounting, which only needs
//! *how many* live neighbours of each type exist, not which — are O(1) reads
//! with no neighbourhood scan.
//!
//! Expired edges are removed lazily: [`crate::DynamicGraph`] drops them from
//! its edge table immediately, and adjacency vectors are compacted once their
//! dead fraction crosses a threshold. Iteration always checks liveness against
//! the edge table, so stale entries are never observable from the public API.

use crate::ids::{EdgeId, Timestamp, TypeId, VertexId};
use serde::{Deserialize, Serialize};

/// Direction of traversal relative to a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Edges whose source is the vertex.
    Out,
    /// Edges whose destination is the vertex.
    In,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// One adjacency entry: an incident edge and the neighbouring endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjEntry {
    /// The incident edge.
    pub edge: EdgeId,
    /// The endpoint on the far side of the edge.
    pub neighbor: VertexId,
    /// Timestamp of the edge (duplicated here to avoid an edge-table lookup
    /// during time-window filtering).
    pub timestamp: Timestamp,
}

/// Entries of one `(direction, edge type)` group plus its live-edge count.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct AdjBucket {
    /// Incident edges in arrival order; may contain expired (stale) entries
    /// until the next compaction.
    entries: Vec<AdjEntry>,
    /// Number of `entries` that refer to live edges.
    live: u32,
}

/// Adjacency of a single vertex.
///
/// Buckets are held in a small vector rather than a hash map: a vertex
/// typically touches one to three edge types, and at that size a linear scan
/// over inline `(type, bucket)` pairs is both faster and cache-friendlier
/// than hashing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjacencyList {
    out: Vec<(TypeId, AdjBucket)>,
    inc: Vec<(TypeId, AdjBucket)>,
    /// Number of entries (across both directions) that refer to expired edges
    /// and have not been compacted away yet.
    dead: usize,
}

impl AdjacencyList {
    /// Creates an empty adjacency list.
    pub fn new() -> Self {
        Self::default()
    }

    fn side(&self, dir: Direction) -> &[(TypeId, AdjBucket)] {
        match dir {
            Direction::Out => &self.out,
            Direction::In => &self.inc,
        }
    }

    fn side_mut(&mut self, dir: Direction) -> &mut Vec<(TypeId, AdjBucket)> {
        match dir {
            Direction::Out => &mut self.out,
            Direction::In => &mut self.inc,
        }
    }

    fn bucket(&self, dir: Direction, etype: TypeId) -> Option<&AdjBucket> {
        self.side(dir)
            .iter()
            .find(|(t, _)| *t == etype)
            .map(|(_, b)| b)
    }

    /// Appends an entry for a newly inserted edge.
    pub fn push(&mut self, dir: Direction, etype: TypeId, entry: AdjEntry) {
        let side = self.side_mut(dir);
        let bucket = match side.iter_mut().position(|(t, _)| *t == etype) {
            Some(i) => &mut side[i].1,
            None => {
                side.push((etype, AdjBucket::default()));
                &mut side.last_mut().expect("just pushed").1
            }
        };
        bucket.entries.push(entry);
        bucket.live += 1;
    }

    /// Records that one referenced edge of the given group has expired
    /// (keeps the live counters exact and feeds the compaction heuristic).
    pub fn note_dead(&mut self, dir: Direction, etype: TypeId) {
        self.dead += 1;
        if let Some((_, bucket)) = self.side_mut(dir).iter_mut().find(|(t, _)| *t == etype) {
            debug_assert!(bucket.live > 0, "live counter underflow");
            bucket.live = bucket.live.saturating_sub(1);
        }
    }

    /// Iterates raw entries for a direction and edge type. Entries may be stale;
    /// the caller must check liveness against the edge table.
    #[inline]
    pub fn entries(&self, dir: Direction, etype: TypeId) -> &[AdjEntry] {
        self.bucket(dir, etype)
            .map(|b| b.entries.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates raw entries for a direction across all edge types.
    pub fn entries_all_types(&self, dir: Direction) -> impl Iterator<Item = (TypeId, &AdjEntry)> {
        self.side(dir)
            .iter()
            .flat_map(|(t, b)| b.entries.iter().map(move |e| (*t, e)))
    }

    /// Number of live incident edges of one `(direction, type)` group — O(1)
    /// in the neighbourhood size (a scan over the few types present).
    #[inline]
    pub fn live_count(&self, dir: Direction, etype: TypeId) -> usize {
        self.bucket(dir, etype)
            .map(|b| b.live as usize)
            .unwrap_or(0)
    }

    /// Iterates `(edge type, live count)` for a direction, skipping groups
    /// with no live edges — O(#types), no neighbourhood scan.
    pub fn live_counts(&self, dir: Direction) -> impl Iterator<Item = (TypeId, usize)> + '_ {
        self.side(dir)
            .iter()
            .filter(|(_, b)| b.live > 0)
            .map(|(t, b)| (*t, b.live as usize))
    }

    /// Total number of stored entries (including stale ones).
    pub fn raw_len(&self) -> usize {
        self.out.iter().map(|(_, b)| b.entries.len()).sum::<usize>()
            + self.inc.iter().map(|(_, b)| b.entries.len()).sum::<usize>()
    }

    /// Number of entries known to be stale.
    pub fn dead_len(&self) -> usize {
        self.dead
    }

    /// True if compaction is worthwhile (more than half of the entries are stale
    /// and there are enough of them to matter).
    pub fn should_compact(&self) -> bool {
        self.dead >= 32 && self.dead * 2 >= self.raw_len()
    }

    /// Removes every entry for which `is_live` returns `false`.
    pub fn compact(&mut self, mut is_live: impl FnMut(EdgeId) -> bool) {
        for side in [&mut self.out, &mut self.inc] {
            side.retain_mut(|(_, b)| {
                b.entries.retain(|e| is_live(e.edge));
                b.live = b.entries.len() as u32;
                !b.entries.is_empty()
            });
        }
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(e: u64, n: u32) -> AdjEntry {
        AdjEntry {
            edge: EdgeId(e),
            neighbor: VertexId(n),
            timestamp: Timestamp::from_secs(e as i64),
        }
    }

    #[test]
    fn push_and_lookup_by_type_and_direction() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(1, 10));
        adj.push(Direction::Out, TypeId(1), entry(2, 11));
        adj.push(Direction::In, TypeId(0), entry(3, 12));

        assert_eq!(adj.entries(Direction::Out, TypeId(0)).len(), 1);
        assert_eq!(adj.entries(Direction::Out, TypeId(1)).len(), 1);
        assert_eq!(adj.entries(Direction::In, TypeId(0)).len(), 1);
        assert_eq!(adj.entries(Direction::In, TypeId(1)).len(), 0);
        assert_eq!(adj.raw_len(), 3);
    }

    #[test]
    fn entries_all_types_covers_every_type() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(1, 10));
        adj.push(Direction::Out, TypeId(1), entry(2, 11));
        let mut seen: Vec<u64> = adj
            .entries_all_types(Direction::Out)
            .map(|(_, e)| e.edge.0)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn live_counts_track_pushes_and_deaths() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(1, 10));
        adj.push(Direction::Out, TypeId(0), entry(2, 11));
        adj.push(Direction::Out, TypeId(1), entry(3, 12));
        assert_eq!(adj.live_count(Direction::Out, TypeId(0)), 2);
        assert_eq!(adj.live_count(Direction::Out, TypeId(1)), 1);
        assert_eq!(adj.live_count(Direction::In, TypeId(0)), 0);

        adj.note_dead(Direction::Out, TypeId(0));
        assert_eq!(adj.live_count(Direction::Out, TypeId(0)), 1);
        let mut counts: Vec<_> = adj.live_counts(Direction::Out).collect();
        counts.sort();
        assert_eq!(counts, vec![(TypeId(0), 1), (TypeId(1), 1)]);
        assert_eq!(adj.dead_len(), 1);
    }

    #[test]
    fn compact_removes_dead_entries() {
        let mut adj = AdjacencyList::new();
        for i in 0..100 {
            adj.push(Direction::Out, TypeId(0), entry(i, i as u32));
        }
        for _ in 0..60 {
            adj.note_dead(Direction::Out, TypeId(0));
        }
        assert!(adj.should_compact());
        // Edges with id < 60 are "expired".
        adj.compact(|e| e.0 >= 60);
        assert_eq!(adj.raw_len(), 40);
        assert_eq!(adj.dead_len(), 0);
        assert_eq!(adj.live_count(Direction::Out, TypeId(0)), 40);
        assert!(!adj.should_compact());
    }

    #[test]
    fn small_lists_do_not_trigger_compaction() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(0, 0));
        adj.note_dead(Direction::Out, TypeId(0));
        assert!(!adj.should_compact());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
    }
}
