//! Per-vertex adjacency lists grouped by direction and edge type.
//!
//! The matcher's *local search* (paper §4.1) repeatedly asks for "edges of
//! type `t` incident to vertex `v` in direction `d`". Grouping adjacency by
//! `(direction, edge type)` makes that query a single map lookup plus a dense
//! scan, instead of a filter over all incident edges.
//!
//! Expired edges are removed lazily: [`crate::DynamicGraph`] drops them from
//! its edge table immediately, and adjacency vectors are compacted once their
//! dead fraction crosses a threshold. Iteration always checks liveness against
//! the edge table, so stale entries are never observable from the public API.

use crate::hash::FxHashMap;
use crate::ids::{EdgeId, Timestamp, TypeId, VertexId};
use serde::{Deserialize, Serialize};

/// Direction of traversal relative to a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Edges whose source is the vertex.
    Out,
    /// Edges whose destination is the vertex.
    In,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// One adjacency entry: an incident edge and the neighbouring endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjEntry {
    /// The incident edge.
    pub edge: EdgeId,
    /// The endpoint on the far side of the edge.
    pub neighbor: VertexId,
    /// Timestamp of the edge (duplicated here to avoid an edge-table lookup
    /// during time-window filtering).
    pub timestamp: Timestamp,
}

/// Adjacency of a single vertex.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjacencyList {
    out: FxHashMap<TypeId, Vec<AdjEntry>>,
    inc: FxHashMap<TypeId, Vec<AdjEntry>>,
    /// Number of entries (across both directions) that refer to expired edges
    /// and have not been compacted away yet.
    dead: usize,
}

impl AdjacencyList {
    /// Creates an empty adjacency list.
    pub fn new() -> Self {
        Self::default()
    }

    fn side(&self, dir: Direction) -> &FxHashMap<TypeId, Vec<AdjEntry>> {
        match dir {
            Direction::Out => &self.out,
            Direction::In => &self.inc,
        }
    }

    fn side_mut(&mut self, dir: Direction) -> &mut FxHashMap<TypeId, Vec<AdjEntry>> {
        match dir {
            Direction::Out => &mut self.out,
            Direction::In => &mut self.inc,
        }
    }

    /// Appends an entry for a newly inserted edge.
    pub fn push(&mut self, dir: Direction, etype: TypeId, entry: AdjEntry) {
        self.side_mut(dir).entry(etype).or_default().push(entry);
    }

    /// Records that one referenced edge has expired (used to decide when to compact).
    pub fn note_dead(&mut self) {
        self.dead += 1;
    }

    /// Iterates raw entries for a direction and edge type. Entries may be stale;
    /// the caller must check liveness against the edge table.
    pub fn entries(&self, dir: Direction, etype: TypeId) -> &[AdjEntry] {
        self.side(dir)
            .get(&etype)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates raw entries for a direction across all edge types.
    pub fn entries_all_types(
        &self,
        dir: Direction,
    ) -> impl Iterator<Item = (TypeId, &AdjEntry)> {
        self.side(dir)
            .iter()
            .flat_map(|(t, v)| v.iter().map(move |e| (*t, e)))
    }

    /// Total number of stored entries (including stale ones).
    pub fn raw_len(&self) -> usize {
        self.out.values().map(Vec::len).sum::<usize>()
            + self.inc.values().map(Vec::len).sum::<usize>()
    }

    /// Number of entries known to be stale.
    pub fn dead_len(&self) -> usize {
        self.dead
    }

    /// True if compaction is worthwhile (more than half of the entries are stale
    /// and there are enough of them to matter).
    pub fn should_compact(&self) -> bool {
        self.dead >= 32 && self.dead * 2 >= self.raw_len()
    }

    /// Removes every entry for which `is_live` returns `false`.
    pub fn compact(&mut self, mut is_live: impl FnMut(EdgeId) -> bool) {
        for map in [&mut self.out, &mut self.inc] {
            map.retain(|_, v| {
                v.retain(|e| is_live(e.edge));
                !v.is_empty()
            });
        }
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(e: u64, n: u32) -> AdjEntry {
        AdjEntry {
            edge: EdgeId(e),
            neighbor: VertexId(n),
            timestamp: Timestamp::from_secs(e as i64),
        }
    }

    #[test]
    fn push_and_lookup_by_type_and_direction() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(1, 10));
        adj.push(Direction::Out, TypeId(1), entry(2, 11));
        adj.push(Direction::In, TypeId(0), entry(3, 12));

        assert_eq!(adj.entries(Direction::Out, TypeId(0)).len(), 1);
        assert_eq!(adj.entries(Direction::Out, TypeId(1)).len(), 1);
        assert_eq!(adj.entries(Direction::In, TypeId(0)).len(), 1);
        assert_eq!(adj.entries(Direction::In, TypeId(1)).len(), 0);
        assert_eq!(adj.raw_len(), 3);
    }

    #[test]
    fn entries_all_types_covers_every_type() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(1, 10));
        adj.push(Direction::Out, TypeId(1), entry(2, 11));
        let mut seen: Vec<u64> = adj
            .entries_all_types(Direction::Out)
            .map(|(_, e)| e.edge.0)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn compact_removes_dead_entries() {
        let mut adj = AdjacencyList::new();
        for i in 0..100 {
            adj.push(Direction::Out, TypeId(0), entry(i, i as u32));
        }
        for _ in 0..60 {
            adj.note_dead();
        }
        assert!(adj.should_compact());
        // Edges with id < 60 are "expired".
        adj.compact(|e| e.0 >= 60);
        assert_eq!(adj.raw_len(), 40);
        assert_eq!(adj.dead_len(), 0);
        assert!(!adj.should_compact());
    }

    #[test]
    fn small_lists_do_not_trigger_compaction() {
        let mut adj = AdjacencyList::new();
        adj.push(Direction::Out, TypeId(0), entry(0, 0));
        adj.note_dead();
        assert!(!adj.should_compact());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
    }
}
