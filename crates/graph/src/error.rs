//! Error types for the graph substrate.

use crate::ids::{EdgeId, TypeId, VertexId};
use std::fmt;

/// Errors returned by [`crate::DynamicGraph`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id did not refer to any vertex in the graph.
    UnknownVertex(VertexId),
    /// An edge id did not refer to a live edge.
    UnknownEdge(EdgeId),
    /// A type id was not produced by this graph's interner.
    UnknownType(TypeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown or expired edge {e}"),
            GraphError::UnknownType(t) => write!(f, "unknown type {t:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_human_readably() {
        assert_eq!(
            GraphError::UnknownVertex(VertexId(3)).to_string(),
            "unknown vertex v3"
        );
        assert!(GraphError::UnknownEdge(EdgeId(1))
            .to_string()
            .contains("e1"));
        assert!(GraphError::UnknownType(TypeId(2))
            .to_string()
            .contains("t2"));
    }
}
