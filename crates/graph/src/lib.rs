//! # streamworks-graph
//!
//! Dynamic multi-relational property-graph substrate for the StreamWorks
//! reproduction (Choudhury et al., *StreamWorks: A System for Dynamic Graph
//! Search*, SIGMOD 2013).
//!
//! The crate provides:
//!
//! * [`DynamicGraph`] — a directed, typed, timestamped multigraph updated one
//!   [`EdgeEvent`] at a time, with optional sliding-window retention.
//! * [`GraphSnapshot`] — a read-only view used by the baseline (static)
//!   matchers.
//! * Identifier newtypes ([`VertexId`], [`EdgeId`], [`TypeId`], [`Timestamp`],
//!   [`Duration`]), interning, attribute maps and adjacency structures shared
//!   by every other StreamWorks crate.
//!
//! The graph deliberately contains **no matching logic**: the incremental
//! SJ-Tree algorithm (the paper's contribution) lives in `streamworks-core`
//! and consumes this crate through the neighbourhood accessors on
//! [`DynamicGraph`].
//!
//! ## Example
//!
//! ```
//! use streamworks_graph::{Direction, DynamicGraph, EdgeEvent, Timestamp};
//!
//! let mut g = DynamicGraph::unbounded();
//! g.ingest(&EdgeEvent::new("10.0.0.1", "IP", "10.0.0.2", "IP", "flow",
//!                          Timestamp::from_secs(1)));
//! g.ingest(&EdgeEvent::new("10.0.0.2", "IP", "10.0.0.3", "IP", "flow",
//!                          Timestamp::from_secs(2)));
//!
//! let v = g.vertex_by_key("10.0.0.2").unwrap();
//! let flow = g.edge_type_id("flow").unwrap();
//! assert_eq!(g.neighbors(v, Direction::Out, flow).count(), 1);
//! assert_eq!(g.neighbors(v, Direction::In, flow).count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adjacency;
mod attr;
mod edge;
mod error;
mod graph;
pub mod hash;
mod ids;
mod interner;
mod snapshot;
mod stats;
mod vertex;
mod window;

pub use adjacency::{AdjEntry, AdjacencyList, Direction};
pub use attr::{AttrValue, Attrs};
pub use edge::{Edge, EdgeEvent};
pub use error::GraphError;
pub use graph::{DynamicGraph, GraphConfig, IngestResult};
pub use ids::{Duration, EdgeId, Timestamp, TypeId, VertexId};
pub use interner::Interner;
pub use snapshot::GraphSnapshot;
pub use stats::GraphStats;
pub use vertex::Vertex;
pub use window::SlidingWindow;
