//! Attribute values attached to vertices and edges.
//!
//! Multi-relational graphs in the paper's target domains carry small property
//! maps: an `Article` vertex has a publication date and a section, a network
//! `flow` edge has a byte count and a destination port. Attributes are the
//! values that query predicates (see `streamworks-query`) evaluate against.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// UTF-8 string value.
    Str(String),
    /// Signed integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl AttrValue {
    /// Returns the string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer contents if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float contents if this is a `Float` (or an `Int`, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(f) => Some(*f),
            AttrValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean contents if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A total order across values of the *same* variant; values of different
    /// variants are ordered by variant tag. Used by range predicates.
    pub fn compare(&self, other: &AttrValue) -> Ordering {
        use AttrValue::*;
        match (self, other) {
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            AttrValue::Str(_) => 0,
            AttrValue::Int(_) => 1,
            AttrValue::Float(_) => 2,
            AttrValue::Bool(_) => 3,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<i32> for AttrValue {
    fn from(i: i32) -> Self {
        AttrValue::Int(i as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// A small ordered attribute map.
///
/// Most vertices and edges carry zero to a handful of attributes, so a sorted
/// `Vec` of pairs beats a hash map in both memory and lookup time. The vector
/// is behind an `Option<Arc>`: an empty map stores nothing at all, and
/// cloning — which the ingest path does once per attributed edge event —
/// is a reference-count bump instead of a deep copy of keys and values.
/// Mutation uses copy-on-write (`Arc::make_mut`), so the sharing is
/// invisible to the API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attrs {
    entries: Option<std::sync::Arc<Vec<(String, AttrValue)>>>,
}

impl Attrs {
    /// Creates an empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an attribute map from an iterator of `(key, value)` pairs.
    /// Later duplicates overwrite earlier ones.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<AttrValue>,
    {
        let mut attrs = Attrs::new();
        for (k, v) in pairs {
            attrs.set(k.into(), v.into());
        }
        attrs
    }

    fn slice(&self) -> &[(String, AttrValue)] {
        self.entries.as_deref().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sets `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        let key = key.into();
        let value = value.into();
        let entries = std::sync::Arc::make_mut(self.entries.get_or_insert_with(Default::default));
        match entries.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => entries[i].1 = value,
            Err(i) => entries.insert(i, (key, value)),
        }
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        let entries = self.slice();
        entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &entries[i].1)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.slice().len()
    }

    /// True if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.slice().is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.slice().iter().map(|(k, v)| (k.as_str(), v))
    }
}

// Serialised as a plain pair list; the Arc is an implementation detail.
impl Serialize for Attrs {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.slice()
                .iter()
                .map(|(k, v)| serde::Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl Deserialize for Attrs {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected array for Attrs"))?;
        let mut attrs = Attrs::new();
        for entry in arr {
            let pair = entry
                .as_array()
                .ok_or_else(|| serde::Error::custom("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(serde::Error::custom("expected [key, value] pair"));
            }
            let key = String::from_value(&pair[0])?;
            let value = AttrValue::from_value(&pair[1])?;
            attrs.set(key, value);
        }
        Ok(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut a = Attrs::new();
        a.set("port", 443i64);
        a.set("proto", "tcp");
        a.set("secure", true);
        assert_eq!(a.get("port").unwrap().as_int(), Some(443));
        assert_eq!(a.get("proto").unwrap().as_str(), Some("tcp"));
        assert_eq!(a.get("secure").unwrap().as_bool(), Some(true));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn set_overwrites_existing_key() {
        let mut a = Attrs::new();
        a.set("x", 1i64);
        a.set("x", 2i64);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get("x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn from_pairs_builds_sorted_map() {
        let a = Attrs::from_pairs([("b", 2i64), ("a", 1i64), ("c", 3i64)]);
        let keys: Vec<_> = a.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn compare_orders_numbers_across_variants() {
        assert_eq!(
            AttrValue::Int(2).compare(&AttrValue::Float(2.5)),
            Ordering::Less
        );
        assert_eq!(
            AttrValue::Float(3.0).compare(&AttrValue::Int(3)),
            Ordering::Equal
        );
        assert_eq!(
            AttrValue::Str("b".into()).compare(&AttrValue::Str("a".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn as_float_widens_int() {
        assert_eq!(AttrValue::Int(5).as_float(), Some(5.0));
        assert_eq!(AttrValue::Bool(true).as_float(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::from("x").to_string(), "x");
        assert_eq!(AttrValue::from(3i64).to_string(), "3");
        assert_eq!(AttrValue::from(true).to_string(), "true");
    }
}
