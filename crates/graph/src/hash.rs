//! A small, fast, non-cryptographic hasher for internal hash maps.
//!
//! The matching hot path hashes small integer keys (vertex ids, type ids,
//! join-key tuples) millions of times per second. The default SipHash used by
//! `std::collections::HashMap` is noticeably slower for these keys, so we ship
//! a tiny FxHash-style multiply-xor hasher (the same construction used by the
//! Rust compiler) and type aliases for maps and sets using it. HashDoS
//! resistance is irrelevant here: all keys are internally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: multiply by a large odd constant and rotate-xor.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_usually_differ() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // A perfect hash would give 10_000 distinct values; require no
        // catastrophic collapse.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(b"hello world, this is a tesT");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
