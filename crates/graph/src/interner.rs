//! String interning for vertex keys and type labels.
//!
//! The data graph identifies vertices by arbitrary external keys (IP
//! addresses, article URIs, user names, ...) and labels vertices and edges
//! with type names ("Article", "mentions", ...). Both are interned to small
//! dense integers so that the hot matching paths never compare or hash
//! strings.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A generic string interner mapping strings to dense `u32` symbols.
///
/// Interning the same string twice returns the same symbol; symbols are
/// allocated consecutively starting at zero, so they can be used as vector
/// indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            by_name: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            names: Vec::with_capacity(cap),
        }
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `name` if it has been interned before.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `sym`, if `sym` was produced by this interner.
    pub fn resolve(&self, sym: u32) -> Option<&str> {
        self.names.get(sym as usize).map(|s| s.as_str())
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Article");
        let b = i.intern("Keyword");
        let a2 = i.intern("Article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let sym = i.intern("mentions");
        assert_eq!(i.resolve(sym), Some("mentions"));
        assert_eq!(i.lookup("mentions"), Some(sym));
        assert_eq!(i.lookup("missing"), None);
        assert_eq!(i.resolve(999), None);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            let sym = i.intern(&format!("label-{n}"));
            assert_eq!(sym, n as u32);
        }
        let collected: Vec<_> = i.iter().map(|(s, _)| s).collect();
        assert_eq!(collected, (0u32..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
