//! Sliding time-window retention for the dynamic graph.
//!
//! The paper's query semantics only ever need edges that can still participate
//! in a match whose time span is below the query window `tW`. The graph is
//! therefore configured with a *retention horizon*: once stream time advances
//! past `timestamp + retention`, an edge is expired and removed from the live
//! graph (and, transitively, from all partial matches that reference it).

use crate::ids::{Duration, EdgeId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tracks live edges in timestamp order and expires those that fall out of the
/// retention horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindow {
    retention: Option<Duration>,
    /// Live edges ordered by timestamp (ties broken by insertion order).
    queue: VecDeque<(Timestamp, EdgeId)>,
    /// High-water mark of observed stream time.
    now: Timestamp,
    expired_total: u64,
}

/// Result of advancing the window: the edges that just expired.
pub type Expired = Vec<EdgeId>;

impl SlidingWindow {
    /// Creates a window with the given retention. `None` retains edges forever.
    pub fn new(retention: Option<Duration>) -> Self {
        SlidingWindow {
            retention,
            queue: VecDeque::new(),
            now: Timestamp(i64::MIN),
            expired_total: 0,
        }
    }

    /// The configured retention horizon.
    pub fn retention(&self) -> Option<Duration> {
        self.retention
    }

    /// Replaces the retention horizon. Edges already expired are not revived;
    /// shrinking the horizon only takes effect at the next insert/advance.
    pub fn set_retention(&mut self, retention: Option<Duration>) {
        self.retention = retention;
    }

    /// The largest timestamp observed so far.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of live (retained) edges.
    pub fn live_len(&self) -> usize {
        self.queue.len()
    }

    /// Total number of edges expired over the window's lifetime.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Registers a new edge and advances stream time to `ts` if it is newer.
    /// Returns the edges that expire as a consequence.
    ///
    /// Out-of-order timestamps are tolerated: the edge is inserted at its
    /// sorted position from the back (streams are nearly ordered, so this is
    /// O(1) amortised), and stream time never moves backwards.
    pub fn insert(&mut self, edge: EdgeId, ts: Timestamp) -> Expired {
        // Insert keeping the queue sorted by timestamp.
        if self.queue.back().map(|(t, _)| *t <= ts).unwrap_or(true) {
            self.queue.push_back((ts, edge));
        } else {
            let pos = self.queue.partition_point(|(t, _)| *t <= ts);
            self.queue.insert(pos, (ts, edge));
        }
        if ts > self.now {
            self.now = ts;
        }
        self.expire_up_to_now()
    }

    /// Advances stream time to `ts` (if newer) without inserting an edge and
    /// returns the edges that expire.
    pub fn advance(&mut self, ts: Timestamp) -> Expired {
        if ts > self.now {
            self.now = ts;
        }
        self.expire_up_to_now()
    }

    /// The timestamp below which edges are expired, if a retention is set.
    pub fn horizon(&self) -> Option<Timestamp> {
        self.retention.map(|r| self.now.minus(r))
    }

    fn expire_up_to_now(&mut self) -> Expired {
        let Some(retention) = self.retention else {
            return Vec::new();
        };
        let cutoff = self.now.minus(retention);
        let mut expired = Vec::new();
        while let Some(&(ts, edge)) = self.queue.front() {
            if ts < cutoff {
                expired.push(edge);
                self.queue.pop_front();
            } else {
                break;
            }
        }
        self.expired_total += expired.len() as u64;
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_retention_never_expires() {
        let mut w = SlidingWindow::new(None);
        for i in 0..1000 {
            let expired = w.insert(EdgeId(i), Timestamp::from_secs(i as i64));
            assert!(expired.is_empty());
        }
        assert_eq!(w.live_len(), 1000);
        assert_eq!(w.expired_total(), 0);
    }

    #[test]
    fn edges_expire_once_out_of_horizon() {
        let mut w = SlidingWindow::new(Some(Duration::from_secs(10)));
        assert!(w.insert(EdgeId(0), Timestamp::from_secs(0)).is_empty());
        assert!(w.insert(EdgeId(1), Timestamp::from_secs(5)).is_empty());
        // t=11: cutoff is 1, so edge at t=0 expires.
        let expired = w.insert(EdgeId(2), Timestamp::from_secs(11));
        assert_eq!(expired, vec![EdgeId(0)]);
        assert_eq!(w.live_len(), 2);
        assert_eq!(w.expired_total(), 1);
    }

    #[test]
    fn advance_without_insert_expires() {
        let mut w = SlidingWindow::new(Some(Duration::from_secs(2)));
        w.insert(EdgeId(0), Timestamp::from_secs(0));
        w.insert(EdgeId(1), Timestamp::from_secs(1));
        let expired = w.advance(Timestamp::from_secs(100));
        assert_eq!(expired.len(), 2);
        assert_eq!(w.live_len(), 0);
    }

    #[test]
    fn out_of_order_inserts_keep_queue_sorted() {
        let mut w = SlidingWindow::new(Some(Duration::from_secs(10)));
        w.insert(EdgeId(0), Timestamp::from_secs(10));
        // Late edge with an older timestamp.
        w.insert(EdgeId(1), Timestamp::from_secs(4));
        w.insert(EdgeId(2), Timestamp::from_secs(7));
        // Advance far enough that everything below t=15 expires, in timestamp order.
        let expired = w.advance(Timestamp::from_secs(25));
        assert_eq!(expired, vec![EdgeId(1), EdgeId(2), EdgeId(0)]);
    }

    #[test]
    fn stream_time_never_regresses() {
        let mut w = SlidingWindow::new(Some(Duration::from_secs(10)));
        w.insert(EdgeId(0), Timestamp::from_secs(50));
        w.insert(EdgeId(1), Timestamp::from_secs(30));
        assert_eq!(w.now(), Timestamp::from_secs(50));
    }

    #[test]
    fn horizon_reflects_retention() {
        let mut w = SlidingWindow::new(Some(Duration::from_secs(10)));
        assert!(w.horizon().is_some());
        w.insert(EdgeId(0), Timestamp::from_secs(100));
        assert_eq!(w.horizon(), Some(Timestamp::from_secs(90)));
        let unbounded = SlidingWindow::new(None);
        assert_eq!(unbounded.horizon(), None);
    }
}
