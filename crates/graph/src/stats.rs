//! Lightweight point-in-time counters describing a [`crate::DynamicGraph`].

use crate::ids::Timestamp;
use serde::{Deserialize, Serialize};

/// A snapshot of basic graph counters, cheap to produce at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertices ever created (vertices are never removed).
    pub vertices: u64,
    /// Edges currently retained in the window.
    pub live_edges: u64,
    /// Edges ingested over the graph's lifetime.
    pub ingested_edges: u64,
    /// Edges expired out of the retention window.
    pub expired_edges: u64,
    /// Number of distinct vertex types.
    pub vertex_types: u64,
    /// Number of distinct edge types.
    pub edge_types: u64,
    /// High-water mark of stream time.
    pub now: Timestamp,
}

impl GraphStats {
    /// Live edges as a fraction of ingested edges (1.0 when nothing expired).
    pub fn live_fraction(&self) -> f64 {
        if self.ingested_edges == 0 {
            1.0
        } else {
            self.live_edges as f64 / self.ingested_edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_fraction_handles_empty_graph() {
        let s = GraphStats {
            vertices: 0,
            live_edges: 0,
            ingested_edges: 0,
            expired_edges: 0,
            vertex_types: 0,
            edge_types: 0,
            now: Timestamp(0),
        };
        assert_eq!(s.live_fraction(), 1.0);
    }

    #[test]
    fn live_fraction_reflects_expiry() {
        let s = GraphStats {
            vertices: 10,
            live_edges: 25,
            ingested_edges: 100,
            expired_edges: 75,
            vertex_types: 2,
            edge_types: 3,
            now: Timestamp(0),
        };
        assert!((s.live_fraction() - 0.25).abs() < 1e-12);
    }
}
