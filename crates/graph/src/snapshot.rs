//! A read-only snapshot view over a [`crate::DynamicGraph`].
//!
//! The baseline matchers in `streamworks-baseline` operate on a static graph
//! (the paper's "repeated search" alternative re-runs a full search over the
//! current graph state on every update). `GraphSnapshot` gives them a narrow,
//! read-only API over the live graph at a point in time, plus candidate-set
//! helpers (all vertices of a type, all edges of a type) that a static matcher
//! typically starts from.

use crate::adjacency::Direction;
use crate::edge::Edge;
use crate::graph::DynamicGraph;
use crate::ids::{EdgeId, TypeId, VertexId};
use crate::vertex::Vertex;

/// A borrowed, read-only view of a [`DynamicGraph`].
#[derive(Clone, Copy)]
pub struct GraphSnapshot<'g> {
    graph: &'g DynamicGraph,
}

impl<'g> GraphSnapshot<'g> {
    /// Wraps a graph in a snapshot view.
    pub fn new(graph: &'g DynamicGraph) -> Self {
        GraphSnapshot { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g DynamicGraph {
        self.graph
    }

    /// Vertex lookup.
    pub fn vertex(&self, v: VertexId) -> Option<&'g Vertex> {
        self.graph.vertex(v)
    }

    /// Live edge lookup.
    pub fn edge(&self, e: EdgeId) -> Option<&'g Edge> {
        self.graph.edge(e)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.graph.live_edge_count()
    }

    /// All vertices of the given type.
    pub fn vertices_with_type(&self, vtype: TypeId) -> impl Iterator<Item = &'g Vertex> + 'g {
        self.graph.vertices().filter(move |v| v.vtype == vtype)
    }

    /// All live edges of the given type.
    pub fn edges_with_type(&self, etype: TypeId) -> impl Iterator<Item = &'g Edge> + 'g {
        self.graph.edges().filter(move |e| e.etype == etype)
    }

    /// Live neighbourhood of `v` (direction + edge type filtered).
    pub fn neighbors(
        &self,
        v: VertexId,
        dir: Direction,
        etype: TypeId,
    ) -> impl Iterator<Item = (&'g Edge, VertexId)> + 'g {
        self.graph.neighbors(v, dir, etype)
    }

    /// Live incident edges of `v` in a direction, any type.
    pub fn incident_edges_any_type(
        &self,
        v: VertexId,
        dir: Direction,
    ) -> impl Iterator<Item = &'g Edge> + 'g {
        self.graph.incident_edges_any_type(v, dir)
    }

    /// Live degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.graph.degree(v)
    }

    /// Resolves a vertex type label.
    pub fn vertex_type_id(&self, name: &str) -> Option<TypeId> {
        self.graph.vertex_type_id(name)
    }

    /// Resolves an edge type label.
    pub fn edge_type_id(&self, name: &str) -> Option<TypeId> {
        self.graph.edge_type_id(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeEvent;
    use crate::ids::Timestamp;

    fn sample_graph() -> DynamicGraph {
        let mut g = DynamicGraph::unbounded();
        g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(1),
        ));
        g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "loc1",
            "Location",
            "located",
            Timestamp::from_secs(2),
        ));
        g.ingest(&EdgeEvent::new(
            "a2",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(3),
        ));
        g
    }

    #[test]
    fn candidate_sets_by_type() {
        let g = sample_graph();
        let s = GraphSnapshot::new(&g);
        let article = s.vertex_type_id("Article").unwrap();
        let mentions = s.edge_type_id("mentions").unwrap();
        assert_eq!(s.vertices_with_type(article).count(), 2);
        assert_eq!(s.edges_with_type(mentions).count(), 2);
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edge_count(), 3);
    }

    #[test]
    fn snapshot_neighbourhood_matches_graph() {
        let g = sample_graph();
        let s = GraphSnapshot::new(&g);
        let k1 = g.vertex_by_key("k1").unwrap();
        let mentions = s.edge_type_id("mentions").unwrap();
        let incoming: Vec<_> = s.neighbors(k1, Direction::In, mentions).collect();
        assert_eq!(incoming.len(), 2);
        assert_eq!(s.degree(k1), 2);
    }
}
