//! Streaming log-bucketed histogram.
//!
//! Used for degree distributions and latency measurements. Values are placed
//! into power-of-two buckets, which keeps the structure tiny (64 counters)
//! while preserving order-of-magnitude shape — exactly the granularity the
//! query planner needs to distinguish "rare" from "frequent" structures.

use serde::{Deserialize, Serialize};

/// A histogram over `u64` values with power-of-two bucket boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[i]` counts values `v` with `floor(log2(v.max(1))) == i`
    /// (bucket 0 also counts zero).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        63 - value.max(1).leading_zeros() as usize
    }

    /// Records a value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile: returns the *upper bound* of the bucket that
    /// contains the `q`-quantile observation (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i is 2^(i+1) - 1, clamped to observed max.
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter_map(|(i, &c)| {
            if c == 0 {
                None
            } else {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                Some((lower, upper, c))
            }
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn record_tracks_min_max_mean() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn zero_goes_into_first_bucket() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].2, 2);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q10 = h.quantile(0.1).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99 <= 1000);
        // The median of 1..=1000 is ~500; the bucket upper bound containing it
        // is 511.
        assert_eq!(q50, 511);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
        assert_eq!(a.sum(), 505);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        let mut h = LogHistogram::new();
        h.record(9); // bucket 3: [8, 15]
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(8, 15, 1)]);
    }
}
