//! Vertex-, edge- and typed-edge-triple frequency distributions.
//!
//! This is the second of the three summary kinds listed in paper §4.3
//! ("distribution of vertex and edge types"). On top of plain per-type counts
//! we track *typed edge triples* `(source vertex type, edge type, destination
//! vertex type)`, which is exactly the statistic the query planner needs to
//! estimate how many data edges can match a given query edge.

use serde::{Deserialize, Serialize};
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::TypeId;

/// A `(src vertex type, edge type, dst vertex type)` signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeTripleKey {
    /// Type of the source vertex.
    pub src_vtype: TypeId,
    /// Type of the edge.
    pub etype: TypeId,
    /// Type of the destination vertex.
    pub dst_vtype: TypeId,
}

/// Frequency distribution of vertex types, edge types and typed edge triples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TypeDistribution {
    vertex_counts: Vec<u64>,
    edge_counts: Vec<u64>,
    triple_counts: FxHashMap<EdgeTripleKey, u64>,
    total_vertices: u64,
    total_edges: u64,
}

impl TypeDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(counts: &mut Vec<u64>, idx: usize, delta: i64) {
        if idx >= counts.len() {
            counts.resize(idx + 1, 0);
        }
        if delta >= 0 {
            counts[idx] += delta as u64;
        } else {
            counts[idx] = counts[idx].saturating_sub((-delta) as u64);
        }
    }

    /// Records a newly observed vertex of type `vtype`.
    pub fn observe_vertex(&mut self, vtype: TypeId) {
        Self::bump(&mut self.vertex_counts, vtype.index(), 1);
        self.total_vertices += 1;
    }

    /// Records a newly inserted edge.
    pub fn observe_edge(&mut self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) {
        Self::bump(&mut self.edge_counts, etype.index(), 1);
        self.total_edges += 1;
        *self
            .triple_counts
            .entry(EdgeTripleKey {
                src_vtype,
                etype,
                dst_vtype,
            })
            .or_insert(0) += 1;
    }

    /// Records the expiry of an edge (reverses [`Self::observe_edge`]).
    pub fn retract_edge(&mut self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) {
        Self::bump(&mut self.edge_counts, etype.index(), -1);
        self.total_edges = self.total_edges.saturating_sub(1);
        if let Some(c) = self.triple_counts.get_mut(&EdgeTripleKey {
            src_vtype,
            etype,
            dst_vtype,
        }) {
            *c = c.saturating_sub(1);
        }
    }

    /// Count of vertices with the given type.
    pub fn vertex_count(&self, vtype: TypeId) -> u64 {
        self.vertex_counts.get(vtype.index()).copied().unwrap_or(0)
    }

    /// Count of live edges with the given type.
    pub fn edge_count(&self, etype: TypeId) -> u64 {
        self.edge_counts.get(etype.index()).copied().unwrap_or(0)
    }

    /// Count of live edges matching a typed triple.
    pub fn triple_count(&self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) -> u64 {
        self.triple_counts
            .get(&EdgeTripleKey {
                src_vtype,
                etype,
                dst_vtype,
            })
            .copied()
            .unwrap_or(0)
    }

    /// Total vertices observed.
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// Total live edges.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Relative frequency of an edge type among all live edges (1.0 when the
    /// distribution is empty, i.e. "no information").
    pub fn edge_type_frequency(&self, etype: TypeId) -> f64 {
        if self.total_edges == 0 {
            1.0
        } else {
            self.edge_count(etype) as f64 / self.total_edges as f64
        }
    }

    /// Iterates non-zero typed triples.
    pub fn triples(&self) -> impl Iterator<Item = (EdgeTripleKey, u64)> + '_ {
        self.triple_counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (*k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TypeId = TypeId(0);
    const K: TypeId = TypeId(1);
    const MENTIONS: TypeId = TypeId(0);
    const LOCATED: TypeId = TypeId(1);

    #[test]
    fn observe_and_query_counts() {
        let mut d = TypeDistribution::new();
        d.observe_vertex(A);
        d.observe_vertex(A);
        d.observe_vertex(K);
        d.observe_edge(A, MENTIONS, K);
        d.observe_edge(A, MENTIONS, K);
        d.observe_edge(A, LOCATED, K);

        assert_eq!(d.vertex_count(A), 2);
        assert_eq!(d.vertex_count(K), 1);
        assert_eq!(d.edge_count(MENTIONS), 2);
        assert_eq!(d.triple_count(A, MENTIONS, K), 2);
        assert_eq!(d.triple_count(K, MENTIONS, A), 0);
        assert_eq!(d.total_edges(), 3);
        assert_eq!(d.total_vertices(), 3);
    }

    #[test]
    fn retraction_reverses_observation() {
        let mut d = TypeDistribution::new();
        d.observe_edge(A, MENTIONS, K);
        d.observe_edge(A, MENTIONS, K);
        d.retract_edge(A, MENTIONS, K);
        assert_eq!(d.edge_count(MENTIONS), 1);
        assert_eq!(d.triple_count(A, MENTIONS, K), 1);
        assert_eq!(d.total_edges(), 1);
        // Retracting below zero saturates.
        d.retract_edge(A, MENTIONS, K);
        d.retract_edge(A, MENTIONS, K);
        assert_eq!(d.edge_count(MENTIONS), 0);
        assert_eq!(d.total_edges(), 0);
    }

    #[test]
    fn frequency_defaults_to_one_when_empty() {
        let d = TypeDistribution::new();
        assert_eq!(d.edge_type_frequency(MENTIONS), 1.0);
        let mut d = d;
        d.observe_edge(A, MENTIONS, K);
        d.observe_edge(A, LOCATED, K);
        assert!((d.edge_type_frequency(MENTIONS) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triples_iterator_skips_zeroed_entries() {
        let mut d = TypeDistribution::new();
        d.observe_edge(A, MENTIONS, K);
        d.retract_edge(A, MENTIONS, K);
        d.observe_edge(A, LOCATED, K);
        let triples: Vec<_> = d.triples().collect();
        assert_eq!(triples.len(), 1);
        assert_eq!(triples[0].0.etype, LOCATED);
    }

    #[test]
    fn unknown_types_count_zero() {
        let d = TypeDistribution::new();
        assert_eq!(d.vertex_count(TypeId(9)), 0);
        assert_eq!(d.edge_count(TypeId(9)), 0);
    }
}
