//! # streamworks-summarize
//!
//! Streaming graph summarization for the StreamWorks reproduction
//! (paper §4.3): degree distribution, vertex/edge type distribution and the
//! multi-relational triad (typed wedge) distribution.
//!
//! The summaries are consumed by the query planner in `streamworks-query` to
//! estimate the selectivity of candidate search primitives, fulfilling the
//! paper's goal of "push\[ing\] the most selective subgraph at the lowest
//! level in the subgraph join-tree" (§4.1).
//!
//! ```
//! use streamworks_graph::{DynamicGraph, EdgeEvent, Timestamp};
//! use streamworks_summarize::{GraphSummary, SummaryConfig};
//!
//! let mut graph = DynamicGraph::unbounded();
//! let mut summary = GraphSummary::with_config(SummaryConfig::full());
//! let ev = EdgeEvent::new("a1", "Article", "k1", "Keyword", "mentions",
//!                         Timestamp::from_secs(1));
//! let r = graph.ingest(&ev);
//! let edge = graph.edge(r.edge).unwrap().clone();
//! summary.observe_insertion(&graph, &edge);
//! assert_eq!(summary.edges_observed(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod degree;
mod histogram;
mod summary;
mod triads;
mod type_dist;

pub use degree::DegreeDistribution;
pub use histogram::LogHistogram;
pub use summary::{GraphSummary, SummaryConfig};
pub use triads::{Orientation, TriadConfig, TriadDistribution, WedgeKey};
pub use type_dist::{EdgeTripleKey, TypeDistribution};
