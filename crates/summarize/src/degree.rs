//! Streaming degree distribution (overall and per vertex type).
//!
//! This is the first summary kind of paper §4.3. The planner uses the average
//! out-/in-degree restricted to an edge type to estimate the fan-out of a
//! local search step, and the histograms give the skew ("is this graph
//! hub-dominated?") reported by the experiment binaries.

use crate::histogram::LogHistogram;
use serde::{Deserialize, Serialize};
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Direction, TypeId};

/// Key for per-(vertex type, direction, edge type) degree accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct FanKey {
    vtype: TypeId,
    dir_out: bool,
    etype: TypeId,
}

/// Streaming degree statistics.
///
/// `observe_edge` is called once per inserted edge with the endpoint vertex
/// types; `retract_edge` reverses it on expiry. The structure tracks, for each
/// `(vertex type, direction, edge type)` combination, the total number of edge
/// endpoints seen, which together with the vertex-type population gives the
/// average typed degree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DegreeDistribution {
    /// Total live edge-endpoint count per (vtype, direction, etype).
    fan_counts: FxHashMap<FanKey, u64>,
    /// Histogram of *observed* vertex degrees, refreshed via `record_degree_sample`.
    degree_hist: LogHistogram,
    /// Per vertex type histogram of observed degrees.
    per_type_hist: FxHashMap<TypeId, LogHistogram>,
    /// Live edges observed (each contributes two endpoints).
    live_edges: u64,
}

impl DegreeDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the insertion of an edge with the given endpoint vertex types.
    pub fn observe_edge(&mut self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) {
        *self
            .fan_counts
            .entry(FanKey {
                vtype: src_vtype,
                dir_out: true,
                etype,
            })
            .or_insert(0) += 1;
        *self
            .fan_counts
            .entry(FanKey {
                vtype: dst_vtype,
                dir_out: false,
                etype,
            })
            .or_insert(0) += 1;
        self.live_edges += 1;
    }

    /// Records the expiry of an edge (reverses [`Self::observe_edge`]).
    pub fn retract_edge(&mut self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) {
        for (vtype, dir_out) in [(src_vtype, true), (dst_vtype, false)] {
            if let Some(c) = self.fan_counts.get_mut(&FanKey {
                vtype,
                dir_out,
                etype,
            }) {
                *c = c.saturating_sub(1);
            }
        }
        self.live_edges = self.live_edges.saturating_sub(1);
    }

    /// Records one vertex's current degree into the degree histograms.
    /// Typically sampled periodically or during a snapshot rebuild.
    pub fn record_degree_sample(&mut self, vtype: TypeId, degree: u64) {
        self.degree_hist.record(degree);
        self.per_type_hist.entry(vtype).or_default().record(degree);
    }

    /// Number of live edge endpoints of the given kind.
    pub fn typed_endpoint_count(&self, vtype: TypeId, dir: Direction, etype: TypeId) -> u64 {
        self.fan_counts
            .get(&FanKey {
                vtype,
                dir_out: matches!(dir, Direction::Out),
                etype,
            })
            .copied()
            .unwrap_or(0)
    }

    /// Average number of `etype` edges in direction `dir` per vertex of type
    /// `vtype`, given the population of that vertex type.
    ///
    /// Returns a small default (1.0) when the population is unknown, so that
    /// planners fall back to neutral estimates rather than dividing by zero.
    pub fn avg_typed_degree(
        &self,
        vtype: TypeId,
        dir: Direction,
        etype: TypeId,
        vertex_population: u64,
    ) -> f64 {
        if vertex_population == 0 {
            return 1.0;
        }
        self.typed_endpoint_count(vtype, dir, etype) as f64 / vertex_population as f64
    }

    /// Overall degree histogram (from degree samples).
    pub fn histogram(&self) -> &LogHistogram {
        &self.degree_hist
    }

    /// Degree histogram of a particular vertex type, if sampled.
    pub fn histogram_for_type(&self, vtype: TypeId) -> Option<&LogHistogram> {
        self.per_type_hist.get(&vtype)
    }

    /// Number of live edges accounted for.
    pub fn live_edges(&self) -> u64 {
        self.live_edges
    }

    /// Clears the degree-sample histograms (used before a fresh sampling pass).
    pub fn reset_samples(&mut self) {
        self.degree_hist = LogHistogram::new();
        self.per_type_hist.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: TypeId = TypeId(0);
    const USER: TypeId = TypeId(1);
    const FLOW: TypeId = TypeId(0);
    const LOGIN: TypeId = TypeId(1);

    #[test]
    fn observe_tracks_per_direction_counts() {
        let mut d = DegreeDistribution::new();
        d.observe_edge(IP, FLOW, IP);
        d.observe_edge(IP, FLOW, IP);
        d.observe_edge(USER, LOGIN, IP);

        assert_eq!(d.typed_endpoint_count(IP, Direction::Out, FLOW), 2);
        assert_eq!(d.typed_endpoint_count(IP, Direction::In, FLOW), 2);
        assert_eq!(d.typed_endpoint_count(USER, Direction::Out, LOGIN), 1);
        assert_eq!(d.typed_endpoint_count(IP, Direction::In, LOGIN), 1);
        assert_eq!(d.typed_endpoint_count(USER, Direction::In, LOGIN), 0);
        assert_eq!(d.live_edges(), 3);
    }

    #[test]
    fn retract_reverses_observe() {
        let mut d = DegreeDistribution::new();
        d.observe_edge(IP, FLOW, IP);
        d.retract_edge(IP, FLOW, IP);
        assert_eq!(d.typed_endpoint_count(IP, Direction::Out, FLOW), 0);
        assert_eq!(d.live_edges(), 0);
    }

    #[test]
    fn avg_typed_degree_divides_by_population() {
        let mut d = DegreeDistribution::new();
        for _ in 0..10 {
            d.observe_edge(IP, FLOW, IP);
        }
        assert!((d.avg_typed_degree(IP, Direction::Out, FLOW, 5) - 2.0).abs() < 1e-12);
        // Unknown population falls back to a neutral 1.0.
        assert_eq!(d.avg_typed_degree(IP, Direction::Out, FLOW, 0), 1.0);
    }

    #[test]
    fn degree_samples_populate_histograms() {
        let mut d = DegreeDistribution::new();
        d.record_degree_sample(IP, 4);
        d.record_degree_sample(IP, 100);
        d.record_degree_sample(USER, 1);
        assert_eq!(d.histogram().count(), 3);
        assert_eq!(d.histogram_for_type(IP).unwrap().count(), 2);
        assert_eq!(d.histogram_for_type(USER).unwrap().count(), 1);
        assert!(d.histogram_for_type(TypeId(9)).is_none());
        d.reset_samples();
        assert_eq!(d.histogram().count(), 0);
    }
}
