//! Multi-relational triad (two-edge path) distribution.
//!
//! The third summary of paper §4.3 is "the frequency distribution of
//! multi-relational triad structures". We count *typed wedges*: ordered pairs
//! of edges sharing a centre vertex, keyed by the centre's vertex type, the
//! two edge types and their orientations relative to the centre. A two-edge
//! query primitive (the most common SJ-Tree leaf) corresponds to exactly one
//! wedge signature, so this distribution directly estimates leaf selectivity.
//!
//! Exact streaming maintenance of wedge counts costs `O(degree)` per edge; to
//! keep per-edge cost bounded on hub vertices we scan at most
//! [`TriadConfig::neighbor_cap`] incident edges and scale the increment by the
//! fraction scanned (uniform-sampling estimator).

use serde::{Deserialize, Serialize};
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Direction, DynamicGraph, Edge, TypeId};

/// Orientation of an edge relative to the wedge's centre vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Orientation {
    /// Edge points away from the centre (centre is the source).
    Outgoing,
    /// Edge points into the centre (centre is the destination).
    Incoming,
}

/// A typed wedge signature: centre vertex type plus the two incident edge
/// legs, stored in canonical (sorted) order so that the signature does not
/// depend on arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WedgeKey {
    /// Vertex type of the centre.
    pub center_vtype: TypeId,
    /// First leg (canonically the smaller of the two).
    pub leg_a: (TypeId, Orientation),
    /// Second leg.
    pub leg_b: (TypeId, Orientation),
}

impl WedgeKey {
    /// Builds a canonical wedge key from two legs in either order.
    pub fn new(
        center_vtype: TypeId,
        leg1: (TypeId, Orientation),
        leg2: (TypeId, Orientation),
    ) -> Self {
        let (leg_a, leg_b) = if leg1 <= leg2 { (leg1, leg2) } else { (leg2, leg1) };
        WedgeKey {
            center_vtype,
            leg_a,
            leg_b,
        }
    }
}

/// Configuration of the triad counter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TriadConfig {
    /// Maximum incident edges scanned per endpoint per update; beyond this the
    /// counter switches to a scaled sample.
    pub neighbor_cap: usize,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig { neighbor_cap: 64 }
    }
}

/// Approximate streaming distribution of typed wedges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TriadDistribution {
    config: TriadConfig,
    counts: FxHashMap<WedgeKey, f64>,
    total: f64,
    updates: u64,
}

impl TriadDistribution {
    /// Creates a counter with the default configuration.
    pub fn new() -> Self {
        Self::with_config(TriadConfig::default())
    }

    /// Creates a counter with an explicit configuration.
    pub fn with_config(config: TriadConfig) -> Self {
        TriadDistribution {
            config,
            counts: FxHashMap::default(),
            total: 0.0,
            updates: 0,
        }
    }

    /// Observes a newly inserted edge: every wedge the new edge forms with an
    /// existing incident edge at either endpoint is counted (possibly scaled,
    /// see module docs).
    ///
    /// Must be called *after* the edge has been inserted into `graph`.
    pub fn observe_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        self.updates += 1;
        // Wedges centred at the source: new edge is Outgoing there.
        self.count_wedges_at(graph, edge, edge.src, Orientation::Outgoing);
        // Wedges centred at the destination: new edge is Incoming there.
        self.count_wedges_at(graph, edge, edge.dst, Orientation::Incoming);
    }

    fn count_wedges_at(
        &mut self,
        graph: &DynamicGraph,
        new_edge: &Edge,
        center: streamworks_graph::VertexId,
        new_orientation: Orientation,
    ) {
        let Some(center_v) = graph.vertex(center) else {
            return;
        };
        let center_vtype = center_v.vtype;
        let degree = graph.degree(center) as usize;
        // Scale factor if we only look at a sample of the neighbourhood.
        let cap = self.config.neighbor_cap;
        let scale = if degree > cap {
            degree as f64 / cap as f64
        } else {
            1.0
        };
        let mut scanned = 0usize;
        // Scan both directions; stop once the cap is hit.
        'outer: for dir in [Direction::Out, Direction::In] {
            for other in graph.incident_edges_any_type(center, dir) {
                if other.id == new_edge.id {
                    continue;
                }
                let other_orientation = match dir {
                    Direction::Out => Orientation::Outgoing,
                    Direction::In => Orientation::Incoming,
                };
                let key = WedgeKey::new(
                    center_vtype,
                    (new_edge.etype, new_orientation),
                    (other.etype, other_orientation),
                );
                *self.counts.entry(key).or_insert(0.0) += scale;
                self.total += scale;
                scanned += 1;
                if scanned >= cap {
                    break 'outer;
                }
            }
        }
    }

    /// Estimated count of wedges matching a signature.
    pub fn wedge_count(&self, key: &WedgeKey) -> f64 {
        self.counts.get(key).copied().unwrap_or(0.0)
    }

    /// Estimated total number of wedges observed.
    pub fn total_wedges(&self) -> f64 {
        self.total
    }

    /// Relative frequency of a wedge signature (1.0 when no wedges observed,
    /// i.e. "no information").
    pub fn wedge_frequency(&self, key: &WedgeKey) -> f64 {
        if self.total <= 0.0 {
            1.0
        } else {
            self.wedge_count(key) / self.total
        }
    }

    /// Number of edge observations processed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Iterates non-zero wedge signatures with their estimated counts.
    pub fn wedges(&self) -> impl Iterator<Item = (&WedgeKey, f64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Exactly recomputes the distribution from the live edges of `graph`
    /// (O(sum of squared degrees); used by tests and periodic re-calibration).
    pub fn rebuild_exact(graph: &DynamicGraph) -> Self {
        let mut dist = TriadDistribution::with_config(TriadConfig {
            neighbor_cap: usize::MAX,
        });
        for v in graph.vertices() {
            // Collect incident live edges with orientations.
            let mut legs: Vec<(TypeId, Orientation, u64)> = Vec::new();
            for e in graph.incident_edges_any_type(v.id, Direction::Out) {
                legs.push((e.etype, Orientation::Outgoing, e.id.0));
            }
            for e in graph.incident_edges_any_type(v.id, Direction::In) {
                legs.push((e.etype, Orientation::Incoming, e.id.0));
            }
            for i in 0..legs.len() {
                for j in (i + 1)..legs.len() {
                    // A pair of distinct incident edges forms one wedge.
                    if legs[i].2 == legs[j].2 {
                        continue;
                    }
                    let key = WedgeKey::new(
                        v.vtype,
                        (legs[i].0, legs[i].1),
                        (legs[j].0, legs[j].1),
                    );
                    *dist.counts.entry(key).or_insert(0.0) += 1.0;
                    dist.total += 1.0;
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};

    fn ingest(g: &mut DynamicGraph, src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) {
        let ev = EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t));
        let r = g.ingest(&ev);
        // Mirror what GraphSummary does: observe after insertion.
        let edge = g.edge(r.edge).unwrap().clone();
        // Tests call observe explicitly where needed.
        let _ = edge;
    }

    #[test]
    fn wedge_key_is_canonical() {
        let a = WedgeKey::new(
            TypeId(0),
            (TypeId(1), Orientation::Outgoing),
            (TypeId(2), Orientation::Incoming),
        );
        let b = WedgeKey::new(
            TypeId(0),
            (TypeId(2), Orientation::Incoming),
            (TypeId(1), Orientation::Outgoing),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_counts_match_exact_on_small_graph() {
        let mut g = DynamicGraph::unbounded();
        let mut dist = TriadDistribution::new();
        let events = [
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
            ("a1", "Article", "l1", "Location", "located", 3),
            ("a2", "Article", "l1", "Location", "located", 4),
        ];
        for (s, st, d, dt, et, t) in events {
            let ev = EdgeEvent::new(s, st, d, dt, et, Timestamp::from_secs(t));
            let r = g.ingest(&ev);
            let edge = g.edge(r.edge).unwrap().clone();
            dist.observe_edge(&g, &edge);
        }
        let exact = TriadDistribution::rebuild_exact(&g);
        assert_eq!(dist.total_wedges(), exact.total_wedges());
        for (key, count) in exact.wedges() {
            assert!(
                (dist.wedge_count(key) - count).abs() < 1e-9,
                "mismatch for {key:?}"
            );
        }
    }

    #[test]
    fn exact_rebuild_counts_wedges() {
        let mut g = DynamicGraph::unbounded();
        // Star: k1 is mentioned by 3 articles -> C(3,2) = 3 wedges at k1.
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        ingest(&mut g, "a2", "Article", "k1", "Keyword", "mentions", 2);
        ingest(&mut g, "a3", "Article", "k1", "Keyword", "mentions", 3);
        let exact = TriadDistribution::rebuild_exact(&g);
        assert_eq!(exact.total_wedges(), 3.0);
        let key = WedgeKey::new(
            g.vertex_type_id("Keyword").unwrap(),
            (g.edge_type_id("mentions").unwrap(), Orientation::Incoming),
            (g.edge_type_id("mentions").unwrap(), Orientation::Incoming),
        );
        assert_eq!(exact.wedge_count(&key), 3.0);
        assert!((exact.wedge_frequency(&key) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capped_counting_scales_estimates() {
        let mut g = DynamicGraph::unbounded();
        let mut dist = TriadDistribution::with_config(TriadConfig { neighbor_cap: 8 });
        // Hub with 100 incoming mention edges.
        for i in 0..100 {
            let ev = EdgeEvent::new(
                format!("a{i}"),
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            );
            let r = g.ingest(&ev);
            let edge = g.edge(r.edge).unwrap().clone();
            dist.observe_edge(&g, &edge);
        }
        let exact = TriadDistribution::rebuild_exact(&g);
        // Exact count is C(100,2) = 4950. The sampled estimate should be within
        // a factor of ~2 of the truth (it's a deterministic prefix sample of a
        // symmetric star, so in practice it is much closer).
        let key_count = dist.total_wedges();
        assert!(key_count > exact.total_wedges() * 0.4);
        assert!(key_count < exact.total_wedges() * 2.5);
        assert_eq!(dist.updates(), 100);
    }

    #[test]
    fn empty_distribution_has_neutral_frequency() {
        let dist = TriadDistribution::new();
        let key = WedgeKey::new(
            TypeId(0),
            (TypeId(0), Orientation::Outgoing),
            (TypeId(0), Orientation::Outgoing),
        );
        assert_eq!(dist.wedge_frequency(&key), 1.0);
        assert_eq!(dist.total_wedges(), 0.0);
    }
}
