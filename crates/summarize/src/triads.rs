//! Multi-relational triad (two-edge path) distribution.
//!
//! The third summary of paper §4.3 is "the frequency distribution of
//! multi-relational triad structures". We count *typed wedges*: ordered pairs
//! of edges sharing a centre vertex, keyed by the centre's vertex type, the
//! two edge types and their orientations relative to the centre. A two-edge
//! query primitive (the most common SJ-Tree leaf) corresponds to exactly one
//! wedge signature, so this distribution directly estimates leaf selectivity.
//!
//! The wedge signature of a neighbour depends only on its *type group*, never
//! on the neighbour's identity, so the streaming update reads the graph's
//! per-`(direction, type)` live-edge counters instead of scanning the
//! neighbourhood: one counter increment per distinct incident type group —
//! `O(#types)` per edge, exact, independent of degree. (Earlier revisions
//! sampled a capped number of neighbours and scaled; counter-based
//! maintenance made the sampling machinery unnecessary.)

use serde::{Deserialize, Serialize};
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{Direction, DynamicGraph, Edge, TypeId};

/// Orientation of an edge relative to the wedge's centre vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Orientation {
    /// Edge points away from the centre (centre is the source).
    Outgoing,
    /// Edge points into the centre (centre is the destination).
    Incoming,
}

/// A typed wedge signature: centre vertex type plus the two incident edge
/// legs, stored in canonical (sorted) order so that the signature does not
/// depend on arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WedgeKey {
    /// Vertex type of the centre.
    pub center_vtype: TypeId,
    /// First leg (canonically the smaller of the two).
    pub leg_a: (TypeId, Orientation),
    /// Second leg.
    pub leg_b: (TypeId, Orientation),
}

impl WedgeKey {
    /// Builds a canonical wedge key from two legs in either order.
    pub fn new(
        center_vtype: TypeId,
        leg1: (TypeId, Orientation),
        leg2: (TypeId, Orientation),
    ) -> Self {
        let (leg_a, leg_b) = if leg1 <= leg2 {
            (leg1, leg2)
        } else {
            (leg2, leg1)
        };
        WedgeKey {
            center_vtype,
            leg_a,
            leg_b,
        }
    }
}

/// Configuration of the triad counter.
///
/// Currently empty: streaming maintenance is exact and O(#types) per edge,
/// so the former neighbourhood-sampling cap is gone. Kept as a struct so
/// future options (e.g. per-type filters) remain a non-breaking change.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TriadConfig {}

/// Approximate streaming distribution of typed wedges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TriadDistribution {
    config: TriadConfig,
    counts: FxHashMap<WedgeKey, f64>,
    total: f64,
    updates: u64,
}

impl TriadDistribution {
    /// Creates a counter with the default configuration.
    pub fn new() -> Self {
        Self::with_config(TriadConfig::default())
    }

    /// Creates a counter with an explicit configuration.
    pub fn with_config(config: TriadConfig) -> Self {
        TriadDistribution {
            config,
            counts: FxHashMap::default(),
            total: 0.0,
            updates: 0,
        }
    }

    /// Observes a newly inserted edge: every wedge the new edge forms with an
    /// existing incident edge at either endpoint is counted (possibly scaled,
    /// see module docs).
    ///
    /// Must be called *after* the edge has been inserted into `graph`.
    pub fn observe_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        self.updates += 1;
        // Wedges centred at the source: new edge is Outgoing there.
        self.count_wedges_at(graph, edge, edge.src, Orientation::Outgoing);
        // Wedges centred at the destination: new edge is Incoming there.
        self.count_wedges_at(graph, edge, edge.dst, Orientation::Incoming);
    }

    fn count_wedges_at(
        &mut self,
        graph: &DynamicGraph,
        new_edge: &Edge,
        center: streamworks_graph::VertexId,
        new_orientation: Orientation,
    ) {
        let Some(center_v) = graph.vertex(center) else {
            return;
        };
        let center_vtype = center_v.vtype;
        let new_leg = (new_edge.etype, new_orientation);
        // One update per distinct (type, orientation) group of live incident
        // edges — the wedge key never depends on the specific neighbour.
        for (dir, orientation) in [
            (Direction::Out, Orientation::Outgoing),
            (Direction::In, Orientation::Incoming),
        ] {
            for (etype, count) in graph.live_type_counts(center, dir) {
                let mut count = count;
                // The just-inserted edge sits in its own group at this centre;
                // it does not form a wedge with itself.
                if etype == new_edge.etype
                    && ((orientation == Orientation::Outgoing && center == new_edge.src)
                        || (orientation == Orientation::Incoming && center == new_edge.dst))
                {
                    count -= 1;
                }
                if count == 0 {
                    continue;
                }
                let key = WedgeKey::new(center_vtype, new_leg, (etype, orientation));
                *self.counts.entry(key).or_insert(0.0) += count as f64;
                self.total += count as f64;
            }
        }
    }

    /// Estimated count of wedges matching a signature.
    pub fn wedge_count(&self, key: &WedgeKey) -> f64 {
        self.counts.get(key).copied().unwrap_or(0.0)
    }

    /// Estimated total number of wedges observed.
    pub fn total_wedges(&self) -> f64 {
        self.total
    }

    /// Relative frequency of a wedge signature (1.0 when no wedges observed,
    /// i.e. "no information").
    pub fn wedge_frequency(&self, key: &WedgeKey) -> f64 {
        if self.total <= 0.0 {
            1.0
        } else {
            self.wedge_count(key) / self.total
        }
    }

    /// Number of edge observations processed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Iterates non-zero wedge signatures with their estimated counts.
    pub fn wedges(&self) -> impl Iterator<Item = (&WedgeKey, f64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Exactly recomputes the distribution from the live edges of `graph`
    /// (O(sum of squared degrees); used by tests and periodic re-calibration).
    pub fn rebuild_exact(graph: &DynamicGraph) -> Self {
        let mut dist = TriadDistribution::new();
        for v in graph.vertices() {
            // Collect incident live edges with orientations.
            let mut legs: Vec<(TypeId, Orientation, u64)> = Vec::new();
            for e in graph.incident_edges_any_type(v.id, Direction::Out) {
                legs.push((e.etype, Orientation::Outgoing, e.id.0));
            }
            for e in graph.incident_edges_any_type(v.id, Direction::In) {
                legs.push((e.etype, Orientation::Incoming, e.id.0));
            }
            for i in 0..legs.len() {
                for j in (i + 1)..legs.len() {
                    // A pair of distinct incident edges forms one wedge.
                    if legs[i].2 == legs[j].2 {
                        continue;
                    }
                    let key =
                        WedgeKey::new(v.vtype, (legs[i].0, legs[i].1), (legs[j].0, legs[j].1));
                    *dist.counts.entry(key).or_insert(0.0) += 1.0;
                    dist.total += 1.0;
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};

    fn ingest(g: &mut DynamicGraph, src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) {
        let ev = EdgeEvent::new(src, st, dst, dt, et, Timestamp::from_secs(t));
        let r = g.ingest(&ev);
        // Mirror what GraphSummary does: observe after insertion.
        let edge = g.edge(r.edge).unwrap().clone();
        // Tests call observe explicitly where needed.
        let _ = edge;
    }

    #[test]
    fn wedge_key_is_canonical() {
        let a = WedgeKey::new(
            TypeId(0),
            (TypeId(1), Orientation::Outgoing),
            (TypeId(2), Orientation::Incoming),
        );
        let b = WedgeKey::new(
            TypeId(0),
            (TypeId(2), Orientation::Incoming),
            (TypeId(1), Orientation::Outgoing),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_counts_match_exact_on_small_graph() {
        let mut g = DynamicGraph::unbounded();
        let mut dist = TriadDistribution::new();
        let events = [
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
            ("a1", "Article", "l1", "Location", "located", 3),
            ("a2", "Article", "l1", "Location", "located", 4),
        ];
        for (s, st, d, dt, et, t) in events {
            let ev = EdgeEvent::new(s, st, d, dt, et, Timestamp::from_secs(t));
            let r = g.ingest(&ev);
            let edge = g.edge(r.edge).unwrap().clone();
            dist.observe_edge(&g, &edge);
        }
        let exact = TriadDistribution::rebuild_exact(&g);
        assert_eq!(dist.total_wedges(), exact.total_wedges());
        for (key, count) in exact.wedges() {
            assert!(
                (dist.wedge_count(key) - count).abs() < 1e-9,
                "mismatch for {key:?}"
            );
        }
    }

    #[test]
    fn exact_rebuild_counts_wedges() {
        let mut g = DynamicGraph::unbounded();
        // Star: k1 is mentioned by 3 articles -> C(3,2) = 3 wedges at k1.
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        ingest(&mut g, "a2", "Article", "k1", "Keyword", "mentions", 2);
        ingest(&mut g, "a3", "Article", "k1", "Keyword", "mentions", 3);
        let exact = TriadDistribution::rebuild_exact(&g);
        assert_eq!(exact.total_wedges(), 3.0);
        let key = WedgeKey::new(
            g.vertex_type_id("Keyword").unwrap(),
            (g.edge_type_id("mentions").unwrap(), Orientation::Incoming),
            (g.edge_type_id("mentions").unwrap(), Orientation::Incoming),
        );
        assert_eq!(exact.wedge_count(&key), 3.0);
        assert!((exact.wedge_frequency(&key) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_counts_are_exact_on_hubs() {
        let mut g = DynamicGraph::unbounded();
        let mut dist = TriadDistribution::new();
        // Hub with 100 incoming mention edges: O(degree²) wedges, counted in
        // O(#types) per insertion via the adjacency live counters.
        for i in 0..100 {
            let ev = EdgeEvent::new(
                format!("a{i}"),
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(i as i64),
            );
            let r = g.ingest(&ev);
            let edge = g.edge(r.edge).unwrap().clone();
            dist.observe_edge(&g, &edge);
        }
        let exact = TriadDistribution::rebuild_exact(&g);
        // Exact count is C(100,2) = 4950; streaming must agree exactly.
        assert_eq!(exact.total_wedges(), 4950.0);
        assert_eq!(dist.total_wedges(), exact.total_wedges());
        assert_eq!(dist.updates(), 100);
    }

    #[test]
    fn empty_distribution_has_neutral_frequency() {
        let dist = TriadDistribution::new();
        let key = WedgeKey::new(
            TypeId(0),
            (TypeId(0), Orientation::Outgoing),
            (TypeId(0), Orientation::Outgoing),
        );
        assert_eq!(dist.wedge_frequency(&key), 1.0);
        assert_eq!(dist.total_wedges(), 0.0);
    }
}
