//! The composite, continuously maintained graph summary.
//!
//! [`GraphSummary`] bundles the three statistics of paper §4.3 — degree
//! distribution, vertex/edge type distribution, and multi-relational triad
//! distribution — behind one streaming update API and the selectivity
//! accessors the query planner (in `streamworks-query`) consumes.
//!
//! The summary is deliberately decoupled from the graph: callers decide when
//! to feed it (`observe_insertion` after each ingest, `observe_expiry` for
//! each expired edge) or when to rebuild it wholesale from a snapshot
//! (`rebuild_from`). The continuous-query engine in `streamworks-core` wires
//! this up automatically.

use crate::degree::DegreeDistribution;
use crate::triads::{TriadConfig, TriadDistribution, WedgeKey};
use crate::type_dist::TypeDistribution;
use serde::{Deserialize, Serialize};
use streamworks_graph::{Direction, DynamicGraph, Edge, TypeId};

/// Configuration of the summarizer.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SummaryConfig {
    /// Triad counter configuration.
    pub triads: TriadConfig,
    /// If true, typed-wedge statistics are maintained on every insertion.
    /// Disabling them removes the dominant summarization cost (see experiment
    /// E8) at the price of coarser two-edge selectivity estimates.
    pub track_triads: bool,
}

impl SummaryConfig {
    /// Configuration with triad tracking enabled (the paper's full summary).
    pub fn full() -> Self {
        SummaryConfig {
            triads: TriadConfig::default(),
            track_triads: true,
        }
    }

    /// Configuration with only degree and type statistics.
    pub fn cheap() -> Self {
        SummaryConfig {
            triads: TriadConfig::default(),
            track_triads: false,
        }
    }
}

/// Continuously maintained statistics about a [`DynamicGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphSummary {
    config: SummaryConfig,
    degrees: DegreeDistribution,
    types: TypeDistribution,
    triads: TriadDistribution,
    edges_observed: u64,
}

impl GraphSummary {
    /// Creates an empty summary with the full configuration.
    pub fn new() -> Self {
        Self::with_config(SummaryConfig::full())
    }

    /// Creates an empty summary with an explicit configuration.
    pub fn with_config(config: SummaryConfig) -> Self {
        GraphSummary {
            config,
            degrees: DegreeDistribution::new(),
            types: TypeDistribution::new(),
            triads: TriadDistribution::with_config(config.triads),
            edges_observed: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> SummaryConfig {
        self.config
    }

    /// Observes a newly created vertex.
    pub fn observe_vertex(&mut self, vtype: TypeId) {
        self.types.observe_vertex(vtype);
    }

    /// Observes a newly inserted edge. Must be called after the edge is in `graph`.
    pub fn observe_insertion(&mut self, graph: &DynamicGraph, edge: &Edge) {
        let src_vtype = graph.vertex(edge.src).map(|v| v.vtype).unwrap_or(TypeId(0));
        let dst_vtype = graph.vertex(edge.dst).map(|v| v.vtype).unwrap_or(TypeId(0));
        self.types.observe_edge(src_vtype, edge.etype, dst_vtype);
        self.degrees.observe_edge(src_vtype, edge.etype, dst_vtype);
        if self.config.track_triads {
            self.triads.observe_edge(graph, edge);
        }
        self.edges_observed += 1;
    }

    /// Observes the expiry of an edge. `src_vtype`/`dst_vtype` are passed
    /// explicitly because the edge may already have been removed from the graph.
    pub fn observe_expiry(&mut self, src_vtype: TypeId, etype: TypeId, dst_vtype: TypeId) {
        self.types.retract_edge(src_vtype, etype, dst_vtype);
        self.degrees.retract_edge(src_vtype, etype, dst_vtype);
        // Triad counts are not decremented: they are planning statistics and a
        // slight overestimate of historical frequency is acceptable (§4.3 notes
        // continuous re-summarization is future work).
    }

    /// Rebuilds every statistic from the current live state of `graph`.
    pub fn rebuild_from(graph: &DynamicGraph, config: SummaryConfig) -> Self {
        let mut summary = GraphSummary::with_config(config);
        for v in graph.vertices() {
            summary.types.observe_vertex(v.vtype);
            summary
                .degrees
                .record_degree_sample(v.vtype, v.degree() as u64);
        }
        for e in graph.edges() {
            let src_vtype = graph.vertex(e.src).map(|v| v.vtype).unwrap_or(TypeId(0));
            let dst_vtype = graph.vertex(e.dst).map(|v| v.vtype).unwrap_or(TypeId(0));
            summary.types.observe_edge(src_vtype, e.etype, dst_vtype);
            summary.degrees.observe_edge(src_vtype, e.etype, dst_vtype);
        }
        if config.track_triads {
            summary.triads = TriadDistribution::rebuild_exact(graph);
        }
        summary.edges_observed = graph.live_edge_count() as u64;
        summary
    }

    /// Refreshes the degree-sample histograms from the graph's current degrees.
    pub fn resample_degrees(&mut self, graph: &DynamicGraph) {
        self.degrees.reset_samples();
        for v in graph.vertices() {
            self.degrees
                .record_degree_sample(v.vtype, v.degree() as u64);
        }
    }

    // ------------------------------------------------------------------
    // Accessors used by the planner
    // ------------------------------------------------------------------

    /// Degree statistics.
    pub fn degrees(&self) -> &DegreeDistribution {
        &self.degrees
    }

    /// Type statistics.
    pub fn types(&self) -> &TypeDistribution {
        &self.types
    }

    /// Triad statistics.
    pub fn triads(&self) -> &TriadDistribution {
        &self.triads
    }

    /// Number of edges fed through `observe_insertion`.
    pub fn edges_observed(&self) -> u64 {
        self.edges_observed
    }

    /// Estimated number of data edges matching a typed query edge
    /// `(src_vtype)-[etype]->(dst_vtype)`.
    ///
    /// Falls back to the plain edge-type count when the triple has never been
    /// seen (e.g. before any data arrives), and to 1.0 when nothing at all is
    /// known, so the planner always has a usable, non-zero estimate.
    pub fn estimated_edge_matches(
        &self,
        src_vtype: Option<TypeId>,
        etype: TypeId,
        dst_vtype: Option<TypeId>,
    ) -> f64 {
        match (src_vtype, dst_vtype) {
            (Some(s), Some(d)) => {
                let c = self.types.triple_count(s, etype, d);
                if c > 0 {
                    c as f64
                } else if self.types.edge_count(etype) > 0 {
                    // Unseen triple of a seen edge type: rare but possible.
                    0.5
                } else {
                    1.0
                }
            }
            _ => {
                let c = self.types.edge_count(etype);
                if c > 0 {
                    c as f64
                } else {
                    1.0
                }
            }
        }
    }

    /// Estimated average fan-out of expanding from a vertex of type `vtype`
    /// along `etype` in direction `dir`.
    pub fn estimated_fanout(&self, vtype: TypeId, dir: Direction, etype: TypeId) -> f64 {
        let population = self.types.vertex_count(vtype);
        self.degrees
            .avg_typed_degree(vtype, dir, etype, population)
            .max(0.01)
    }

    /// Estimated number of wedges (two-edge paths) matching a signature.
    pub fn estimated_wedges(&self, key: &WedgeKey) -> f64 {
        if self.config.track_triads && self.triads.total_wedges() > 0.0 {
            self.triads.wedge_count(key).max(0.1)
        } else {
            // Without triad statistics fall back to an independence assumption:
            // the caller combines edge estimates instead.
            -1.0
        }
    }
}

impl Default for GraphSummary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{EdgeEvent, Timestamp};

    /// Feeds events into both the graph and the summary the way the engine does.
    fn build(events: &[(&str, &str, &str, &str, &str, i64)]) -> (DynamicGraph, GraphSummary) {
        let mut g = DynamicGraph::unbounded();
        let mut s = GraphSummary::new();
        for (src, st, dst, dt, et, t) in events {
            let ev = EdgeEvent::new(*src, *st, *dst, *dt, *et, Timestamp::from_secs(*t));
            let r = g.ingest(&ev);
            if r.src_created {
                s.observe_vertex(g.vertex(r.src).unwrap().vtype);
            }
            if r.dst_created {
                s.observe_vertex(g.vertex(r.dst).unwrap().vtype);
            }
            let e = g.edge(r.edge).unwrap().clone();
            s.observe_insertion(&g, &e);
        }
        (g, s)
    }

    #[test]
    fn streaming_summary_matches_rebuild() {
        let (g, s) = build(&[
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
            ("a1", "Article", "l1", "Location", "located", 3),
        ]);
        let rebuilt = GraphSummary::rebuild_from(&g, SummaryConfig::full());
        let article = g.vertex_type_id("Article").unwrap();
        let keyword = g.vertex_type_id("Keyword").unwrap();
        let mentions = g.edge_type_id("mentions").unwrap();
        assert_eq!(
            s.types().vertex_count(article),
            rebuilt.types().vertex_count(article)
        );
        assert_eq!(
            s.types().triple_count(article, mentions, keyword),
            rebuilt.types().triple_count(article, mentions, keyword)
        );
        assert_eq!(s.edges_observed(), 3);
    }

    #[test]
    fn estimated_edge_matches_uses_triples() {
        let (g, s) = build(&[
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
            ("a1", "Article", "l1", "Location", "located", 3),
        ]);
        let article = g.vertex_type_id("Article").unwrap();
        let keyword = g.vertex_type_id("Keyword").unwrap();
        let location = g.vertex_type_id("Location").unwrap();
        let mentions = g.edge_type_id("mentions").unwrap();
        let located = g.edge_type_id("located").unwrap();
        assert_eq!(
            s.estimated_edge_matches(Some(article), mentions, Some(keyword)),
            2.0
        );
        assert_eq!(
            s.estimated_edge_matches(Some(article), located, Some(location)),
            1.0
        );
        // Unseen triple of a seen type gets a small non-zero estimate.
        assert_eq!(
            s.estimated_edge_matches(Some(keyword), mentions, Some(article)),
            0.5
        );
        // Untyped endpoints fall back to the edge-type count.
        assert_eq!(s.estimated_edge_matches(None, mentions, None), 2.0);
    }

    #[test]
    fn estimated_fanout_reflects_average_degree() {
        let (g, s) = build(&[
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a1", "Article", "k2", "Keyword", "mentions", 2),
            ("a2", "Article", "k1", "Keyword", "mentions", 3),
        ]);
        let article = g.vertex_type_id("Article").unwrap();
        let mentions = g.edge_type_id("mentions").unwrap();
        // 3 mention-edges leaving 2 articles -> 1.5 average out fan-out.
        let f = s.estimated_fanout(article, Direction::Out, mentions);
        assert!((f - 1.5).abs() < 1e-9);
    }

    #[test]
    fn expiry_observation_decrements_type_counts() {
        let (g, mut s) = build(&[
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
        ]);
        let article = g.vertex_type_id("Article").unwrap();
        let keyword = g.vertex_type_id("Keyword").unwrap();
        let mentions = g.edge_type_id("mentions").unwrap();
        s.observe_expiry(article, mentions, keyword);
        assert_eq!(s.types().edge_count(mentions), 1);
        assert_eq!(s.types().triple_count(article, mentions, keyword), 1);
    }

    #[test]
    fn cheap_config_skips_triads() {
        let mut g = DynamicGraph::unbounded();
        let mut s = GraphSummary::with_config(SummaryConfig::cheap());
        let ev = EdgeEvent::new("a", "A", "b", "B", "t", Timestamp::from_secs(1));
        let r = g.ingest(&ev);
        let e = g.edge(r.edge).unwrap().clone();
        s.observe_insertion(&g, &e);
        assert_eq!(s.triads().total_wedges(), 0.0);
        let key = WedgeKey::new(
            TypeId(0),
            (TypeId(0), crate::triads::Orientation::Outgoing),
            (TypeId(0), crate::triads::Orientation::Outgoing),
        );
        assert_eq!(s.estimated_wedges(&key), -1.0);
    }

    #[test]
    fn resample_degrees_reflects_current_graph() {
        let (g, mut s) = build(&[
            ("a1", "Article", "k1", "Keyword", "mentions", 1),
            ("a2", "Article", "k1", "Keyword", "mentions", 2),
        ]);
        s.resample_degrees(&g);
        // k1 has degree 2, articles degree 1 each -> histogram has 3 samples.
        assert_eq!(s.degrees().histogram().count(), 3);
        assert_eq!(s.degrees().histogram().max(), Some(2));
    }
}
