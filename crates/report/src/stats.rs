//! Textual rendering of the streaming graph statistics (paper §4.3) — the
//! "relevant statistics" panel the demo UI promises in §1.1, as tables.

use crate::table::Table;
use streamworks_graph::{Direction, DynamicGraph};
use streamworks_summarize::GraphSummary;

/// Renders the vertex- and edge-type distributions as a table, resolving
/// interned type ids back to names through the data graph.
pub fn type_distribution_table(summary: &GraphSummary, graph: &DynamicGraph) -> Table {
    let mut table = Table::new(["kind", "type", "count", "share"]);
    let types = summary.types();
    let total_vertices = types.total_vertices().max(1) as f64;
    let total_edges = types.total_edges().max(1) as f64;
    for id in 0..graph.vertex_type_count() as u32 {
        let t = streamworks_graph::TypeId(id);
        let Some(name) = graph.vertex_type_name(t) else {
            continue;
        };
        let count = types.vertex_count(t);
        if count == 0 {
            continue;
        }
        table.add_row([
            "vertex".to_owned(),
            name.to_owned(),
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / total_vertices),
        ]);
    }
    for id in 0..graph.edge_type_count() as u32 {
        let t = streamworks_graph::TypeId(id);
        let Some(name) = graph.edge_type_name(t) else {
            continue;
        };
        let count = types.edge_count(t);
        if count == 0 {
            continue;
        }
        table.add_row([
            "edge".to_owned(),
            name.to_owned(),
            count.to_string(),
            format!("{:.1}%", 100.0 * count as f64 / total_edges),
        ]);
    }
    table
}

/// Renders the degree distribution: overall quantiles plus the average typed
/// fan-out of the most common (vertex type, direction, edge type) triples.
pub fn degree_report(summary: &GraphSummary, graph: &DynamicGraph) -> String {
    let mut out = String::new();
    let hist = summary.degrees().histogram();
    out.push_str(&format!(
        "degree distribution: n={} mean={:.2} p50={} p90={} p99={} max={}\n",
        hist.count(),
        hist.mean(),
        hist.quantile(0.5).unwrap_or(0),
        hist.quantile(0.9).unwrap_or(0),
        hist.quantile(0.99).unwrap_or(0),
        hist.max().unwrap_or(0),
    ));
    let mut table = Table::new(["vertex type", "direction", "edge type", "avg fan-out"]);
    for vt in 0..graph.vertex_type_count() as u32 {
        let vtype = streamworks_graph::TypeId(vt);
        let Some(vname) = graph.vertex_type_name(vtype) else {
            continue;
        };
        for et in 0..graph.edge_type_count() as u32 {
            let etype = streamworks_graph::TypeId(et);
            let Some(ename) = graph.edge_type_name(etype) else {
                continue;
            };
            for dir in [Direction::Out, Direction::In] {
                let fanout = summary.estimated_fanout(vtype, dir, etype);
                if fanout > 0.0 {
                    table.add_row([
                        vname.to_owned(),
                        format!("{dir:?}"),
                        ename.to_owned(),
                        format!("{fanout:.2}"),
                    ]);
                }
            }
        }
    }
    out.push_str(&table.render());
    out
}

/// Renders the top-`limit` multi-relational triads (typed wedges) by
/// estimated frequency.
pub fn triad_report(summary: &GraphSummary, graph: &DynamicGraph, limit: usize) -> Table {
    let mut wedges: Vec<(String, f64)> = summary
        .triads()
        .wedges()
        .map(|(key, count)| {
            let name = |t: streamworks_graph::TypeId, vertex: bool| -> String {
                if vertex {
                    graph.vertex_type_name(t).unwrap_or("?").to_owned()
                } else {
                    graph.edge_type_name(t).unwrap_or("?").to_owned()
                }
            };
            let describe_leg = |leg: (
                streamworks_graph::TypeId,
                streamworks_summarize::Orientation,
            )| { format!("{:?}:{}", leg.1, name(leg.0, false)) };
            (
                format!(
                    "center {} [{} | {}]",
                    name(key.center_vtype, true),
                    describe_leg(key.leg_a),
                    describe_leg(key.leg_b)
                ),
                count,
            )
        })
        .collect();
    wedges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut table = Table::new(["triad", "estimated count"]);
    for (name, count) in wedges.into_iter().take(limit) {
        table.add_row([name, format!("{count:.1}")]);
    }
    table
}

/// One-call summary report combining graph counters, type distribution,
/// degree statistics and top triads.
pub fn summary_report(summary: &GraphSummary, graph: &DynamicGraph, triad_limit: usize) -> String {
    let stats = graph.stats();
    let mut out = String::new();
    out.push_str(&format!(
        "graph: {} vertices, {} live edges, {} ingested, {} expired\n\n",
        stats.vertices, stats.live_edges, stats.ingested_edges, stats.expired_edges
    ));
    out.push_str("== type distribution ==\n");
    out.push_str(&type_distribution_table(summary, graph).render());
    out.push_str("\n== degrees ==\n");
    out.push_str(&degree_report(summary, graph));
    out.push_str("\n== top multi-relational triads ==\n");
    out.push_str(&triad_report(summary, graph, triad_limit).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_core::{ContinuousQueryEngine, EngineConfig};
    use streamworks_graph::{EdgeEvent, Timestamp};

    fn populated_engine() -> ContinuousQueryEngine {
        let mut engine = ContinuousQueryEngine::new(EngineConfig::default());
        let mut t = 0;
        for a in 0..10 {
            for k in 0..3 {
                engine
                    .ingest(&EdgeEvent::new(
                        format!("a{a}"),
                        "Article",
                        format!("k{k}"),
                        "Keyword",
                        "mentions",
                        Timestamp::from_secs(t),
                    ))
                    .unwrap();
                t += 1;
            }
            engine
                .ingest(&EdgeEvent::new(
                    format!("a{a}"),
                    "Article",
                    "paris",
                    "Location",
                    "located",
                    Timestamp::from_secs(t),
                ))
                .unwrap();
            t += 1;
        }
        engine
    }

    #[test]
    fn type_distribution_lists_observed_types_with_shares() {
        let engine = populated_engine();
        let table = type_distribution_table(engine.summary(), engine.graph());
        let text = table.render();
        assert!(text.contains("Article"));
        assert!(text.contains("mentions"));
        assert!(text.contains('%'));
        // 30 mention edges vs. 10 located edges.
        let mentions_row = text.lines().find(|l| l.contains("mentions")).unwrap();
        assert!(mentions_row.contains("30"));
    }

    #[test]
    fn degree_report_includes_quantiles_and_fanout() {
        let engine = populated_engine();
        let text = degree_report(engine.summary(), engine.graph());
        assert!(text.contains("degree distribution"));
        assert!(text.contains("p99"));
        assert!(text.contains("Article"));
        assert!(text.contains("Out"));
    }

    #[test]
    fn triad_report_ranks_wedges() {
        let engine = populated_engine();
        let table = triad_report(engine.summary(), engine.graph(), 5);
        assert!(table.len() <= 5);
        assert!(
            !table.is_empty(),
            "the article-centred wedge must be present"
        );
        let text = table.render();
        assert!(text.contains("center"));
    }

    #[test]
    fn summary_report_combines_all_sections() {
        let engine = populated_engine();
        let text = summary_report(engine.summary(), engine.graph(), 3);
        assert!(text.contains("== type distribution =="));
        assert!(text.contains("== degrees =="));
        assert!(text.contains("== top multi-relational triads =="));
        assert!(text.contains("vertices"));
    }
}
