//! Graphviz DOT export — the reproduction's stand-in for the demo's
//! Gephi-based visualisation (§6.2): query graphs, SJ-Tree decompositions and
//! data-graph neighbourhoods with matched edges highlighted can all be dumped
//! as DOT text and rendered with any Graphviz tool.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use streamworks_core::MatchEvent;
use streamworks_graph::{Direction, DynamicGraph, EdgeId};
use streamworks_query::{QueryGraph, SjTreeShape};

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a query graph as a directed DOT graph: one node per pattern
/// variable (labelled `name:Type`), one edge per relationship constraint.
pub fn query_graph_to_dot(query: &QueryGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(query.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=11];");
    for v in query.vertices() {
        let label = match &v.vtype {
            Some(t) => format!("{}:{}", v.name, t),
            None => v.name.clone(),
        };
        let _ = writeln!(out, "  q{} [label=\"{}\"];", v.id.0, escape(&label));
    }
    for e in query.edges() {
        let label = e.etype.clone().unwrap_or_else(|| "*".to_owned());
        let pred_marker = if e.predicates.is_empty() { "" } else { " *" };
        let _ = writeln!(
            out,
            "  q{} -> q{} [label=\"{}{}\"];",
            e.src.0,
            e.dst.0,
            escape(&label),
            pred_marker
        );
    }
    out.push_str("}\n");
    out
}

/// Renders an SJ-Tree shape as DOT: leaves and join nodes become boxes
/// labelled with the query edges they cover and the cut vertices they join on,
/// with tree edges pointing from children to parents (the direction partial
/// matches flow).
pub fn sjtree_to_dot(query: &QueryGraph, shape: &SjTreeShape) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"sjtree_{}\" {{", escape(query.name()));
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for node in shape.nodes() {
        let edges: Vec<String> = node.edges.iter().map(|&e| query.describe_edge(e)).collect();
        let cut: Vec<&str> = node
            .cut_vertices
            .iter()
            .map(|&v| query.vertex(v).name.as_str())
            .collect();
        let kind = if node.is_leaf() { "leaf" } else { "join" };
        let mut label = format!("{} n{}\\n{}", kind, node.id.0, edges.join("\\n"));
        if !cut.is_empty() {
            label.push_str(&format!("\\ncut: ({})", cut.join(", ")));
        }
        let style = if node.id == shape.root() {
            ", style=bold"
        } else if node.is_leaf() {
            ", style=rounded"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"{}];",
            node.id.0,
            escape(&label).replace("\\\\n", "\\n"),
            style
        );
    }
    for node in shape.nodes() {
        if let Some((l, r)) = node.children {
            let _ = writeln!(out, "  n{} -> n{};", l.0, node.id.0);
            let _ = writeln!(out, "  n{} -> n{};", r.0, node.id.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the data-graph neighbourhood of a match: every vertex bound by the
/// match plus (optionally) the other live neighbours of those vertices, with
/// the matched edges drawn bold/red — the "encode the partial and complete
/// matches" rendering the demo produced with Gephi.
pub fn match_to_dot(graph: &DynamicGraph, event: &MatchEvent, include_neighbours: bool) -> String {
    let matched_edges: BTreeSet<EdgeId> = event.edges.iter().copied().collect();
    let mut vertices: BTreeSet<_> = event.bindings.iter().map(|b| b.vertex).collect();
    let mut edges: BTreeSet<EdgeId> = matched_edges.clone();

    if include_neighbours {
        for b in &event.bindings {
            for dir in [Direction::Out, Direction::In] {
                for edge in graph.incident_edges_any_type(b.vertex, dir) {
                    vertices.insert(edge.src);
                    vertices.insert(edge.dst);
                    edges.insert(edge.id);
                }
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"match_{}\" {{", escape(&event.query_name));
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");
    for &v in &vertices {
        let key = graph.vertex_key(v).unwrap_or("<expired>");
        let vtype = graph
            .vertex(v)
            .and_then(|vv| graph.vertex_type_name(vv.vtype))
            .unwrap_or("?");
        let bound = event.bindings.iter().find(|b| b.vertex == v);
        let label = match bound {
            Some(b) => format!("{}\\n{} ({})", b.variable, key, vtype),
            None => format!("{key} ({vtype})"),
        };
        let style = if bound.is_some() {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  v{} [label=\"{}\"{}];",
            v.0,
            escape(&label).replace("\\\\n", "\\n"),
            style
        );
    }
    for &e in &edges {
        let Some(edge) = graph.edge(e) else { continue };
        if !vertices.contains(&edge.src) || !vertices.contains(&edge.dst) {
            continue;
        }
        let etype = graph.edge_type_name(edge.etype).unwrap_or("?");
        let attrs = if matched_edges.contains(&e) {
            format!("label=\"{}\", color=red, penwidth=2.0", escape(etype))
        } else {
            format!("label=\"{}\", color=gray", escape(etype))
        };
        let _ = writeln!(out, "  v{} -> v{} [{}];", edge.src.0, edge.dst.0, attrs);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_core::ContinuousQueryEngine;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::{Planner, QueryGraphBuilder};

    fn wedge_query() -> QueryGraph {
        QueryGraphBuilder::new("wedge")
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a", "mentions", "k")
            .edge("a", "located", "l")
            .build()
            .unwrap()
    }

    #[test]
    fn query_dot_lists_variables_and_edge_types() {
        let dot = query_graph_to_dot(&wedge_query());
        assert!(dot.starts_with("digraph \"wedge\""));
        assert!(dot.contains("a:Article"));
        assert!(dot.contains("label=\"mentions\""));
        assert!(dot.contains("q0 -> q1") || dot.contains("q0 -> q2"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn sjtree_dot_marks_leaves_joins_and_cuts() {
        let q = QueryGraphBuilder::new("pair")
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .edge("a1", "located", "l")
            .edge("a2", "located", "l")
            .build()
            .unwrap();
        let plan = Planner::new().plan(q.clone()).unwrap();
        let dot = sjtree_to_dot(&q, &plan.shape);
        assert!(dot.contains("leaf n"));
        assert!(dot.contains("join n"));
        assert!(dot.contains("cut:"));
        // Child-to-parent arrows exist.
        assert!(dot
            .lines()
            .any(|l| l.trim().starts_with('n') && l.contains("->")));
    }

    #[test]
    fn match_dot_highlights_matched_edges_and_bound_vertices() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_dsl(
                "QUERY pair WINDOW 1h \
                 MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
            )
            .unwrap();
        engine
            .ingest(&EdgeEvent::new(
                "a1",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                Timestamp::from_secs(1),
            ))
            .unwrap();
        // An unrelated edge that should only appear as a grey neighbour.
        engine
            .ingest(&EdgeEvent::new(
                "a1",
                "Article",
                "paris",
                "Location",
                "located",
                Timestamp::from_secs(2),
            ))
            .unwrap();
        let matches = engine
            .ingest(&EdgeEvent::new(
                "a2",
                "Article",
                "rust",
                "Keyword",
                "mentions",
                Timestamp::from_secs(3),
            ))
            .unwrap();
        let event = &matches[0];

        let bare = match_to_dot(engine.graph(), event, false);
        assert!(bare.contains("color=red"));
        assert!(bare.contains("fillcolor=lightblue"));
        assert!(
            !bare.contains("paris"),
            "without neighbours only bound vertices appear"
        );

        let with_neighbours = match_to_dot(engine.graph(), event, true);
        assert!(with_neighbours.contains("paris"));
        assert!(with_neighbours.contains("color=gray"));
    }

    #[test]
    fn dot_output_escapes_quotes() {
        let q = QueryGraphBuilder::new("weird\"name")
            .vertex("a", "T")
            .vertex("b", "T")
            .edge("a", "rel", "b")
            .build()
            .unwrap();
        let dot = query_graph_to_dot(&q);
        assert!(dot.contains("weird\\\"name"));
    }
}
