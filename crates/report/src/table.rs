//! A small text-table builder shared by every report view.
//!
//! The demo UI of the paper (§6.2, Fig. 6) presents query results as tables;
//! this module is the reproduction's terminal-friendly equivalent and is also
//! used by the experiment binaries to print their result rows.

use std::fmt::Write as _;

/// A rectangular text table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as RFC-4180-ish CSV (cells containing commas, quotes
    /// or newlines are quoted, quotes are doubled).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "count"]);
        t.add_row(["smurf_ddos", "3"]);
        t.add_row(["scan", "12"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The `count` column starts at the same offset in every row.
        let col = lines[0].find("count").unwrap();
        assert_eq!(&lines[2][col..col + 1], "3");
        assert_eq!(&lines[3][col..col + 2], "12");
    }

    #[test]
    fn pads_and_truncates_rows_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.add_row(["1"]);
        t.add_row(["1", "2", "3", "4"]);
        assert_eq!(t.rows()[0], vec!["1", "", ""]);
        assert_eq!(t.rows()[1], vec!["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_characters() {
        let mut t = Table::new(["k", "v"]);
        t.add_row(["plain", "with,comma"]);
        t.add_row(["quote\"inside", "line\nbreak"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,v\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert!(csv.contains("\"line\nbreak\""));
    }

    #[test]
    fn empty_table_still_renders_header() {
        let t = Table::new(["only", "header"]);
        assert!(t.is_empty());
        let text = t.render();
        assert!(text.contains("only"));
        assert_eq!(text.lines().count(), 2);
        assert_eq!(t.to_csv(), "only,header\n");
    }
}
