//! Geospatial and grid views — the textual analogues of the demo's map view
//! (Fig. 5: query hits plotted by location) and grid view (Fig. 6: a Smurf
//! DDoS attack cascading across subnetworks).

use crate::table::Table;
use std::collections::BTreeMap;
use streamworks_core::MatchEvent;

// ---------------------------------------------------------------------------
// Fig. 5 analogue: events bucketed by a location-valued binding
// ---------------------------------------------------------------------------

/// Buckets match events by the value bound to a "location" variable and
/// renders a ranked frequency view (the map legend of Fig. 5 without pixels).
#[derive(Debug, Clone)]
pub struct GeoView {
    location_variable: String,
    counts: BTreeMap<String, Vec<MatchEvent>>,
}

impl GeoView {
    /// Creates a view that groups events by the key bound to `location_variable`.
    pub fn new(location_variable: impl Into<String>) -> Self {
        GeoView {
            location_variable: location_variable.into(),
            counts: BTreeMap::new(),
        }
    }

    /// Adds one event; events without the location variable are grouped under
    /// `"<unlocated>"` so they stay visible rather than silently dropped.
    pub fn observe(&mut self, event: &MatchEvent) {
        let location = event
            .binding(&self.location_variable)
            .map(|b| b.key.clone())
            .unwrap_or_else(|| "<unlocated>".to_owned());
        self.counts.entry(location).or_default().push(event.clone());
    }

    /// Adds a batch of events.
    pub fn observe_all<'a, I: IntoIterator<Item = &'a MatchEvent>>(&mut self, events: I) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Number of distinct locations seen.
    pub fn location_count(&self) -> usize {
        self.counts.len()
    }

    /// (location, number of events) sorted by descending count, then name.
    pub fn ranked(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .counts
            .iter()
            .map(|(k, evs)| (k.clone(), evs.len()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Events observed at one location.
    pub fn events_at(&self, location: &str) -> &[MatchEvent] {
        self.counts
            .get(location)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Renders a ranked table with a proportional bar per location.
    pub fn render(&self) -> String {
        let ranked = self.ranked();
        let max = ranked.first().map(|(_, c)| *c).unwrap_or(0).max(1);
        let mut table = Table::new(["location", "events", ""]);
        for (loc, count) in &ranked {
            let bar_len = (count * 40).div_ceil(max);
            table.add_row([loc.clone(), count.to_string(), "#".repeat(bar_len)]);
        }
        table.render()
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 analogue: subnet grid over time
// ---------------------------------------------------------------------------

/// Extracts the subnet prefix of an IPv4-looking key (`"10.1.2.3"` →
/// `"10.1.2"`); non-IP keys fall back to the whole key, so the grid also works
/// for symbolic hosts (`"victim-0"`).
pub fn subnet_of(key: &str) -> String {
    let octets: Vec<&str> = key.split('.').collect();
    if octets.len() == 4 && octets.iter().all(|o| o.parse::<u8>().is_ok()) {
        octets[..3].join(".")
    } else {
        key.to_owned()
    }
}

/// A grid of (subnet × time bucket) hit counts: the cascading-attack view of
/// Fig. 6 rendered as characters (`.` no activity, `o` some, `O` many,
/// `@` most).
#[derive(Debug, Clone)]
pub struct SubnetGrid {
    bucket_secs: i64,
    hits: BTreeMap<String, BTreeMap<i64, usize>>,
}

impl SubnetGrid {
    /// Creates a grid with the given time-bucket width (seconds of stream time).
    pub fn new(bucket_secs: i64) -> Self {
        SubnetGrid {
            bucket_secs: bucket_secs.max(1),
            hits: BTreeMap::new(),
        }
    }

    /// Records every vertex binding of `event` whose variable appears in
    /// `variables` (e.g. the victim and amplifier variables of the Smurf
    /// query); pass an empty slice to record *all* bindings.
    pub fn observe(&mut self, event: &MatchEvent, variables: &[&str]) {
        let bucket = (event.at.as_micros() / 1_000_000) / self.bucket_secs;
        for b in &event.bindings {
            if !variables.is_empty() && !variables.contains(&b.variable.as_str()) {
                continue;
            }
            let subnet = subnet_of(&b.key);
            *self
                .hits
                .entry(subnet)
                .or_default()
                .entry(bucket)
                .or_insert(0) += 1;
        }
    }

    /// Number of distinct subnets with at least one hit.
    pub fn subnet_count(&self) -> usize {
        self.hits.len()
    }

    /// Total hits recorded in one subnet.
    pub fn hits_in(&self, subnet: &str) -> usize {
        self.hits.get(subnet).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// Renders the grid: one row per subnet, one column per time bucket.
    pub fn render(&self) -> String {
        if self.hits.is_empty() {
            return "(no activity)\n".to_owned();
        }
        let min_bucket = self
            .hits
            .values()
            .flat_map(|m| m.keys().copied())
            .min()
            .unwrap_or(0);
        let max_bucket = self
            .hits
            .values()
            .flat_map(|m| m.keys().copied())
            .max()
            .unwrap_or(0);
        let max_hits = self
            .hits
            .values()
            .flat_map(|m| m.values().copied())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "time buckets {min_bucket}..={max_bucket} ({}s each), {} subnets\n",
            self.bucket_secs,
            self.hits.len()
        ));
        let width = self
            .hits
            .keys()
            .map(|s| s.chars().count())
            .max()
            .unwrap_or(0);
        for (subnet, buckets) in &self.hits {
            out.push_str(&format!("{subnet:>width$} |"));
            for b in min_bucket..=max_bucket {
                let hits = buckets.get(&b).copied().unwrap_or(0);
                let c = if hits == 0 {
                    '.'
                } else if hits * 3 <= max_hits {
                    'o'
                } else if hits * 3 <= 2 * max_hits {
                    'O'
                } else {
                    '@'
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_core::{BoundVertex, QueryId};
    use streamworks_graph::{Duration, Timestamp, VertexId};

    fn event(at: i64, bindings: &[(&str, &str)]) -> MatchEvent {
        MatchEvent {
            query: QueryId(0),
            query_generation: 0,
            query_name: "smurf".into(),
            at: Timestamp::from_secs(at),
            span: Duration::from_secs(2),
            bindings: bindings
                .iter()
                .enumerate()
                .map(|(i, (var, key))| BoundVertex {
                    variable: (*var).to_owned(),
                    vertex: VertexId(i as u32),
                    key: (*key).to_owned(),
                })
                .collect(),
            edges: Vec::new(),
        }
    }

    #[test]
    fn geo_view_ranks_locations_by_count() {
        let mut view = GeoView::new("l");
        view.observe_all(&[
            event(1, &[("l", "paris")]),
            event(2, &[("l", "paris")]),
            event(3, &[("l", "tokyo")]),
            event(4, &[("a", "no-location")]),
        ]);
        assert_eq!(view.location_count(), 3);
        let ranked = view.ranked();
        assert_eq!(ranked[0], ("paris".to_owned(), 2));
        assert_eq!(view.events_at("tokyo").len(), 1);
        assert!(view.events_at("atlantis").is_empty());
        let text = view.render();
        assert!(text.contains("paris"));
        assert!(text.contains("<unlocated>"));
        assert!(text.contains('#'));
    }

    #[test]
    fn subnet_extraction_handles_ips_and_symbolic_keys() {
        assert_eq!(subnet_of("10.1.2.3"), "10.1.2");
        assert_eq!(subnet_of("192.168.0.255"), "192.168.0");
        assert_eq!(subnet_of("victim-0"), "victim-0");
        assert_eq!(subnet_of("10.1.2.999"), "10.1.2.999"); // not a valid octet
    }

    #[test]
    fn grid_buckets_hits_by_subnet_and_time() {
        let mut grid = SubnetGrid::new(10);
        grid.observe(
            &event(5, &[("victim", "10.0.0.1"), ("amp0", "10.0.1.7")]),
            &[],
        );
        grid.observe(&event(25, &[("victim", "10.0.0.2")]), &["victim"]);
        grid.observe(&event(25, &[("attacker", "10.9.9.9")]), &["victim"]);
        assert_eq!(grid.subnet_count(), 2);
        assert_eq!(grid.hits_in("10.0.0"), 2);
        assert_eq!(grid.hits_in("10.0.1"), 1);
        assert_eq!(grid.hits_in("10.9.9"), 0);
        let text = grid.render();
        assert!(text.contains("10.0.0"));
        // Three buckets (0, 1, 2) are rendered for the 10.0.0 row.
        let row = text.lines().find(|l| l.contains("10.0.0 ")).unwrap();
        assert!(row.ends_with("@.@") || row.ends_with("@.o") || row.contains('|'));
    }

    #[test]
    fn empty_grid_renders_placeholder() {
        let grid = SubnetGrid::new(60);
        assert_eq!(grid.render(), "(no activity)\n");
        assert_eq!(grid.subnet_count(), 0);
    }
}
