//! Match-progression timelines — the Fig. 7 analogue: how far each query plan
//! has progressed toward a complete match as the stream advances, and how many
//! partial matches it is holding to get there.
//!
//! The tracker is deliberately decoupled from the engine: callers sample
//! whatever matcher they are driving (typically
//! `SjTreeMatcher::best_partial_fraction()` and
//! `QueryMetrics::partial_matches_live`) and record the samples here; the
//! tracker takes care of aligning several plans on a common timeline and
//! rendering them side by side.

use crate::table::Table;
use serde::{Deserialize, Serialize};
use streamworks_graph::Timestamp;

/// One observation of one plan's progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressionSample {
    /// Stream time of the observation.
    pub at: Timestamp,
    /// Fraction of the query's edges matched by the *most advanced* partial
    /// match (0.0–1.0); 1.0 means a complete match exists.
    pub matched_fraction: f64,
    /// Live partial matches stored across the plan's SJ-Tree nodes.
    pub live_partial_matches: u64,
    /// Complete matches emitted so far.
    pub complete_matches: u64,
}

/// Progress samples of one named plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgressionSeries {
    /// The plan's display name (e.g. the decomposition strategy).
    pub plan: String,
    /// Samples in recording order (callers record in non-decreasing time).
    pub samples: Vec<ProgressionSample>,
}

impl ProgressionSeries {
    /// Creates an empty series for a plan.
    pub fn new(plan: impl Into<String>) -> Self {
        ProgressionSeries {
            plan: plan.into(),
            samples: Vec::new(),
        }
    }

    /// Records one sample.
    pub fn record(
        &mut self,
        at: Timestamp,
        matched_fraction: f64,
        live_partial_matches: u64,
        complete_matches: u64,
    ) {
        self.samples.push(ProgressionSample {
            at,
            matched_fraction: matched_fraction.clamp(0.0, 1.0),
            live_partial_matches,
            complete_matches,
        });
    }

    /// The last sample, if any.
    pub fn latest(&self) -> Option<&ProgressionSample> {
        self.samples.last()
    }

    /// Stream time at which the plan first reached a complete match (fraction
    /// 1.0 or a positive complete-match count), if it ever did.
    pub fn time_to_first_match(&self) -> Option<Timestamp> {
        self.samples
            .iter()
            .find(|s| s.matched_fraction >= 1.0 || s.complete_matches > 0)
            .map(|s| s.at)
    }

    /// Peak number of live partial matches observed.
    pub fn peak_partial_matches(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.live_partial_matches)
            .max()
            .unwrap_or(0)
    }
}

/// A set of plans tracked over the same stream (Fig. 7 shows three SJ-Tree
/// structures for the same Smurf DDoS query).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgressionReport {
    series: Vec<ProgressionSeries>,
}

impl ProgressionReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series (consumes it).
    pub fn add_series(&mut self, series: ProgressionSeries) -> &mut Self {
        self.series.push(series);
        self
    }

    /// The tracked series.
    pub fn series(&self) -> &[ProgressionSeries] {
        &self.series
    }

    /// Renders each plan's progress as a fixed-width timeline of digits
    /// (0–9 ≙ 0–90 % matched, `#` ≙ complete), resampling every series onto
    /// `width` equally spaced points of the union time range.
    pub fn render_timeline(&self, width: usize) -> String {
        let width = width.max(2);
        let (min_t, max_t) = match self.time_range() {
            Some(r) => r,
            None => return "(no samples)\n".to_owned(),
        };
        let span = (max_t.0 - min_t.0).max(1);
        let name_width = self
            .series
            .iter()
            .map(|s| s.plan.chars().count())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!(
            "progress timeline over stream time {}s..{}s ({} columns)\n",
            min_t.0 / 1_000_000,
            max_t.0 / 1_000_000,
            width
        ));
        for series in &self.series {
            let mut line = String::with_capacity(width);
            for col in 0..width {
                let t = min_t.0 + span * col as i64 / (width as i64 - 1);
                let fraction = series
                    .samples
                    .iter()
                    .take_while(|s| s.at.0 <= t)
                    .map(|s| s.matched_fraction)
                    .fold(0.0f64, f64::max);
                let complete = series
                    .samples
                    .iter()
                    .take_while(|s| s.at.0 <= t)
                    .any(|s| s.complete_matches > 0);
                line.push(if complete || fraction >= 1.0 {
                    '#'
                } else {
                    char::from_digit((fraction * 10.0).floor().min(9.0) as u32, 10).unwrap_or('0')
                });
            }
            out.push_str(&format!("{:<name_width$} |{}|\n", series.plan, line));
        }
        out
    }

    /// Summary table: one row per plan with time-to-first-match, peak live
    /// partial matches and final complete-match count.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new([
            "plan",
            "first_match_at(s)",
            "peak_partial_matches",
            "complete_matches",
        ]);
        for s in &self.series {
            table.add_row([
                s.plan.clone(),
                s.time_to_first_match()
                    .map(|t| (t.0 / 1_000_000).to_string())
                    .unwrap_or_else(|| "-".to_owned()),
                s.peak_partial_matches().to_string(),
                s.latest()
                    .map(|x| x.complete_matches.to_string())
                    .unwrap_or_else(|| "0".to_owned()),
            ]);
        }
        table
    }

    fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let mut min_t: Option<i64> = None;
        let mut max_t: Option<i64> = None;
        for s in &self.series {
            for sample in &s.samples {
                min_t = Some(min_t.map_or(sample.at.0, |m: i64| m.min(sample.at.0)));
                max_t = Some(max_t.map_or(sample.at.0, |m: i64| m.max(sample.at.0)));
            }
        }
        Some((Timestamp(min_t?), Timestamp(max_t?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn series(plan: &str, points: &[(i64, f64, u64, u64)]) -> ProgressionSeries {
        let mut s = ProgressionSeries::new(plan);
        for &(t, f, live, complete) in points {
            s.record(ts(t), f, live, complete);
        }
        s
    }

    #[test]
    fn series_track_first_match_and_peak() {
        let s = series(
            "selective",
            &[
                (0, 0.0, 0, 0),
                (10, 0.5, 3, 0),
                (20, 1.0, 5, 1),
                (30, 1.0, 2, 2),
            ],
        );
        assert_eq!(s.time_to_first_match(), Some(ts(20)));
        assert_eq!(s.peak_partial_matches(), 5);
        assert_eq!(s.latest().unwrap().complete_matches, 2);
    }

    #[test]
    fn fractions_are_clamped() {
        let s = series("x", &[(0, -0.4, 0, 0), (5, 7.0, 0, 0)]);
        assert_eq!(s.samples[0].matched_fraction, 0.0);
        assert_eq!(s.samples[1].matched_fraction, 1.0);
    }

    #[test]
    fn timeline_renders_one_row_per_plan() {
        let mut report = ProgressionReport::new();
        report.add_series(series(
            "selective",
            &[(0, 0.2, 1, 0), (50, 0.5, 2, 0), (100, 1.0, 2, 1)],
        ));
        report.add_series(series(
            "blind",
            &[(0, 0.2, 10, 0), (50, 0.4, 40, 0), (100, 0.6, 80, 0)],
        ));
        let text = report.render_timeline(20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("selective"));
        assert!(lines[1].ends_with('|'));
        assert!(
            lines[1].contains('#'),
            "complete match must render as #: {}",
            lines[1]
        );
        assert!(
            !lines[2].contains('#'),
            "blind plan never completes: {}",
            lines[2]
        );
    }

    #[test]
    fn summary_table_lists_every_plan() {
        let mut report = ProgressionReport::new();
        report.add_series(series("a", &[(0, 0.1, 2, 0), (10, 1.0, 4, 1)]));
        report.add_series(series("b", &[(0, 0.1, 7, 0)]));
        let table = report.summary_table();
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("first_match_at"));
        assert!(text.lines().any(|l| l.starts_with('a') && l.contains("10")));
        assert!(text.lines().any(|l| l.starts_with('b') && l.contains('-')));
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = ProgressionReport::new();
        assert_eq!(report.render_timeline(10), "(no samples)\n");
        assert!(report.summary_table().is_empty());
    }
}
