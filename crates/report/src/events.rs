//! Tabular event views over [`MatchEvent`]s — the library analogue of the
//! demo's table view (Fig. 6) and the data feed behind its map view (Fig. 5).

use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use streamworks_core::{MatchEvent, QueryId};

/// One column of an event table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventColumn {
    /// Stream time (seconds) at which the match completed.
    Time,
    /// The registered query's name.
    Query,
    /// A user-supplied label for the query (see [`EventTableSpec::label`]);
    /// falls back to the query name when no label was registered.
    Label,
    /// Time span `τ(g)` of the match, in seconds.
    SpanSecs,
    /// The external key bound to one query variable.
    Binding(String),
    /// Every binding, rendered as `var=key` pairs.
    AllBindings,
}

impl EventColumn {
    fn header(&self) -> String {
        match self {
            EventColumn::Time => "time(s)".into(),
            EventColumn::Query => "query".into(),
            EventColumn::Label => "label".into(),
            EventColumn::SpanSecs => "span(s)".into(),
            EventColumn::Binding(var) => var.clone(),
            EventColumn::AllBindings => "bindings".into(),
        }
    }
}

/// Specification of an event table: the columns to show and optional labels
/// per registered query (the Fig. 5 queries are labelled "politics",
/// "accident", ... on top of their structural pattern).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventTableSpec {
    columns: Vec<EventColumn>,
    labels: BTreeMap<usize, String>,
}

impl EventTableSpec {
    /// A spec with the given columns.
    pub fn new<I: IntoIterator<Item = EventColumn>>(columns: I) -> Self {
        EventTableSpec {
            columns: columns.into_iter().collect(),
            labels: BTreeMap::new(),
        }
    }

    /// The default layout: time, label, span and all bindings.
    pub fn standard() -> Self {
        Self::new([
            EventColumn::Time,
            EventColumn::Label,
            EventColumn::SpanSecs,
            EventColumn::AllBindings,
        ])
    }

    /// Registers a human-readable label for a query id.
    pub fn label(mut self, query: QueryId, label: impl Into<String>) -> Self {
        self.labels.insert(query.0, label.into());
        self
    }

    /// The columns in effect.
    pub fn columns(&self) -> &[EventColumn] {
        &self.columns
    }

    fn cell(&self, column: &EventColumn, event: &MatchEvent) -> String {
        match column {
            EventColumn::Time => (event.at.as_micros() / 1_000_000).to_string(),
            EventColumn::Query => event.query_name.clone(),
            EventColumn::Label => self
                .labels
                .get(&event.query.0)
                .cloned()
                .unwrap_or_else(|| event.query_name.clone()),
            EventColumn::SpanSecs => event.span.as_secs().to_string(),
            EventColumn::Binding(var) => event
                .binding(var)
                .map(|b| b.key.clone())
                .unwrap_or_default(),
            EventColumn::AllBindings => event
                .bindings
                .iter()
                .map(|b| format!("{}={}", b.variable, b.key))
                .collect::<Vec<_>>()
                .join(" "),
        }
    }
}

/// A materialised event table.
#[derive(Debug, Clone)]
pub struct EventTable {
    table: Table,
    events: Vec<MatchEvent>,
}

impl EventTable {
    /// Builds a table over `events` using `spec`.
    pub fn build(spec: &EventTableSpec, events: &[MatchEvent]) -> Self {
        let mut table = Table::new(spec.columns.iter().map(|c| c.header()));
        for ev in events {
            table.add_row(spec.columns.iter().map(|c| spec.cell(c, ev)));
        }
        EventTable {
            table,
            events: events.to_vec(),
        }
    }

    /// Number of event rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        self.table.render()
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        self.table.to_csv()
    }

    /// JSON-lines rendering of the underlying events (one serialised
    /// [`MatchEvent`] per line) — the machine-readable export used by the
    /// trace/replay tooling and external dashboards.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_string(ev).expect("MatchEvent serialises"));
            out.push('\n');
        }
        out
    }

    /// Access to the backing [`Table`] (e.g. to merge with other rows).
    pub fn table(&self) -> &Table {
        &self.table
    }
}

/// Counts events per label — the data behind a Fig. 5-style "how many events
/// of each type" legend.
pub fn events_per_label(spec: &EventTableSpec, events: &[MatchEvent]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for ev in events {
        let label = spec.cell(&EventColumn::Label, ev);
        *counts.entry(label).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_core::ContinuousQueryEngine;
    use streamworks_graph::{EdgeEvent, Timestamp};

    fn sample_events() -> Vec<MatchEvent> {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_dsl(
                "QUERY pair WINDOW 1h \
                 MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
            )
            .unwrap();
        let mut out = Vec::new();
        out.extend(
            engine
                .ingest(&EdgeEvent::new(
                    "article-1",
                    "Article",
                    "rust",
                    "Keyword",
                    "mentions",
                    Timestamp::from_secs(10),
                ))
                .unwrap(),
        );
        out.extend(
            engine
                .ingest(&EdgeEvent::new(
                    "article-2",
                    "Article",
                    "rust",
                    "Keyword",
                    "mentions",
                    Timestamp::from_secs(25),
                ))
                .unwrap(),
        );
        assert_eq!(out.len(), 2);
        out
    }

    #[test]
    fn standard_table_contains_time_label_and_bindings() {
        let events = sample_events();
        let spec = EventTableSpec::standard().label(QueryId(0), "politics");
        let table = EventTable::build(&spec, &events);
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("politics"));
        assert!(text.contains("k=rust"));
        assert!(text.contains("25"));
    }

    #[test]
    fn binding_columns_extract_single_variables() {
        let events = sample_events();
        let spec = EventTableSpec::new([
            EventColumn::Time,
            EventColumn::Query,
            EventColumn::Binding("k".into()),
            EventColumn::Binding("missing".into()),
        ]);
        let table = EventTable::build(&spec, &events);
        let csv = table.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("rust"));
        // Unknown variables produce empty cells, not errors.
        assert!(csv.lines().nth(1).unwrap().ends_with(','));
    }

    #[test]
    fn json_lines_round_trip() {
        let events = sample_events();
        let table = EventTable::build(&EventTableSpec::standard(), &events);
        let jsonl = table.to_json_lines();
        assert_eq!(jsonl.lines().count(), 2);
        let back: MatchEvent = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back.query_name, "pair");
    }

    #[test]
    fn label_counts_group_by_label() {
        let events = sample_events();
        let spec = EventTableSpec::standard().label(QueryId(0), "politics");
        let counts = events_per_label(&spec, &events);
        assert_eq!(counts, vec![("politics".to_owned(), 2)]);
        // Without a label the query name is used.
        let unlabelled = events_per_label(&EventTableSpec::standard(), &events);
        assert_eq!(unlabelled, vec![("pair".to_owned(), 2)]);
    }

    #[test]
    fn empty_event_list_builds_empty_table() {
        let table = EventTable::build(&EventTableSpec::standard(), &[]);
        assert!(table.is_empty());
        assert_eq!(table.to_json_lines(), "");
    }
}
