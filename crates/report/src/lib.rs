//! # streamworks-report
//!
//! Reporting and export for the StreamWorks reproduction — the textual /
//! machine-readable analogue of the demo paper's UI (§6.2):
//!
//! * [`EventTable`] / [`EventTableSpec`] — tabular event views over
//!   [`streamworks_core::MatchEvent`]s (Fig. 6's table view), with CSV and
//!   JSON-lines export.
//! * [`GeoView`] — events grouped by a location-valued binding (Fig. 5's map
//!   view, as a ranked frequency table).
//! * [`SubnetGrid`] — activity per subnet per time bucket (Fig. 6's grid of
//!   subnetworks lighting up as a Smurf DDoS cascades).
//! * [`ProgressionReport`] — per-plan match-progression timelines (Fig. 7).
//! * [`query_graph_to_dot`] / [`sjtree_to_dot`] / [`match_to_dot`] — Graphviz
//!   DOT export of query graphs, SJ-Tree decompositions and matched
//!   neighbourhoods (the Gephi-based rendering of §6.2).
//! * [`summary_report`] and friends — the "relevant statistics" panel of §1.1
//!   (degree / type / triad distributions) as text tables.
//!
//! ```
//! use streamworks_core::ContinuousQueryEngine;
//! use streamworks_graph::{EdgeEvent, Timestamp};
//! use streamworks_report::{EventTable, EventTableSpec};
//!
//! let mut engine = ContinuousQueryEngine::builder().build().unwrap();
//! engine.register_dsl(
//!     "QUERY pair WINDOW 1h \
//!      MATCH (a1:Article)-[:mentions]->(k:Keyword), (a2:Article)-[:mentions]->(k)",
//! ).unwrap();
//! let matches = engine.ingest(&[
//!     EdgeEvent::new("a1", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(10)),
//!     EdgeEvent::new("a2", "Article", "rust", "Keyword", "mentions", Timestamp::from_secs(20)),
//! ]).unwrap();
//! let table = EventTable::build(&EventTableSpec::standard(), &matches);
//! assert_eq!(table.len(), 2);
//! println!("{}", table.render());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dot;
mod events;
mod geo;
mod progression;
mod stats;
mod table;

pub use dot::{match_to_dot, query_graph_to_dot, sjtree_to_dot};
pub use events::{events_per_label, EventColumn, EventTable, EventTableSpec};
pub use geo::{subnet_of, GeoView, SubnetGrid};
pub use progression::{ProgressionReport, ProgressionSample, ProgressionSeries};
pub use stats::{degree_report, summary_report, triad_report, type_distribution_table};
pub use table::Table;
