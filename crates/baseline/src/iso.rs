//! Static subgraph-isomorphism search over a graph snapshot.
//!
//! A VF2-flavoured backtracking matcher: query vertices are bound one edge at
//! a time, candidate edges are filtered by edge type, endpoint types,
//! attribute predicates and injectivity, and the time-window constraint prunes
//! branches eagerly. This matcher is the building block of the
//! *repeated-search* baseline (§2.2 discusses this strategy as the alternative
//! to incremental matching) and the reference oracle for the equivalence tests
//! of the incremental engine.

use crate::embedding::Embedding;
use streamworks_graph::{
    Direction, Duration, Edge, EdgeId, GraphSnapshot, Timestamp, TypeId, VertexId,
};
use streamworks_query::{QueryEdgeId, QueryGraph, QueryVertexId};

/// Resolved (graph-specific) constraints for one query, recomputed per search.
struct ResolvedQuery<'q> {
    query: &'q QueryGraph,
    /// `Some(Err(()))` marks a type name unknown to the graph (matches nothing).
    vtypes: Vec<Option<Result<TypeId, ()>>>,
    etypes: Vec<Option<Result<TypeId, ()>>>,
}

impl<'q> ResolvedQuery<'q> {
    fn new(query: &'q QueryGraph, snapshot: &GraphSnapshot<'_>) -> Self {
        let vtypes = query
            .vertices()
            .map(|v| {
                v.vtype
                    .as_deref()
                    .map(|n| snapshot.vertex_type_id(n).ok_or(()))
            })
            .collect();
        let etypes = query
            .edges()
            .map(|e| {
                e.etype
                    .as_deref()
                    .map(|n| snapshot.edge_type_id(n).ok_or(()))
            })
            .collect();
        ResolvedQuery {
            query,
            vtypes,
            etypes,
        }
    }

    fn vertex_ok(&self, snapshot: &GraphSnapshot<'_>, qv: QueryVertexId, dv: VertexId) -> bool {
        let Some(vertex) = snapshot.vertex(dv) else {
            return false;
        };
        match self.vtypes[qv.0] {
            None => {}
            Some(Ok(t)) if vertex.vtype == t => {}
            Some(_) => return false,
        }
        self.query
            .vertex(qv)
            .predicates
            .iter()
            .all(|p| p.matches(&vertex.attrs))
    }

    fn edge_ok(&self, snapshot: &GraphSnapshot<'_>, qe: QueryEdgeId, edge: &Edge) -> bool {
        match self.etypes[qe.0] {
            None => {}
            Some(Ok(t)) if edge.etype == t => {}
            Some(_) => return false,
        }
        let q = self.query.edge(qe);
        if !q.predicates.iter().all(|p| p.matches(&edge.attrs)) {
            return false;
        }
        self.vertex_ok(snapshot, q.src, edge.src) && self.vertex_ok(snapshot, q.dst, edge.dst)
    }
}

/// Search state during backtracking.
struct SearchState<'q, 'g, 's> {
    resolved: &'s ResolvedQuery<'q>,
    snapshot: &'s GraphSnapshot<'g>,
    window: Duration,
    vertex_binding: Vec<Option<VertexId>>,
    edge_binding: Vec<Option<EdgeId>>,
    earliest: Timestamp,
    latest: Timestamp,
    /// Query-edge matching order (most constrained first is not needed for
    /// correctness; we use a connectivity-preserving order).
    order: Vec<QueryEdgeId>,
    results: Vec<Embedding>,
    /// Soft cap on results to guard against pathological explosion in tests.
    limit: usize,
    /// Number of candidate edges examined (work counter for benchmarks).
    candidates_examined: u64,
}

impl<'q, 'g, 's> SearchState<'q, 'g, 's> {
    fn bind_vertex(&mut self, qv: QueryVertexId, dv: VertexId) -> Result<bool, ()> {
        match self.vertex_binding[qv.0] {
            Some(existing) => Ok(existing == dv),
            None => {
                if self.vertex_binding.contains(&Some(dv)) {
                    return Ok(false);
                }
                self.vertex_binding[qv.0] = Some(dv);
                Err(()) // marker meaning "newly bound" (needs undo)
            }
        }
    }

    fn recurse(&mut self, depth: usize) {
        if self.results.len() >= self.limit {
            return;
        }
        if depth == self.order.len() {
            self.results.push(Embedding {
                vertices: self
                    .vertex_binding
                    .iter()
                    .map(|b| b.unwrap_or(VertexId(u32::MAX)))
                    .collect(),
                edges: self
                    .edge_binding
                    .iter()
                    .map(|b| b.expect("all query edges bound at full depth"))
                    .collect(),
                earliest: self.earliest,
                latest: self.latest,
            });
            return;
        }
        let qe = self.order[depth];
        let q = self.resolved.query.edge(qe);
        let src_bound = self.vertex_binding[q.src.0];
        let dst_bound = self.vertex_binding[q.dst.0];

        // Collect candidate data edges for this query edge.
        let candidates: Vec<Edge> = match (src_bound, dst_bound) {
            (Some(src), _) => self
                .incident_candidates(qe, q.src, src, Direction::Out)
                .into_iter()
                .collect(),
            (None, Some(dst)) => self
                .incident_candidates(qe, q.dst, dst, Direction::In)
                .into_iter()
                .collect(),
            (None, None) => {
                // Unanchored query edge (first edge, or disconnected query):
                // scan all edges of the constrained type.
                let iter: Vec<Edge> = match self.resolved.etypes[qe.0] {
                    Some(Err(())) => Vec::new(),
                    Some(Ok(t)) => self.snapshot.edges_with_type(t).cloned().collect(),
                    None => self.snapshot.graph().edges().cloned().collect(),
                };
                iter
            }
        };

        for edge in candidates {
            self.candidates_examined += 1;
            if !self.resolved.edge_ok(self.snapshot, qe, &edge) {
                continue;
            }
            if self.edge_binding.contains(&Some(edge.id)) {
                continue;
            }
            // Window pruning.
            let new_earliest = self.earliest.min(edge.timestamp);
            let new_latest = self.latest.max(edge.timestamp);
            if depth > 0 && (new_latest - new_earliest).as_micros() >= self.window.as_micros() {
                continue;
            }

            // Bind endpoints, remembering whether each was newly bound.
            let src_new = match self.bind_vertex(q.src, edge.src) {
                Ok(true) => false,
                Ok(false) => continue,
                Err(()) => true,
            };
            let dst_new = match self.bind_vertex(q.dst, edge.dst) {
                Ok(true) => false,
                Ok(false) => {
                    if src_new {
                        self.vertex_binding[q.src.0] = None;
                    }
                    continue;
                }
                Err(()) => true,
            };

            let (old_earliest, old_latest) = (self.earliest, self.latest);
            self.earliest = new_earliest;
            self.latest = new_latest;
            self.edge_binding[qe.0] = Some(edge.id);

            self.recurse(depth + 1);

            self.edge_binding[qe.0] = None;
            self.earliest = old_earliest;
            self.latest = old_latest;
            if dst_new {
                self.vertex_binding[q.dst.0] = None;
            }
            if src_new {
                self.vertex_binding[q.src.0] = None;
            }
        }
    }

    fn incident_candidates(
        &self,
        qe: QueryEdgeId,
        _qv: QueryVertexId,
        dv: VertexId,
        dir: Direction,
    ) -> Vec<Edge> {
        match self.resolved.etypes[qe.0] {
            Some(Err(())) => Vec::new(),
            Some(Ok(t)) => self
                .snapshot
                .neighbors(dv, dir, t)
                .map(|(e, _)| e.clone())
                .collect(),
            None => self
                .snapshot
                .incident_edges_any_type(dv, dir)
                .cloned()
                .collect(),
        }
    }
}

/// Result of a static search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The embeddings found (up to the limit).
    pub embeddings: Vec<Embedding>,
    /// Candidate edges examined (a machine-independent work measure).
    pub candidates_examined: u64,
}

/// Enumerates every embedding of `query` in the snapshot whose time span is
/// strictly below the query's window. At most `limit` embeddings are returned.
pub fn find_all_embeddings(
    snapshot: &GraphSnapshot<'_>,
    query: &QueryGraph,
    limit: usize,
) -> SearchOutcome {
    let resolved = ResolvedQuery::new(query, snapshot);
    // Matching order: start from edge 0 and repeatedly add an edge adjacent to
    // the already-ordered set (falling back to any remaining edge for
    // disconnected queries).
    let mut order: Vec<QueryEdgeId> = Vec::with_capacity(query.edge_count());
    let mut remaining: Vec<QueryEdgeId> = query.edge_ids().collect();
    let mut placed: Vec<QueryVertexId> = Vec::new();
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|&e| {
                order.is_empty() || query.edge(e).endpoints().iter().any(|v| placed.contains(v))
            })
            .unwrap_or(0);
        let e = remaining.remove(idx);
        for v in query.edge(e).endpoints() {
            if !placed.contains(&v) {
                placed.push(v);
            }
        }
        order.push(e);
    }

    let mut state = SearchState {
        resolved: &resolved,
        snapshot,
        window: query.window(),
        vertex_binding: vec![None; query.vertex_count()],
        edge_binding: vec![None; query.edge_count()],
        earliest: Timestamp(i64::MAX),
        latest: Timestamp(i64::MIN),
        order,
        results: Vec::new(),
        limit,
        candidates_examined: 0,
    };
    // Fix up initial earliest/latest handling: the first bound edge sets them.
    state.earliest = Timestamp(i64::MAX);
    state.latest = Timestamp(i64::MIN);
    state.recurse(0);
    SearchOutcome {
        embeddings: state.results,
        candidates_examined: state.candidates_examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{DynamicGraph, EdgeEvent};
    use streamworks_query::QueryGraphBuilder;

    fn ingest(g: &mut DynamicGraph, src: &str, st: &str, dst: &str, dt: &str, et: &str, t: i64) {
        g.ingest(&EdgeEvent::new(
            src,
            st,
            dst,
            dt,
            et,
            Timestamp::from_secs(t),
        ));
    }

    fn pair_query(window_secs: i64) -> QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(Duration::from_secs(window_secs))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn finds_all_embeddings_of_a_shared_keyword() {
        let mut g = DynamicGraph::unbounded();
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        ingest(&mut g, "a2", "Article", "k1", "Keyword", "mentions", 2);
        ingest(&mut g, "a3", "Article", "k1", "Keyword", "mentions", 3);
        let snap = GraphSnapshot::new(&g);
        let out = find_all_embeddings(&snap, &pair_query(3600), 10_000);
        // Ordered pairs of distinct articles: 3 * 2 = 6 embeddings.
        assert_eq!(out.embeddings.len(), 6);
        assert!(out.candidates_examined > 0);
    }

    #[test]
    fn window_excludes_distant_pairs() {
        let mut g = DynamicGraph::unbounded();
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 0);
        ingest(&mut g, "a2", "Article", "k1", "Keyword", "mentions", 1_000);
        let snap = GraphSnapshot::new(&g);
        let within = find_all_embeddings(&snap, &pair_query(2_000), 100);
        let outside = find_all_embeddings(&snap, &pair_query(100), 100);
        assert_eq!(within.embeddings.len(), 2);
        assert!(outside.embeddings.is_empty());
    }

    #[test]
    fn type_constraints_filter_candidates() {
        let mut g = DynamicGraph::unbounded();
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        ingest(&mut g, "u1", "User", "k1", "Keyword", "mentions", 2);
        let snap = GraphSnapshot::new(&g);
        let q = QueryGraphBuilder::new("typed")
            .window(Duration::from_secs(100))
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .edge("a", "mentions", "k")
            .build()
            .unwrap();
        let out = find_all_embeddings(&snap, &q, 100);
        assert_eq!(out.embeddings.len(), 1);
        assert_eq!(
            g.vertex_key(out.embeddings[0].vertex(q.vertex_by_name("a").unwrap().id)),
            Some("a1")
        );
    }

    #[test]
    fn triangle_query_on_directed_cycle() {
        let mut g = DynamicGraph::unbounded();
        ingest(&mut g, "x", "IP", "y", "IP", "flow", 1);
        ingest(&mut g, "y", "IP", "z", "IP", "flow", 2);
        ingest(&mut g, "z", "IP", "x", "IP", "flow", 3);
        // A second, incomplete cycle.
        ingest(&mut g, "p", "IP", "q", "IP", "flow", 4);
        let snap = GraphSnapshot::new(&g);
        let q = QueryGraphBuilder::new("tri")
            .window(Duration::from_secs(100))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .edge("c", "flow", "a")
            .build()
            .unwrap();
        let out = find_all_embeddings(&snap, &q, 100);
        // The directed 3-cycle has 3 rotational embeddings.
        assert_eq!(out.embeddings.len(), 3);
    }

    #[test]
    fn limit_caps_result_count() {
        let mut g = DynamicGraph::unbounded();
        for i in 0..20 {
            ingest(
                &mut g,
                &format!("a{i}"),
                "Article",
                "k",
                "Keyword",
                "mentions",
                i,
            );
        }
        let snap = GraphSnapshot::new(&g);
        let out = find_all_embeddings(&snap, &pair_query(3600), 7);
        assert_eq!(out.embeddings.len(), 7);
    }

    #[test]
    fn unknown_type_names_yield_no_matches() {
        let mut g = DynamicGraph::unbounded();
        ingest(&mut g, "a1", "Article", "k1", "Keyword", "mentions", 1);
        let snap = GraphSnapshot::new(&g);
        let q = QueryGraphBuilder::new("ghost")
            .vertex("m", "Malware")
            .vertex("h", "Host")
            .edge("m", "infects", "h")
            .build()
            .unwrap();
        let out = find_all_embeddings(&snap, &q, 100);
        assert!(out.embeddings.is_empty());
    }
}
