//! Independent verification of match assignments.
//!
//! Any engine (incremental or baseline) can have its output checked against
//! the definition of a windowed subgraph isomorphism. The checker is written
//! directly from the problem statement of paper §2.1 and deliberately shares
//! no code with the matchers, so agreement between the two is meaningful.

use streamworks_graph::DynamicGraph;
use streamworks_graph::EdgeId;
use streamworks_query::{QueryEdgeId, QueryGraph};

/// Reasons a claimed match can fail verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The assignment does not cover every query edge exactly once.
    WrongEdgeCount {
        /// Edges covered by the assignment.
        got: usize,
        /// Edges in the query.
        expected: usize,
    },
    /// A referenced data edge is not (or no longer) in the graph.
    MissingDataEdge(EdgeId),
    /// A data edge violates its query edge's type or predicate constraints.
    ConstraintViolation(QueryEdgeId),
    /// Two query vertices map to the same data vertex, or one query vertex
    /// maps to two different data vertices.
    NotInjective,
    /// The same data edge realises two different query edges.
    DataEdgeReused(EdgeId),
    /// The match's time span is not strictly below the query window.
    OutsideWindow,
}

/// Verifies that `assignment` — a (query edge → data edge) map covering every
/// query edge — is a valid windowed isomorphism of `query` in `graph`.
pub fn verify_assignment(
    graph: &DynamicGraph,
    query: &QueryGraph,
    assignment: &[(QueryEdgeId, EdgeId)],
) -> Result<(), VerifyError> {
    if assignment.len() != query.edge_count() {
        return Err(VerifyError::WrongEdgeCount {
            got: assignment.len(),
            expected: query.edge_count(),
        });
    }
    let mut covered = vec![false; query.edge_count()];
    let mut used_data_edges: Vec<EdgeId> = Vec::with_capacity(assignment.len());
    let mut vertex_map: Vec<Option<streamworks_graph::VertexId>> = vec![None; query.vertex_count()];
    let mut earliest = i64::MAX;
    let mut latest = i64::MIN;

    for &(qe, de) in assignment {
        if covered[qe.0] {
            return Err(VerifyError::WrongEdgeCount {
                got: assignment.len(),
                expected: query.edge_count(),
            });
        }
        covered[qe.0] = true;
        let Some(edge) = graph.edge(de) else {
            return Err(VerifyError::MissingDataEdge(de));
        };
        if used_data_edges.contains(&de) {
            return Err(VerifyError::DataEdgeReused(de));
        }
        used_data_edges.push(de);

        let q = query.edge(qe);
        // Edge type.
        if let Some(name) = q.etype.as_deref() {
            if graph.edge_type_name(edge.etype) != Some(name) {
                return Err(VerifyError::ConstraintViolation(qe));
            }
        }
        // Edge predicates.
        if !q.predicates.iter().all(|p| p.matches(&edge.attrs)) {
            return Err(VerifyError::ConstraintViolation(qe));
        }
        // Endpoints: types, predicates and binding consistency.
        for (qv, dv) in [(q.src, edge.src), (q.dst, edge.dst)] {
            let Some(vertex) = graph.vertex(dv) else {
                return Err(VerifyError::ConstraintViolation(qe));
            };
            let qvert = query.vertex(qv);
            if let Some(name) = qvert.vtype.as_deref() {
                if graph.vertex_type_name(vertex.vtype) != Some(name) {
                    return Err(VerifyError::ConstraintViolation(qe));
                }
            }
            if !qvert.predicates.iter().all(|p| p.matches(&vertex.attrs)) {
                return Err(VerifyError::ConstraintViolation(qe));
            }
            match vertex_map[qv.0] {
                Some(existing) if existing != dv => return Err(VerifyError::NotInjective),
                _ => vertex_map[qv.0] = Some(dv),
            }
        }
        earliest = earliest.min(edge.timestamp.as_micros());
        latest = latest.max(edge.timestamp.as_micros());
    }

    // Injectivity across distinct query vertices.
    let mut bound: Vec<_> = vertex_map.iter().flatten().collect();
    bound.sort();
    let before = bound.len();
    bound.dedup();
    if bound.len() != before {
        return Err(VerifyError::NotInjective);
    }

    if latest - earliest >= query.window().as_micros() {
        return Err(VerifyError::OutsideWindow);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{Duration, EdgeEvent, Timestamp};
    use streamworks_query::QueryGraphBuilder;

    fn setup() -> (DynamicGraph, QueryGraph, Vec<(QueryEdgeId, EdgeId)>) {
        let mut g = DynamicGraph::unbounded();
        let e0 = g
            .ingest(&EdgeEvent::new(
                "a1",
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(1),
            ))
            .edge;
        let e1 = g
            .ingest(&EdgeEvent::new(
                "a2",
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(2),
            ))
            .edge;
        let q = QueryGraphBuilder::new("pair")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        let assignment = vec![(QueryEdgeId(0), e0), (QueryEdgeId(1), e1)];
        (g, q, assignment)
    }

    #[test]
    fn valid_assignment_verifies() {
        let (g, q, a) = setup();
        assert_eq!(verify_assignment(&g, &q, &a), Ok(()));
    }

    #[test]
    fn incomplete_assignment_fails() {
        let (g, q, a) = setup();
        assert!(matches!(
            verify_assignment(&g, &q, &a[..1]),
            Err(VerifyError::WrongEdgeCount {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn reused_data_edge_fails() {
        let (g, q, a) = setup();
        let bad = vec![(QueryEdgeId(0), a[0].1), (QueryEdgeId(1), a[0].1)];
        assert!(matches!(
            verify_assignment(&g, &q, &bad),
            Err(VerifyError::DataEdgeReused(_)) | Err(VerifyError::NotInjective)
        ));
    }

    #[test]
    fn missing_edge_fails() {
        let (g, q, a) = setup();
        let bad = vec![(QueryEdgeId(0), a[0].1), (QueryEdgeId(1), EdgeId(999))];
        assert!(matches!(
            verify_assignment(&g, &q, &bad),
            Err(VerifyError::MissingDataEdge(_))
        ));
    }

    #[test]
    fn window_violation_fails() {
        let (g, mut q, a) = setup();
        q.set_window(Duration::from_secs(1));
        assert_eq!(
            verify_assignment(&g, &q, &a),
            Err(VerifyError::OutsideWindow)
        );
    }

    #[test]
    fn constraint_violation_fails() {
        let (mut g, q, _) = setup();
        // A "located" edge cannot realise a "mentions" query edge.
        let e0 = g
            .ingest(&EdgeEvent::new(
                "a1",
                "Article",
                "l1",
                "Location",
                "located",
                Timestamp::from_secs(3),
            ))
            .edge;
        let e1 = g
            .ingest(&EdgeEvent::new(
                "a2",
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(4),
            ))
            .edge;
        let bad = vec![(QueryEdgeId(0), e0), (QueryEdgeId(1), e1)];
        assert!(matches!(
            verify_assignment(&g, &q, &bad),
            Err(VerifyError::ConstraintViolation(_))
        ));
    }
}
