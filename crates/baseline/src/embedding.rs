//! Embeddings produced by the baseline matchers.
//!
//! The baselines do not share runtime types with `streamworks-core` (the core
//! crate uses the baselines only as dev-dependencies for equivalence tests),
//! so they report matches with this small standalone type. Embeddings can be
//! reduced to a canonical signature — the sorted (query edge, data edge)
//! assignment — which is what the equivalence tests compare.

use streamworks_graph::{Duration, EdgeId, Timestamp, VertexId};
use streamworks_query::{QueryEdgeId, QueryVertexId};

/// A complete embedding of a query graph into the data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// Data vertex assigned to each query vertex, indexed by query vertex id.
    pub vertices: Vec<VertexId>,
    /// Data edge assigned to each query edge, indexed by query edge id.
    pub edges: Vec<EdgeId>,
    /// Earliest data-edge timestamp.
    pub earliest: Timestamp,
    /// Latest data-edge timestamp.
    pub latest: Timestamp,
}

impl Embedding {
    /// The time span of the embedding.
    pub fn span(&self) -> Duration {
        self.latest - self.earliest
    }

    /// True if the span is strictly within the window.
    pub fn within_window(&self, window: Duration) -> bool {
        self.span().as_micros() < window.as_micros()
    }

    /// Data vertex bound to a query vertex.
    pub fn vertex(&self, qv: QueryVertexId) -> VertexId {
        self.vertices[qv.0]
    }

    /// Data edge bound to a query edge.
    pub fn edge(&self, qe: QueryEdgeId) -> EdgeId {
        self.edges[qe.0]
    }

    /// Canonical signature: the (query edge → data edge) assignment, which
    /// uniquely identifies an embedding of a fixed query.
    pub fn signature(&self) -> Vec<(usize, u64)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(q, e)| (q, e.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_window() {
        let e = Embedding {
            vertices: vec![VertexId(1), VertexId(2)],
            edges: vec![EdgeId(10)],
            earliest: Timestamp::from_secs(100),
            latest: Timestamp::from_secs(160),
        };
        assert_eq!(e.span(), Duration::from_secs(60));
        assert!(e.within_window(Duration::from_secs(61)));
        assert!(!e.within_window(Duration::from_secs(60)));
        assert_eq!(e.vertex(QueryVertexId(1)), VertexId(2));
        assert_eq!(e.edge(QueryEdgeId(0)), EdgeId(10));
        assert_eq!(e.signature(), vec![(0, 10)]);
    }
}
