//! The repeated-search baseline.
//!
//! Paper §2.2: "We can search for a pattern repeatedly or we can adopt an
//! incremental approach. The work by Fan et al. presents incremental
//! algorithms ... However, their solution to subgraph isomorphism is based on
//! the repeated search strategy." This matcher embodies that strategy: on
//! every edge arrival it re-runs a full subgraph-isomorphism search over the
//! current (windowed) graph and reports the embeddings it has not reported
//! before. It is exact but pays the full search cost per update, which is the
//! cost profile the incremental SJ-Tree algorithm is designed to beat
//! (experiment E5).

use crate::embedding::Embedding;
use crate::iso::find_all_embeddings;
use std::collections::HashSet;
use streamworks_graph::{DynamicGraph, GraphSnapshot};
use streamworks_query::QueryGraph;

/// Continuous matcher that re-searches the whole graph on every update.
#[derive(Debug)]
pub struct RepeatedSearchMatcher {
    query: QueryGraph,
    /// Signatures of embeddings already reported (an embedding stays reported
    /// even after its edges expire).
    seen: HashSet<Vec<(usize, u64)>>,
    /// Result cap per search, to keep pathological cases bounded.
    limit: usize,
    /// Cumulative candidate edges examined (work measure).
    pub candidates_examined: u64,
    /// Cumulative full searches executed.
    pub searches_run: u64,
}

impl RepeatedSearchMatcher {
    /// Creates a repeated-search matcher for `query`.
    pub fn new(query: QueryGraph) -> Self {
        RepeatedSearchMatcher {
            query,
            seen: HashSet::new(),
            limit: 1_000_000,
            candidates_examined: 0,
            searches_run: 0,
        }
    }

    /// Sets the per-search result cap.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// The query being matched.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Number of distinct embeddings reported so far.
    pub fn total_reported(&self) -> usize {
        self.seen.len()
    }

    /// Re-searches the current graph and returns the embeddings not reported
    /// before. Call after every graph update (edge ingest).
    pub fn process_update(&mut self, graph: &DynamicGraph) -> Vec<Embedding> {
        self.searches_run += 1;
        let snapshot = GraphSnapshot::new(graph);
        let outcome = find_all_embeddings(&snapshot, &self.query, self.limit);
        self.candidates_examined += outcome.candidates_examined;
        outcome
            .embeddings
            .into_iter()
            .filter(|e| self.seen.insert(e.signature()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::Duration;
    use streamworks_graph::{EdgeEvent, Timestamp};
    use streamworks_query::QueryGraphBuilder;

    fn pair_query() -> QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn reports_each_embedding_exactly_once() {
        let mut g = DynamicGraph::unbounded();
        let mut m = RepeatedSearchMatcher::new(pair_query());
        let events = [("a1", 1i64), ("a2", 2), ("a3", 3)];
        let mut total = 0;
        for (a, t) in events {
            g.ingest(&EdgeEvent::new(
                a,
                "Article",
                "k1",
                "Keyword",
                "mentions",
                Timestamp::from_secs(t),
            ));
            total += m.process_update(&g).len();
        }
        // 3 articles sharing a keyword: 6 ordered pairs in total.
        assert_eq!(total, 6);
        assert_eq!(m.total_reported(), 6);
        // Re-running without a new edge adds nothing.
        assert!(m.process_update(&g).is_empty());
        assert_eq!(m.searches_run, 4);
        assert!(m.candidates_examined > 0);
    }

    #[test]
    fn incremental_deltas_match_arrival_order() {
        let mut g = DynamicGraph::unbounded();
        let mut m = RepeatedSearchMatcher::new(pair_query());
        g.ingest(&EdgeEvent::new(
            "a1",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(1),
        ));
        assert!(m.process_update(&g).is_empty());
        g.ingest(&EdgeEvent::new(
            "a2",
            "Article",
            "k1",
            "Keyword",
            "mentions",
            Timestamp::from_secs(2),
        ));
        assert_eq!(m.process_update(&g).len(), 2);
    }
}
