//! The naive edge-driven expansion baseline.
//!
//! Paper §3.1: "A simplistic approach to solving this problem would be to
//! check, for every edge update, if that edge matches one in the query graph.
//! Once an edge is considered as a matching candidate, the next step is to
//! consider different combinations of matches it can participate in. While
//! intuitively simple, this approach falls prey to combinatorial explosion
//! very quickly."
//!
//! This matcher implements exactly that: for every new edge it anchors the
//! edge on each query edge it can realise and backtracks over the *entire*
//! remaining query in the neighbourhood of the partial embedding — no
//! decomposition, no materialised partial matches, no join ordering. It is
//! exact and incremental (each embedding is found when its last edge arrives)
//! but repeats neighbourhood exploration that the SJ-Tree algorithm would have
//! memoised in its match collections.

use crate::embedding::Embedding;
use streamworks_graph::{Direction, Duration, DynamicGraph, Edge, EdgeId, Timestamp, VertexId};
use streamworks_query::{QueryEdgeId, QueryGraph, QueryVertexId};

/// Continuous matcher that redoes a full anchored search for every new edge.
#[derive(Debug)]
pub struct NaiveEdgeExpansion {
    query: QueryGraph,
    /// Cumulative candidate edges examined (work measure).
    pub candidates_examined: u64,
}

impl NaiveEdgeExpansion {
    /// Creates the matcher for `query`.
    pub fn new(query: QueryGraph) -> Self {
        NaiveEdgeExpansion {
            query,
            candidates_examined: 0,
        }
    }

    /// The query being matched.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Finds every embedding completed by `new_edge`.
    pub fn process_edge(&mut self, graph: &DynamicGraph, new_edge: &Edge) -> Vec<Embedding> {
        let mut results = Vec::new();
        let window = self.query.window();
        let query = &self.query;
        let candidates_examined = &mut self.candidates_examined;
        for anchor in query.edge_ids() {
            if !edge_matches(query, graph, anchor, new_edge) {
                continue;
            }
            let q = query.edge(anchor);
            // Bind the anchor edge's endpoints, respecting injectivity: two
            // distinct query vertices may not share a data vertex, and a query
            // self-loop requires a data self-loop.
            let mut vertex_binding: Vec<Option<VertexId>> = vec![None; self.query.vertex_count()];
            if q.src == q.dst {
                if new_edge.src != new_edge.dst {
                    continue;
                }
                vertex_binding[q.src.0] = Some(new_edge.src);
            } else {
                if new_edge.src == new_edge.dst {
                    continue;
                }
                vertex_binding[q.src.0] = Some(new_edge.src);
                vertex_binding[q.dst.0] = Some(new_edge.dst);
            }
            let mut edge_binding = vec![None; self.query.edge_count()];
            edge_binding[anchor.0] = Some(new_edge.id);
            let remaining: Vec<QueryEdgeId> = query.edge_ids().filter(|&e| e != anchor).collect();
            extend(
                query,
                graph,
                candidates_examined,
                &remaining,
                &mut vertex_binding,
                &mut edge_binding,
                new_edge.timestamp,
                new_edge.timestamp,
                window,
                &mut results,
            );
        }
        results
    }
}

#[allow(clippy::too_many_arguments)]
fn extend(
    query: &QueryGraph,
    graph: &DynamicGraph,
    candidates_examined: &mut u64,
    remaining: &[QueryEdgeId],
    vertex_binding: &mut Vec<Option<VertexId>>,
    edge_binding: &mut Vec<Option<EdgeId>>,
    earliest: Timestamp,
    latest: Timestamp,
    window: Duration,
    results: &mut Vec<Embedding>,
) {
    if remaining.is_empty() {
        results.push(Embedding {
            vertices: vertex_binding
                .iter()
                .map(|b| b.unwrap_or(VertexId(u32::MAX)))
                .collect(),
            edges: edge_binding
                .iter()
                .map(|b| b.expect("complete embedding"))
                .collect(),
            earliest,
            latest,
        });
        return;
    }
    // Pick a remaining query edge with a bound endpoint (query is connected).
    let pick = remaining
        .iter()
        .position(|&qe| {
            let e = query.edge(qe);
            vertex_binding[e.src.0].is_some() || vertex_binding[e.dst.0].is_some()
        })
        .unwrap_or(0);
    let qe = remaining[pick];
    let rest: Vec<QueryEdgeId> = remaining.iter().copied().filter(|&e| e != qe).collect();
    let q = query.edge(qe);

    let candidates: Vec<Edge> = match (vertex_binding[q.src.0], vertex_binding[q.dst.0]) {
        (Some(src), _) => candidates_around(query, graph, qe, src, Direction::Out),
        (None, Some(dst)) => candidates_around(query, graph, qe, dst, Direction::In),
        (None, None) => graph.edges().cloned().collect(),
    };
    for edge in candidates {
        *candidates_examined += 1;
        if !edge_matches(query, graph, qe, &edge) {
            continue;
        }
        if edge_binding.contains(&Some(edge.id)) {
            continue;
        }
        let new_earliest = earliest.min(edge.timestamp);
        let new_latest = latest.max(edge.timestamp);
        if (new_latest - new_earliest).as_micros() >= window.as_micros() {
            continue;
        }
        // Bind endpoints with injectivity, remembering what to undo.
        let mut undo: Vec<QueryVertexId> = Vec::with_capacity(2);
        let mut ok = true;
        for (qv, dv) in [(q.src, edge.src), (q.dst, edge.dst)] {
            match vertex_binding[qv.0] {
                Some(existing) => {
                    if existing != dv {
                        ok = false;
                        break;
                    }
                }
                None => {
                    if vertex_binding.contains(&Some(dv)) {
                        ok = false;
                        break;
                    }
                    vertex_binding[qv.0] = Some(dv);
                    undo.push(qv);
                }
            }
        }
        if ok {
            edge_binding[qe.0] = Some(edge.id);
            extend(
                query,
                graph,
                candidates_examined,
                &rest,
                vertex_binding,
                edge_binding,
                new_earliest,
                new_latest,
                window,
                results,
            );
            edge_binding[qe.0] = None;
        }
        for qv in undo {
            vertex_binding[qv.0] = None;
        }
    }
}

fn candidates_around(
    query: &QueryGraph,
    graph: &DynamicGraph,
    qe: QueryEdgeId,
    dv: VertexId,
    dir: Direction,
) -> Vec<Edge> {
    let q = query.edge(qe);
    match q.etype.as_deref().map(|n| graph.edge_type_id(n)) {
        Some(None) => Vec::new(),
        Some(Some(t)) => graph.incident_edges(dv, dir, t).cloned().collect(),
        None => graph.incident_edges_any_type(dv, dir).cloned().collect(),
    }
}

fn edge_matches(query: &QueryGraph, graph: &DynamicGraph, qe: QueryEdgeId, edge: &Edge) -> bool {
    let q = query.edge(qe);
    if let Some(name) = q.etype.as_deref() {
        match graph.edge_type_id(name) {
            Some(t) if t == edge.etype => {}
            _ => return false,
        }
    }
    if !q.predicates.iter().all(|p| p.matches(&edge.attrs)) {
        return false;
    }
    for (qv, dv) in [(q.src, edge.src), (q.dst, edge.dst)] {
        let Some(vertex) = graph.vertex(dv) else {
            return false;
        };
        let qvert = query.vertex(qv);
        if let Some(name) = qvert.vtype.as_deref() {
            match graph.vertex_type_id(name) {
                Some(t) if t == vertex.vtype => {}
                _ => return false,
            }
        }
        if !qvert.predicates.iter().all(|p| p.matches(&vertex.attrs)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeEvent;
    use streamworks_query::QueryGraphBuilder;

    fn pair_query() -> QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    fn feed(
        g: &mut DynamicGraph,
        m: &mut NaiveEdgeExpansion,
        src: &str,
        dst: &str,
        t: i64,
    ) -> Vec<Embedding> {
        let r = g.ingest(&EdgeEvent::new(
            src,
            "Article",
            dst,
            "Keyword",
            "mentions",
            Timestamp::from_secs(t),
        ));
        let edge = g.edge(r.edge).unwrap().clone();
        m.process_edge(g, &edge)
    }

    #[test]
    fn finds_embeddings_incrementally() {
        let mut g = DynamicGraph::unbounded();
        let mut m = NaiveEdgeExpansion::new(pair_query());
        assert!(feed(&mut g, &mut m, "a1", "k1", 1).is_empty());
        assert_eq!(feed(&mut g, &mut m, "a2", "k1", 2).len(), 2);
        assert_eq!(feed(&mut g, &mut m, "a3", "k1", 3).len(), 4);
        assert!(m.candidates_examined > 0);
    }

    #[test]
    fn respects_window() {
        let mut g = DynamicGraph::unbounded();
        let mut q = pair_query();
        q.set_window(Duration::from_secs(10));
        let mut m = NaiveEdgeExpansion::new(q);
        feed(&mut g, &mut m, "a1", "k1", 0);
        assert!(feed(&mut g, &mut m, "a2", "k1", 100).is_empty());
        assert_eq!(feed(&mut g, &mut m, "a3", "k1", 105).len(), 2);
    }

    #[test]
    fn triangle_detection() {
        let q = QueryGraphBuilder::new("tri")
            .window(Duration::from_secs(100))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .edge("c", "flow", "a")
            .build()
            .unwrap();
        let mut g = DynamicGraph::unbounded();
        let mut m = NaiveEdgeExpansion::new(q);
        let feed_ip =
            |g: &mut DynamicGraph, m: &mut NaiveEdgeExpansion, s: &str, d: &str, t: i64| {
                let r = g.ingest(&EdgeEvent::new(
                    s,
                    "IP",
                    d,
                    "IP",
                    "flow",
                    Timestamp::from_secs(t),
                ));
                let e = g.edge(r.edge).unwrap().clone();
                m.process_edge(g, &e).len()
            };
        assert_eq!(feed_ip(&mut g, &mut m, "x", "y", 1), 0);
        assert_eq!(feed_ip(&mut g, &mut m, "y", "z", 2), 0);
        // The closing edge completes the cycle; 3 rotations are all found at
        // once because each anchors the new edge on a different query edge.
        assert_eq!(feed_ip(&mut g, &mut m, "z", "x", 3), 3);
    }
}
