//! # streamworks-baseline
//!
//! Baseline subgraph matchers for the StreamWorks reproduction:
//!
//! * [`find_all_embeddings`] — a VF2-flavoured static subgraph-isomorphism
//!   search over a [`streamworks_graph::GraphSnapshot`].
//! * [`RepeatedSearchMatcher`] — the *repeated search* strategy discussed in
//!   paper §2.2 (re-run the full search on every update).
//! * [`NaiveEdgeExpansion`] — the "simplistic approach" of §3.1 (per-edge
//!   anchored expansion over the whole query, no decomposition, no memoised
//!   partial matches).
//! * [`verify_assignment`] — an independent checker of windowed isomorphisms,
//!   used by the cross-engine equivalence tests.
//!
//! These exist so that the evaluation (experiments E5/E10) can compare the
//! incremental SJ-Tree engine against the alternatives the paper positions
//! itself against, and so correctness of the incremental engine can be
//! established by equivalence rather than by fiat.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod embedding;
mod iso;
mod naive;
mod repeated;
mod verify;

pub use embedding::Embedding;
pub use iso::{find_all_embeddings, SearchOutcome};
pub use naive::NaiveEdgeExpansion;
pub use repeated::RepeatedSearchMatcher;
pub use verify::{verify_assignment, VerifyError};
