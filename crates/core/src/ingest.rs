//! The unified ingest surface.
//!
//! Historically the engine grew four entry points — `process`,
//! `process_with_sink`, `process_batch`, `process_batch_with_sink` — that
//! differed only in how events arrived and where matches went. The [`Ingest`]
//! trait collapses the *arrival* axis: a single event, a slice, an array or an
//! arbitrary iterator (via [`EventBatch`]) all drive the same batched
//! bookkeeping path inside [`crate::ContinuousQueryEngine::ingest`] /
//! [`crate::ContinuousQueryEngine::ingest_with`], which cover the *delivery*
//! axis (collected vector vs. caller-supplied sink; per-query subscriptions
//! are fanned out either way).
//!
//! Batch sources additionally request a trailing partial-match prune once the
//! whole batch is absorbed, so a sequence of batches never carries more than
//! `prune_every` edges of stale partial matches — exactly the behaviour the
//! old `process_batch*` pair had. A single event reports `is_batch() ==
//! false` and keeps the cadence-driven pruning of the streaming path.

use streamworks_graph::EdgeEvent;

/// A source of edge events the engine can absorb in one call.
///
/// Implemented for `&EdgeEvent` (single event, streaming semantics), for
/// `&[EdgeEvent]`, `&Vec<EdgeEvent>` and `&[EdgeEvent; N]` (batch semantics),
/// and for any iterator of `&EdgeEvent` wrapped in [`EventBatch`].
pub trait Ingest {
    /// Feeds every event to `f`, in arrival order.
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent));

    /// True when the engine should run the trailing partial-match prune once
    /// the whole source is absorbed (see the module docs).
    fn is_batch(&self) -> bool {
        true
    }
}

impl Ingest for &EdgeEvent {
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent)) {
        f(self);
    }

    fn is_batch(&self) -> bool {
        false
    }
}

impl Ingest for &[EdgeEvent] {
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent)) {
        for ev in self {
            f(ev);
        }
    }
}

impl<const N: usize> Ingest for &[EdgeEvent; N] {
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent)) {
        self.as_slice().drive(f);
    }
}

impl Ingest for &Vec<EdgeEvent> {
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent)) {
        self.as_slice().drive(f);
    }
}

/// Adapter treating any iterator of `&EdgeEvent` as a batch, e.g.
/// `engine.ingest(EventBatch(events.iter().filter(..))).unwrap()`.
#[derive(Debug, Clone)]
pub struct EventBatch<I>(pub I);

impl<'a, I: IntoIterator<Item = &'a EdgeEvent>> Ingest for EventBatch<I> {
    fn drive(self, f: &mut dyn FnMut(&EdgeEvent)) {
        for ev in self.0 {
            f(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::Timestamp;

    fn ev(t: i64) -> EdgeEvent {
        EdgeEvent::new("a", "A", "b", "B", "rel", Timestamp::from_secs(t))
    }

    fn drain(batch: impl Ingest) -> (Vec<i64>, bool) {
        let is_batch = batch.is_batch();
        let mut seen = Vec::new();
        batch.drive(&mut |e| seen.push(e.timestamp.as_micros() / 1_000_000));
        (seen, is_batch)
    }

    #[test]
    fn single_events_stream_without_trailing_prune() {
        let e = ev(1);
        assert_eq!(drain(&e), (vec![1], false));
    }

    #[test]
    fn slices_vectors_arrays_and_iterators_are_batches() {
        let events = vec![ev(1), ev(2), ev(3)];
        assert_eq!(drain(&events), (vec![1, 2, 3], true));
        assert_eq!(drain(&events[..2]), (vec![1, 2], true));
        assert_eq!(drain(&[ev(7), ev(8)]), (vec![7, 8], true));
        assert_eq!(
            drain(EventBatch(events.iter().rev())),
            (vec![3, 2, 1], true)
        );
    }
}
