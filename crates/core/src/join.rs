//! The join inner loop and climb table shared by **every** execution mode.
//!
//! PR 3 left the codebase with two copies of the §4.2 join step: the
//! single-threaded `SjTreeMatcher` drove per-node lazy-indexed stores while
//! the shard workers drove per-parent [`SharedJoinStore`]s. This module is
//! the one remaining copy — [`probe_insert`] is *the* join step, called from
//! the in-process matcher's flattened climb loop and from
//! `ShardWorker::process` alike, and [`node_routes`] is the precomputed climb
//! table both walk instead of chasing the plan's tree shape per match.

use crate::binding::PartialMatch;
use crate::match_store::{JoinSide, SharedJoinStore};
use streamworks_graph::Duration;
use streamworks_query::QueryPlan;

/// Sentinel `parent` value of the root's [`NodeRoute`] (never climbed from).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Precomputed per-node climb step, so the join hot loop never touches the
/// plan (no `Arc` traffic, no repeated tree lookups). For the root the
/// `parent` field is the [`NO_PARENT`] sentinel — a match reaching it is a
/// complete match, not a climb.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRoute {
    /// Parent node index (`NO_PARENT` for the root).
    pub parent: u32,
    /// Which child of the parent this node is.
    pub side: JoinSide,
    /// True when the parent is the root: a successful join there is a
    /// complete match.
    pub parent_is_root: bool,
}

/// Builds the per-node climb table for a plan's tree shape.
pub(crate) fn node_routes(plan: &QueryPlan) -> Vec<NodeRoute> {
    let shape = &plan.shape;
    let root = shape.root();
    shape
        .nodes()
        .map(|n| match n.parent {
            Some(parent) => {
                let (left, _) = shape.node(parent).children.expect("parent is internal");
                NodeRoute {
                    parent: parent.0 as u32,
                    side: if n.id == left {
                        JoinSide::Left
                    } else {
                        JoinSide::Right
                    },
                    parent_is_root: parent == root,
                }
            }
            None => NodeRoute {
                parent: NO_PARENT,
                side: JoinSide::Left,
                parent_is_root: false,
            },
        })
        .collect()
}

/// Join counters of one [`probe_insert`] step.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct JoinStepStats {
    /// Sibling candidates offered to the merge.
    pub attempted: u64,
    /// Merges that produced an in-window larger match.
    pub succeeded: u64,
}

/// One §4.2 join step at an internal node's shared store: project `m`'s join
/// key, scan the sibling side for candidates, append every successful
/// in-window merge to `merged`, and file `m` on its own side — one hash
/// operation for the whole step ([`SharedJoinStore::probe_then_insert`]).
///
/// `merged` is appended to, not cleared; the returned
/// [`JoinStepStats::succeeded`] counts only this step's additions.
#[inline]
pub(crate) fn probe_insert(
    store: &mut SharedJoinStore,
    side: JoinSide,
    m: PartialMatch,
    window: Duration,
    merged: &mut Vec<PartialMatch>,
) -> JoinStepStats {
    let Some(key) = store.join_key_for(&m) else {
        debug_assert!(false, "a node-complete match binds its join key");
        return JoinStepStats::default();
    };
    let before = merged.len();
    let mut attempted = 0u64;
    store.probe_then_insert(side, key, m, |m, candidate| {
        attempted += 1;
        if let Some(combined) = m.merge(candidate) {
            if combined.within_window(window) {
                merged.push(combined);
            }
        }
    });
    JoinStepStats {
        attempted,
        succeeded: (merged.len() - before) as u64,
    }
}
