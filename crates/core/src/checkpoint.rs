//! Engine checkpoint / restore.
//!
//! A continuous-query deployment needs to survive restarts without losing its
//! registered queries or the recent graph state its windows depend on. The
//! checkpoint captures exactly the state that cannot be recomputed from the
//! stream alone:
//!
//! * the engine configuration,
//! * every registered query's *plan* (so the SJ-Tree shapes — possibly the
//!   product of statistics that have since drifted — are preserved verbatim)
//!   together with its **paused flag**,
//! * the live (non-expired) edges of the data graph, re-expressed as
//!   [`EdgeEvent`]s.
//!
//! Restore rebuilds the engine by re-registering the plans and replaying the
//! retained edges with event emission suppressed: partial matches, summaries
//! and the sliding window are all reconstructed from that bounded replay, so
//! matches completing entirely *after* the checkpoint are found exactly as if
//! the process had never stopped. Matches that had already completed before
//! the checkpoint are not re-emitted. This mirrors how a production system
//! would recover from a write-ahead edge log bounded by the retention horizon.
//!
//! **Paused queries come back paused**, and they are paused *before* the
//! replay: a paused query never observes events that stream past it, and at
//! restore time the retained edges cannot be split into "arrived before the
//! pause" and "arrived after", so the conservative choice is to skip the
//! whole replay for it. Its pre-pause partial matches are therefore not
//! reconstructed, which makes restore **strictly lossier than an in-process
//! pause**: a never-restarted engine keeps a paused query's accumulated
//! partials and can complete them after a resume, while a restored one
//! starts the query empty and only matches patterns whose every edge
//! arrives after the restore. The trade is deliberate — replaying *all*
//! retained edges instead would fabricate partial state from edges the
//! paused query was never shown, risking matches the original engine could
//! never have emitted; losing some is safer than inventing any. (Capturing
//! the pause timestamp and replaying only the prefix would close the gap —
//! noted on the ROADMAP.)

use crate::config::EngineConfig;
use crate::engine::ContinuousQueryEngine;
use crate::event::{EventSink, MatchEvent};
use serde::{Deserialize, Serialize};
use streamworks_graph::{EdgeEvent, Timestamp};
use streamworks_query::QueryPlan;

/// A serialisable snapshot of a [`ContinuousQueryEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Engine configuration at checkpoint time.
    pub config: EngineConfig,
    /// Plans of every registered query, in registration (query-id) order.
    pub plans: Vec<QueryPlan>,
    /// Paused flag per entry of `plans` (same order). Defaults to
    /// all-running when absent, so checkpoints written before the field
    /// existed keep restoring.
    #[serde(default)]
    pub paused: Vec<bool>,
    /// Live edges of the data graph, in timestamp order.
    pub live_edges: Vec<EdgeEvent>,
    /// Stream time of the engine when the checkpoint was taken.
    pub taken_at: Timestamp,
    /// Total matches the engine had emitted when the checkpoint was taken
    /// (informational; restore starts a fresh counter).
    pub events_emitted: u64,
}

/// Sink that drops every event (used while replaying a checkpoint).
struct NullSink;

impl EventSink for NullSink {
    fn on_match(&mut self, _event: MatchEvent) {}
}

impl EngineCheckpoint {
    /// Captures the restorable state of `engine`.
    ///
    /// Only *live* queries are captured, in query-id order; deregistered
    /// slots are compacted away, so query ids in the restored engine are
    /// dense again. Because of that compaction, `QueryHandle`s issued by the
    /// checkpointed engine are meaningless on the restored one (and the
    /// mismatch is not detectable) — always re-obtain handles from the
    /// restored engine's `handles()`. Paused queries are captured with their
    /// flag and come back paused (see the module docs for the replay
    /// semantics).
    pub fn capture(engine: &ContinuousQueryEngine) -> Self {
        let graph = engine.graph();
        let mut live_edges: Vec<EdgeEvent> = graph
            .edges()
            .map(|edge| {
                let src = graph
                    .vertex(edge.src)
                    .expect("live edge has live endpoints");
                let dst = graph
                    .vertex(edge.dst)
                    .expect("live edge has live endpoints");
                EdgeEvent {
                    src_key: graph.vertex_key(edge.src).unwrap_or_default().to_owned(),
                    src_type: graph
                        .vertex_type_name(src.vtype)
                        .unwrap_or_default()
                        .to_owned(),
                    dst_key: graph.vertex_key(edge.dst).unwrap_or_default().to_owned(),
                    dst_type: graph
                        .vertex_type_name(dst.vtype)
                        .unwrap_or_default()
                        .to_owned(),
                    edge_type: graph
                        .edge_type_name(edge.etype)
                        .unwrap_or_default()
                        .to_owned(),
                    timestamp: edge.timestamp,
                    attrs: edge.attrs.clone(),
                }
            })
            .collect();
        live_edges.sort_by_key(|e| e.timestamp);
        let mut plans = Vec::new();
        let mut paused = Vec::new();
        for h in engine.handles() {
            let Ok(plan) = engine.plan(h) else { continue };
            plans.push(plan.clone());
            paused.push(engine.is_paused(h).unwrap_or(false));
        }
        EngineCheckpoint {
            config: *engine.config(),
            plans,
            paused,
            live_edges,
            taken_at: engine.graph().now(),
            events_emitted: engine.events_emitted(),
        }
    }

    /// Rebuilds an engine from this checkpoint (see the module docs for the
    /// exact semantics of the replay). The retained edges are replayed as one
    /// batch through the unified ingest path, with event emission suppressed.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed configuration fails
    /// [`EngineConfig::validate`] (possible only for hand-edited JSON);
    /// validate the config first to recover gracefully.
    pub fn restore(&self) -> ContinuousQueryEngine {
        let mut engine = ContinuousQueryEngine::new(self.config);
        let handles: Vec<_> = self
            .plans
            .iter()
            .map(|plan| engine.register_plan(plan.clone()))
            .collect();
        // Re-apply paused flags *before* the replay: a paused query does not
        // observe replayed events (see the module docs).
        for (handle, &paused) in handles.iter().zip(&self.paused) {
            if paused {
                engine.pause(*handle).expect("freshly registered handle");
            }
        }
        let mut sink = NullSink;
        engine.ingest_with(&self.live_edges, &mut sink);
        // The replayed matches were suppressed; continue the emitted-event
        // counter from where the checkpointed engine left off.
        engine.set_events_emitted(self.events_emitted);
        engine
    }

    /// Serialises the checkpoint as JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parses a checkpoint from JSON produced by [`EngineCheckpoint::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<EngineCheckpoint> {
        serde_json::from_str(json)
    }
}

impl ContinuousQueryEngine {
    /// Convenience wrapper for [`EngineCheckpoint::capture`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint::capture(self)
    }

    /// Convenience wrapper for [`EngineCheckpoint::restore`].
    pub fn from_checkpoint(checkpoint: &EngineCheckpoint) -> ContinuousQueryEngine {
        checkpoint.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::Duration;
    use streamworks_query::QueryGraphBuilder;

    fn ev(src: &str, dst: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, "Article", dst, "Keyword", et, Timestamp::from_secs(t))
    }

    fn pair_query(window: Duration) -> streamworks_query::QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(window)
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn restore_preserves_queries_window_state_and_future_matches() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        // One article already mentioned the keyword before the checkpoint.
        assert!(engine.ingest(&ev("a1", "rust", "mentions", 10)).is_empty());

        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.plans.len(), 1);
        assert_eq!(checkpoint.live_edges.len(), 1);

        let mut restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 1);
        // The pre-checkpoint partial state was rebuilt: a second article now
        // completes the pair exactly as it would have without the restart.
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 20));
        assert_eq!(matches.len(), 2);

        // The original engine (no restart) behaves identically.
        let direct = engine.ingest(&ev("a2", "rust", "mentions", 20));
        assert_eq!(direct.len(), matches.len());
    }

    #[test]
    fn restore_does_not_re_emit_completed_matches() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 1));
        let matched = engine.ingest(&ev("a2", "rust", "mentions", 2));
        assert_eq!(matched.len(), 2);

        let checkpoint = engine.checkpoint();
        let restored = checkpoint.restore();
        // Replay suppressed the already-completed matches and the counter
        // continues from the checkpointed value rather than double-counting.
        assert_eq!(checkpoint.events_emitted, 2);
        assert_eq!(restored.events_emitted(), 2);
    }

    #[test]
    fn expired_edges_are_not_checkpointed() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(30)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 0));
        engine.ingest(&ev("a2", "go", "mentions", 1_000));
        let checkpoint = engine.checkpoint();
        // Only the recent edge is still live (retention follows the window).
        assert_eq!(checkpoint.live_edges.len(), 1);
        assert_eq!(checkpoint.live_edges[0].src_key, "a2");
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 5));
        let checkpoint = engine.checkpoint();
        let json = checkpoint.to_json().unwrap();
        let parsed = EngineCheckpoint::from_json(&json).unwrap();
        assert_eq!(parsed.plans.len(), 1);
        assert_eq!(parsed.live_edges, checkpoint.live_edges);
        assert_eq!(parsed.taken_at, checkpoint.taken_at);

        let restored = ContinuousQueryEngine::from_checkpoint(&parsed);
        assert_eq!(restored.query_count(), 1);
        assert_eq!(restored.graph().live_edge_count(), 1);
    }

    #[test]
    fn checkpoint_preserves_edge_attributes() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(3600)))
            .unwrap();
        let event = ev("a1", "rust", "mentions", 1).with_attr("label", "politics");
        engine.ingest(&event);

        let checkpoint = engine.checkpoint();
        assert_eq!(
            checkpoint.live_edges[0]
                .attrs
                .get("label")
                .and_then(|v| v.as_str()),
            Some("politics")
        );
        let restored = checkpoint.restore();
        let stored = restored.graph().edges().next().unwrap();
        assert_eq!(
            stored.attrs.get("label").and_then(|v| v.as_str()),
            Some("politics"),
            "edge attributes must survive the checkpoint round trip"
        );
    }

    #[test]
    fn deregistered_queries_are_compacted_out() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let doomed = engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine
            .register_dsl(
                "QUERY keeper WINDOW 1m MATCH (a1:Article)-[:cites]->(k:Keyword), (a2:Article)-[:cites]->(k)",
            )
            .unwrap();
        engine.deregister(doomed).unwrap();

        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.plans.len(), 1);
        assert_eq!(checkpoint.plans[0].query.name(), "keeper");
        let restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 1);
        assert_eq!(
            restored.handles()[0].id().0,
            0,
            "restored ids are dense again"
        );
    }

    #[test]
    fn paused_flags_survive_the_round_trip() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let running = engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        let paused = engine
            .register_dsl(
                "QUERY dormant WINDOW 100s MATCH (a1:Article)-[:cites]->(k:Keyword), (a2:Article)-[:cites]->(k)",
            )
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 10));
        engine.pause(paused).unwrap();

        // Through JSON, like a real restart.
        let json = engine.checkpoint().to_json().unwrap();
        let checkpoint = EngineCheckpoint::from_json(&json).unwrap();
        assert_eq!(checkpoint.paused, vec![false, true]);

        let mut restored = checkpoint.restore();
        let handles = restored.handles();
        assert_eq!(handles.len(), 2);
        assert!(!restored.is_paused(handles[0]).unwrap());
        assert!(restored.is_paused(handles[1]).unwrap());
        let _ = running;

        // The running query kept its replayed partial state; the paused one
        // stays silent until resumed, then matches patterns completed
        // entirely after the resume.
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 20));
        assert_eq!(matches.len(), 2, "running query rebuilt its window state");
        restored.resume(handles[1]).unwrap();
        let matches = restored.ingest(&[
            EdgeEvent::new(
                "b1",
                "Article",
                "go",
                "Keyword",
                "cites",
                Timestamp::from_secs(30),
            ),
            EdgeEvent::new(
                "b2",
                "Article",
                "go",
                "Keyword",
                "cites",
                Timestamp::from_secs(31),
            ),
        ]);
        assert_eq!(
            matches.len(),
            2,
            "resumed query matches patterns arriving after the restore"
        );
    }

    #[test]
    fn paused_query_does_not_observe_the_replay() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = engine
            .register_query(pair_query(Duration::from_secs(1_000)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 10));
        engine.pause(handle).unwrap();

        let restored = engine.checkpoint().restore();
        let h = restored.handles()[0];
        // No partial state was rebuilt for the paused query: the replayed
        // edge streamed past it, exactly as live edges would have.
        assert_eq!(restored.metrics(h).unwrap().partial_matches_live, 0);
        assert_eq!(restored.metrics(h).unwrap().edges_processed, 0);
    }

    #[test]
    fn checkpoints_without_paused_field_still_restore() {
        // A checkpoint written before the `paused` field existed has no such
        // key; it must deserialize to all-running.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        let json = engine.checkpoint().to_json().unwrap();
        assert!(json.contains("\"paused\""));
        let legacy = json.replace(",\"paused\":[false]", "");
        assert!(!legacy.contains("\"paused\""));
        let checkpoint = EngineCheckpoint::from_json(&legacy).unwrap();
        assert!(checkpoint.paused.is_empty());
        let restored = checkpoint.restore();
        assert!(!restored.is_paused(restored.handles()[0]).unwrap());
    }

    #[test]
    fn empty_engine_round_trips() {
        let engine = ContinuousQueryEngine::builder().build().unwrap();
        let checkpoint = engine.checkpoint();
        assert!(checkpoint.plans.is_empty());
        assert!(checkpoint.live_edges.is_empty());
        let restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 0);
        assert_eq!(restored.graph().live_edge_count(), 0);
    }
}
