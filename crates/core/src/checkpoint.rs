//! Engine checkpoint / restore.
//!
//! A continuous-query deployment needs to survive restarts without losing its
//! registered queries or the recent graph state its windows depend on. The
//! checkpoint captures exactly the state that cannot be recomputed from the
//! stream alone:
//!
//! * the engine configuration,
//! * every registered query's *plan* (so the SJ-Tree shapes — possibly the
//!   product of statistics that have since drifted — are preserved verbatim)
//!   together with its **paused flag**,
//! * the live (non-expired) edges of the data graph, re-expressed as
//!   [`EdgeEvent`]s,
//! * every **durable subscription** — its serialisable [`crate::SinkSpec`],
//!   the delivery cursor of its last acknowledged match and its undelivered
//!   outbox — re-attached after the suppressed replay so delivery resumes
//!   exactly where it stopped (in-process sinks remain process-local and
//!   are still excluded).
//!
//! Restore rebuilds the engine by re-registering the plans and replaying the
//! retained edges with event emission suppressed: partial matches, summaries
//! and the sliding window are all reconstructed from that bounded replay, so
//! matches completing entirely *after* the checkpoint are found exactly as if
//! the process had never stopped. Matches that had already completed before
//! the checkpoint are not re-emitted. This mirrors how a production system
//! would recover from a write-ahead edge log bounded by the retention horizon.
//!
//! **Every query comes back with exactly the state it observed.** The
//! checkpoint records, per query, the *arrival-order intervals* of the
//! retained edges the query was dispatched — opened at registration and
//! every resume, closed at every pause — plus each paused query's pause
//! *timestamp* (for operators). The retained edges are captured in arrival
//! order, and restore choreographs the replay through those intervals:
//! every query is dispatched precisely the edges it saw live (a query
//! registered mid-stream does not absorb earlier edges, a paused query is
//! paused at the exact boundary, pause/resume cycles skip exactly the gap
//! they skipped live), so accumulated partial matches are reconstructed
//! just as the original engine held them and a query **never** observes an
//! edge the original engine never showed it. Arrival-order cuts are exact
//! even for events sharing a boundary timestamp and for bounded skew,
//! where timestamp cuts would straddle the boundary. Checkpoints written
//! before the field existed fall back to the old conservative behaviour:
//! running queries get the whole replay, paused queries skip it entirely
//! and start empty.

use crate::config::EngineConfig;
use crate::delivery::DeliveryCursor;
use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use crate::event::{EventSink, MatchEvent};
use crate::handle::QueryHandle;
use serde::{Deserialize, Serialize};
use streamworks_graph::{EdgeEvent, Timestamp};
use streamworks_query::{QueryPlan, RpqQuery};

/// A serialisable snapshot of a [`ContinuousQueryEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Engine configuration at checkpoint time.
    pub config: EngineConfig,
    /// Plans of every registered subgraph query, in registration (query-id)
    /// order. Regular path queries are captured in [`Self::rpqs`]; the
    /// `paused` / `paused_at` / `observed` lists run over the *combined*
    /// query sequence in query-id order.
    pub plans: Vec<QueryPlan>,
    /// Registered regular path queries, as `(position, query)` where
    /// `position` is the query's index in the combined query-id order (the
    /// indexing of `paused` / `paused_at` / `observed`). Restore re-registers
    /// plans and RPQs interleaved at these positions, so query ids — and the
    /// replay choreography — come back exactly as captured. Defaults to
    /// empty, so checkpoints written before RPQs existed keep restoring.
    #[serde(default)]
    pub rpqs: Vec<(u64, RpqQuery)>,
    /// Paused flag per entry of `plans` (same order). Defaults to
    /// all-running when absent, so checkpoints written before the field
    /// existed keep restoring.
    #[serde(default)]
    pub paused: Vec<bool>,
    /// Stream time at which each paused query was paused (same order as
    /// `plans`; `None` for running queries). Informational and round-tripped
    /// verbatim; the replay cuts themselves use [`Self::observed`], which is
    /// exact where a timestamp is ambiguous (events at a boundary timestamp,
    /// bounded skew). Defaults to empty for older checkpoints.
    #[serde(default)]
    pub paused_at: Vec<Option<Timestamp>>,
    /// Arrival-order observation intervals per entry of `plans`: indices
    /// into [`Self::live_edges`], alternating open/close boundaries
    /// (registration and every resume open, every pause closes; an odd
    /// length means the query was observing at capture time). Restore
    /// dispatches each query exactly the edges inside its intervals.
    /// Defaults to empty for checkpoints written before the field existed;
    /// such queries fall back to the old behaviour (running queries get the
    /// whole replay, paused queries skip it entirely).
    #[serde(default)]
    pub observed: Vec<Vec<u64>>,
    /// Live edges of the data graph, in arrival order (the order the
    /// original engine ingested them — also the replay order, so a restored
    /// engine sees the exact arrival sequence the original saw).
    pub live_edges: Vec<EdgeEvent>,
    /// Stream time of the engine when the checkpoint was taken.
    pub taken_at: Timestamp,
    /// Total matches the engine had emitted when the checkpoint was taken
    /// (informational; restore starts a fresh counter).
    pub events_emitted: u64,
    /// Durable subscriptions ([`crate::ContinuousQueryEngine::subscribe_durable`]):
    /// per subscription, the [`crate::SinkSpec`] to reconnect, the delivery
    /// cursor of the last acknowledged match and the undelivered outbox.
    /// Durable subscribers are re-attached *after* the suppressed replay, so
    /// a restored engine resumes each exactly after its cursor — no
    /// duplicates, no losses. Defaults to empty, so checkpoints written
    /// before durable delivery existed keep restoring (in-process sinks were
    /// never captured, and still are not).
    #[serde(default)]
    pub durable: Vec<DeliveryCursor>,
    /// Stage latency histograms captured at checkpoint time (`None` while
    /// telemetry is off, and for checkpoints written before telemetry
    /// existed). Restore folds these counters into the fresh engine's
    /// histograms *after* the suppressed replay — the driver-side replay is
    /// not re-measured, so the restored engine's stage counters continue
    /// from the captured ones. (Shard workers registered during the rebuild
    /// still time their own replay climbs; counters stay monotone either
    /// way.)
    #[serde(default)]
    pub telemetry: Option<crate::TelemetryCheckpoint>,
}

/// Sink that drops every event (used while replaying a checkpoint).
struct NullSink;

impl EventSink for NullSink {
    fn on_match(&mut self, _event: MatchEvent) {}
}

impl EngineCheckpoint {
    /// Captures the restorable state of `engine`.
    ///
    /// Only *live* queries are captured, in query-id order; deregistered
    /// slots are compacted away, so query ids in the restored engine are
    /// dense again. Because of that compaction, `QueryHandle`s issued by the
    /// checkpointed engine are meaningless on the restored one (and the
    /// mismatch is not detectable) — always re-obtain handles from the
    /// restored engine's `handles()`. Paused queries are captured with their
    /// flag and come back paused (see the module docs for the replay
    /// semantics).
    pub fn capture(engine: &ContinuousQueryEngine) -> Self {
        let graph = engine.graph();
        // Arrival (edge-id) order: the replay then reproduces the exact
        // ingest sequence, and a paused query's replay prefix is a simple
        // count of edges ingested before its pause.
        let mut with_ids: Vec<(u64, EdgeEvent)> = graph
            .edges()
            .map(|edge| {
                let src = graph
                    .vertex(edge.src)
                    .expect("live edge has live endpoints");
                let dst = graph
                    .vertex(edge.dst)
                    .expect("live edge has live endpoints");
                let event = EdgeEvent {
                    src_key: graph.vertex_key(edge.src).unwrap_or_default().to_owned(),
                    src_type: graph
                        .vertex_type_name(src.vtype)
                        .unwrap_or_default()
                        .to_owned(),
                    dst_key: graph.vertex_key(edge.dst).unwrap_or_default().to_owned(),
                    dst_type: graph
                        .vertex_type_name(dst.vtype)
                        .unwrap_or_default()
                        .to_owned(),
                    edge_type: graph
                        .edge_type_name(edge.etype)
                        .unwrap_or_default()
                        .to_owned(),
                    timestamp: edge.timestamp,
                    attrs: edge.attrs.clone(),
                };
                (edge.id.0, event)
            })
            .collect();
        with_ids.sort_by_key(|(id, _)| *id);
        let mut plans = Vec::new();
        let mut rpqs = Vec::new();
        let mut paused = Vec::new();
        let mut paused_at = Vec::new();
        let mut observed = Vec::new();
        let mut durable = Vec::new();
        for h in engine.handles() {
            // Both query classes are captured, at their position in the
            // combined query-id order (the indexing of the lifecycle lists).
            if let Ok(plan) = engine.plan(h) {
                plans.push(plan.clone());
            } else if let Ok(rpq) = engine.rpq_query(h) {
                rpqs.push((paused.len() as u64, rpq.clone()));
            } else {
                continue;
            }
            durable.extend(engine.capture_durables(h, paused.len()));
            paused.push(engine.is_paused(h).unwrap_or(false));
            paused_at.push(engine.pause_time(h).unwrap_or(None));
            // Map the query's arrival-order observation boundaries (edge-id
            // bounds) onto the retained edge list: edges with id below a
            // bound sit before its partition point. Intervals left empty by
            // expiry are dropped so the boundary list stays bounded across
            // repeated checkpoint/restore generations.
            let mapped: Vec<u64> = engine
                .observed_bounds(h)
                .iter()
                .map(|&bound| with_ids.partition_point(|(id, _)| *id < bound) as u64)
                .collect();
            let mut compact = Vec::with_capacity(mapped.len());
            let mut k = 0;
            while k + 1 < mapped.len() {
                if mapped[k] != mapped[k + 1] {
                    compact.push(mapped[k]);
                    compact.push(mapped[k + 1]);
                }
                k += 2;
            }
            if k < mapped.len() {
                compact.push(mapped[k]); // the open tail of an observing query
            }
            observed.push(compact);
        }
        EngineCheckpoint {
            config: *engine.config(),
            plans,
            rpqs,
            paused,
            paused_at,
            observed,
            live_edges: with_ids.into_iter().map(|(_, e)| e).collect(),
            taken_at: engine.graph().now(),
            events_emitted: engine.events_emitted(),
            durable,
            telemetry: engine.capture_telemetry(),
        }
    }

    /// Rebuilds an engine from this checkpoint (see the module docs for the
    /// exact semantics of the replay). The retained edges are replayed as one
    /// batch through the unified ingest path, with event emission suppressed.
    /// Durable subscriptions are re-attached *after* the suppressed replay
    /// and resume from their cursors; a destination that cannot be connected
    /// (transient outage, or a delivery log truncated below its cursor) is
    /// left for the first delivery attempt to retry through the engine's
    /// [`crate::RetryPolicy`] — use [`Self::try_restore`] to surface a
    /// corrupt delivery log as an error instead.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed configuration fails
    /// [`EngineConfig::validate`] (possible only for hand-edited JSON);
    /// validate the config first to recover gracefully.
    pub fn restore(&self) -> ContinuousQueryEngine {
        let (mut engine, handles) = self.rebuild();
        for cursor in &self.durable {
            if let Some(&handle) = handles.get(cursor.query) {
                let _ = engine.attach_durable(handle, cursor, false);
            }
        }
        engine
    }

    /// Like [`Self::restore`], but strict about durable delivery state: a
    /// durable subscription whose destination has lost part of the
    /// acknowledged prefix (a delivery log truncated below the cursor) — or
    /// whose cursor references a query position the checkpoint does not
    /// contain — surfaces as [`EngineError::CorruptCheckpoint`] with the
    /// byte offset where the acknowledged prefix ends. Transient connection
    /// failures are still tolerated and retried on the first delivery
    /// attempt.
    pub fn try_restore(&self) -> Result<ContinuousQueryEngine, EngineError> {
        let (mut engine, handles) = self.rebuild();
        for cursor in &self.durable {
            let Some(&handle) = handles.get(cursor.query) else {
                return Err(EngineError::CorruptCheckpoint {
                    offset: None,
                    detail: format!(
                        "durable cursor for subscription {} references query position {} but \
                         the checkpoint holds {} queries",
                        cursor.token,
                        cursor.query,
                        handles.len()
                    ),
                });
            };
            engine.attach_durable(handle, cursor, true)?;
        }
        Ok(engine)
    }

    /// The restore body shared by [`Self::restore`] and
    /// [`Self::try_restore`]: everything except durable re-attachment.
    fn rebuild(&self) -> (ContinuousQueryEngine, Vec<QueryHandle>) {
        let mut engine = ContinuousQueryEngine::new(self.config);
        // Re-register both query classes interleaved at their captured
        // positions, so slot ids — and the index-aligned lifecycle lists —
        // come back exactly as captured.
        let total = self.plans.len() + self.rpqs.len();
        let mut next_plan = self.plans.iter();
        let mut next_rpq = self.rpqs.iter().peekable();
        let handles: Vec<_> = (0..total as u64)
            .map(|pos| {
                // `<=` and the exhaustion fallback tolerate hand-edited
                // position lists without panicking; well-formed checkpoints
                // only ever hit the `==` case.
                if next_rpq.peek().is_some_and(|(p, _)| *p <= pos) || next_plan.len() == 0 {
                    let (_, rpq) = next_rpq.next().expect("an entry remains");
                    engine.register_rpq(rpq.clone())
                } else {
                    let plan = next_plan.next().expect("an entry remains");
                    engine.register_plan(plan.clone())
                }
            })
            .collect();
        // Queries with recorded observation intervals start dormant and are
        // resumed/paused at exactly their boundaries as the (arrival-order)
        // replay walks forward, so each observes precisely the retained
        // edges it saw live. Queries without intervals (legacy checkpoints)
        // keep the old behaviour: running ones observe the whole replay,
        // paused ones none of it (see the module docs).
        //
        // Actions are (boundary, query, per-query sequence): sorting keeps
        // each query's resume/pause alternation in order even when several
        // boundaries share one index (an interval emptied by expiry nets to
        // a no-op instead of flipping the final state).
        const ACT_RESUME: u8 = 0;
        const ACT_PAUSE: u8 = 1;
        let mut actions: Vec<(u64, usize, usize, u8)> = Vec::new();
        for (i, handle) in handles.iter().enumerate() {
            let bounds = self.observed.get(i).map(Vec::as_slice).unwrap_or(&[]);
            if bounds.is_empty() {
                if self.paused.get(i).copied().unwrap_or(false) {
                    engine.pause(*handle).expect("freshly registered handle");
                }
                continue;
            }
            engine.pause(*handle).expect("freshly registered handle");
            for (k, &bound) in bounds.iter().enumerate() {
                let kind = if k % 2 == 0 { ACT_RESUME } else { ACT_PAUSE };
                actions.push((bound, i, k, kind));
            }
        }
        actions.sort_unstable();
        // The replay is not re-measured on the driver thread: the events
        // were timed by the engine that wrote the checkpoint, whose stage
        // counters are folded back in below.
        let hub = engine.suspend_telemetry();
        let mut sink = NullSink;
        let mut start = 0usize;
        for (bound, qi, _, kind) in actions {
            let cut = (bound as usize).min(self.live_edges.len());
            if cut > start {
                // A shard failure during replay is recorded on the restored
                // engine itself (degraded or poisoned) and surfaces on its
                // next call; restore never panics over it.
                let _ = engine.ingest_with(&self.live_edges[start..cut], &mut sink);
                start = cut;
            }
            // The handles are freshly registered, so the only possible error
            // is `Poisoned` after an uncontained replay failure — in which
            // case the replay's outcome no longer matters.
            let _ = if kind == ACT_RESUME {
                engine.resume(handles[qi])
            } else {
                engine.pause(handles[qi])
            };
        }
        if start < self.live_edges.len() {
            let _ = engine.ingest_with(&self.live_edges[start..], &mut sink);
        }
        // Keep the original pause times (not the replay's clock), so a
        // second capture round-trips them verbatim.
        for (i, handle) in handles.iter().enumerate() {
            if self.paused.get(i).copied().unwrap_or(false) {
                engine.set_pause_time(*handle, self.paused_at.get(i).copied().flatten());
            }
        }
        engine.resume_telemetry(hub, self.telemetry.as_ref());
        // The replayed matches were suppressed; continue the emitted-event
        // counter from where the checkpointed engine left off.
        engine.set_events_emitted(self.events_emitted);
        (engine, handles)
    }

    /// Serialises the checkpoint as JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parses a checkpoint from JSON produced by [`EngineCheckpoint::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<EngineCheckpoint> {
        serde_json::from_str(json)
    }

    /// Like [`EngineCheckpoint::from_json`], but maps parse failures —
    /// truncated files from an interrupted write, corrupted bytes — to
    /// [`crate::EngineError::CorruptCheckpoint`] carrying the byte offset
    /// where parsing stopped. This is the recommended load path for
    /// checkpoints read back from storage: it never panics, and the offset
    /// pinpoints how much of the file survived.
    pub fn load(json: &str) -> Result<EngineCheckpoint, crate::EngineError> {
        Self::from_json(json).map_err(|e| crate::EngineError::CorruptCheckpoint {
            offset: e.byte_offset(),
            detail: e.to_string(),
        })
    }
}

impl ContinuousQueryEngine {
    /// Convenience wrapper for [`EngineCheckpoint::capture`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint::capture(self)
    }

    /// Convenience wrapper for [`EngineCheckpoint::restore`].
    pub fn from_checkpoint(checkpoint: &EngineCheckpoint) -> ContinuousQueryEngine {
        checkpoint.restore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::Duration;
    use streamworks_query::QueryGraphBuilder;

    fn ev(src: &str, dst: &str, et: &str, t: i64) -> EdgeEvent {
        EdgeEvent::new(src, "Article", dst, "Keyword", et, Timestamp::from_secs(t))
    }

    fn pair_query(window: Duration) -> streamworks_query::QueryGraph {
        QueryGraphBuilder::new("pair")
            .window(window)
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap()
    }

    #[test]
    fn restore_preserves_queries_window_state_and_future_matches() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        // One article already mentioned the keyword before the checkpoint.
        assert!(engine
            .ingest(&ev("a1", "rust", "mentions", 10))
            .unwrap()
            .is_empty());

        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.plans.len(), 1);
        assert_eq!(checkpoint.live_edges.len(), 1);

        let mut restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 1);
        // The pre-checkpoint partial state was rebuilt: a second article now
        // completes the pair exactly as it would have without the restart.
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 20)).unwrap();
        assert_eq!(matches.len(), 2);

        // The original engine (no restart) behaves identically.
        let direct = engine.ingest(&ev("a2", "rust", "mentions", 20)).unwrap();
        assert_eq!(direct.len(), matches.len());
    }

    #[test]
    fn restore_does_not_re_emit_completed_matches() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 1)).unwrap();
        let matched = engine.ingest(&ev("a2", "rust", "mentions", 2)).unwrap();
        assert_eq!(matched.len(), 2);

        let checkpoint = engine.checkpoint();
        let restored = checkpoint.restore();
        // Replay suppressed the already-completed matches and the counter
        // continues from the checkpointed value rather than double-counting.
        assert_eq!(checkpoint.events_emitted, 2);
        assert_eq!(restored.events_emitted(), 2);
    }

    #[test]
    fn expired_edges_are_not_checkpointed() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(30)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 0)).unwrap();
        engine.ingest(&ev("a2", "go", "mentions", 1_000)).unwrap();
        let checkpoint = engine.checkpoint();
        // Only the recent edge is still live (retention follows the window).
        assert_eq!(checkpoint.live_edges.len(), 1);
        assert_eq!(checkpoint.live_edges[0].src_key, "a2");
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 5)).unwrap();
        let checkpoint = engine.checkpoint();
        let json = checkpoint.to_json().unwrap();
        let parsed = EngineCheckpoint::from_json(&json).unwrap();
        assert_eq!(parsed.plans.len(), 1);
        assert_eq!(parsed.live_edges, checkpoint.live_edges);
        assert_eq!(parsed.taken_at, checkpoint.taken_at);

        let restored = ContinuousQueryEngine::from_checkpoint(&parsed);
        assert_eq!(restored.query_count(), 1);
        assert_eq!(restored.graph().live_edge_count(), 1);
    }

    #[test]
    fn truncated_json_loads_to_a_clear_error_never_a_panic() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 5)).unwrap();
        let json = engine.checkpoint().to_json().unwrap();
        // Every truncation point — an interrupted write can stop anywhere —
        // must produce a structured CorruptCheckpoint, never a panic.
        for cut in 0..json.len() {
            let truncated = &json[..cut];
            match EngineCheckpoint::load(truncated) {
                Err(crate::EngineError::CorruptCheckpoint { offset, detail }) => {
                    assert!(!detail.is_empty());
                    if let Some(at) = offset {
                        assert!(
                            at <= truncated.len(),
                            "offset {at} past the {cut}-byte input"
                        );
                    }
                }
                other => panic!("truncation at {cut} bytes produced {other:?}"),
            }
        }
        // The untruncated document still loads.
        assert!(EngineCheckpoint::load(&json).is_ok());
    }

    #[test]
    fn corrupt_bytes_load_to_an_error_with_an_offset() {
        let err = EngineCheckpoint::load("{\"config\": garbage").unwrap_err();
        let crate::EngineError::CorruptCheckpoint { offset, .. } = err else {
            panic!("expected CorruptCheckpoint, got {err:?}");
        };
        assert!(offset.is_some(), "a scanner error carries its byte offset");
    }

    #[test]
    fn checkpoint_preserves_edge_attributes() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(3600)))
            .unwrap();
        let event = ev("a1", "rust", "mentions", 1).with_attr("label", "politics");
        engine.ingest(&event).unwrap();

        let checkpoint = engine.checkpoint();
        assert_eq!(
            checkpoint.live_edges[0]
                .attrs
                .get("label")
                .and_then(|v| v.as_str()),
            Some("politics")
        );
        let restored = checkpoint.restore();
        let stored = restored.graph().edges().next().unwrap();
        assert_eq!(
            stored.attrs.get("label").and_then(|v| v.as_str()),
            Some("politics"),
            "edge attributes must survive the checkpoint round trip"
        );
    }

    #[test]
    fn deregistered_queries_are_compacted_out() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let doomed = engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine
            .register_dsl(
                "QUERY keeper WINDOW 1m MATCH (a1:Article)-[:cites]->(k:Keyword), (a2:Article)-[:cites]->(k)",
            )
            .unwrap();
        engine.deregister(doomed).unwrap();

        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.plans.len(), 1);
        assert_eq!(checkpoint.plans[0].query.name(), "keeper");
        let restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 1);
        assert_eq!(
            restored.handles()[0].id().0,
            0,
            "restored ids are dense again"
        );
    }

    #[test]
    fn paused_flags_survive_the_round_trip() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let running = engine
            .register_query(pair_query(Duration::from_secs(100)))
            .unwrap();
        let paused = engine
            .register_dsl(
                "QUERY dormant WINDOW 100s MATCH (a1:Article)-[:cites]->(k:Keyword), (a2:Article)-[:cites]->(k)",
            )
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(paused).unwrap();

        // Through JSON, like a real restart.
        let json = engine.checkpoint().to_json().unwrap();
        let checkpoint = EngineCheckpoint::from_json(&json).unwrap();
        assert_eq!(checkpoint.paused, vec![false, true]);

        let mut restored = checkpoint.restore();
        let handles = restored.handles();
        assert_eq!(handles.len(), 2);
        assert!(!restored.is_paused(handles[0]).unwrap());
        assert!(restored.is_paused(handles[1]).unwrap());
        let _ = running;

        // The running query kept its replayed partial state; the paused one
        // stays silent until resumed, then matches patterns completed
        // entirely after the resume.
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 20)).unwrap();
        assert_eq!(matches.len(), 2, "running query rebuilt its window state");
        restored.resume(handles[1]).unwrap();
        let matches = restored
            .ingest(&[
                EdgeEvent::new(
                    "b1",
                    "Article",
                    "go",
                    "Keyword",
                    "cites",
                    Timestamp::from_secs(30),
                ),
                EdgeEvent::new(
                    "b2",
                    "Article",
                    "go",
                    "Keyword",
                    "cites",
                    Timestamp::from_secs(31),
                ),
            ])
            .unwrap();
        assert_eq!(
            matches.len(),
            2,
            "resumed query matches patterns arriving after the restore"
        );
    }

    /// Registers the pair query with single-edge primitives, so the SJ-Tree
    /// genuinely stores partial matches (the default 2-edge decomposition
    /// collapses the pair into one stateless leaf).
    fn register_stateful(engine: &mut ContinuousQueryEngine, name: &str) -> crate::QueryHandle {
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_secs(1_000))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        engine
            .register_query_with(
                q,
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
                streamworks_query::TreeShapeKind::LeftDeep,
            )
            .unwrap()
    }

    #[test]
    fn paused_query_observes_exactly_the_pre_pause_prefix() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = register_stateful(&mut engine, "pair");
        // One edge before the pause; two after — one of them at the *same*
        // timestamp as the pause (ties are normal in a stream and a
        // timestamp cut could not tell it apart; the arrival-order prefix
        // can).
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(handle).unwrap();
        assert_eq!(
            engine.pause_time(handle).unwrap(),
            Some(Timestamp::from_secs(10))
        );
        engine.ingest(&ev("b1", "go", "mentions", 10)).unwrap();
        engine.ingest(&ev("c1", "zig", "mentions", 20)).unwrap();

        // Through JSON, like a real restart.
        let json = engine.checkpoint().to_json().unwrap();
        let checkpoint = EngineCheckpoint::from_json(&json).unwrap();
        assert_eq!(checkpoint.paused, vec![true]);
        assert_eq!(checkpoint.paused_at, vec![Some(Timestamp::from_secs(10))]);
        assert_eq!(
            checkpoint.observed,
            vec![vec![0, 1]],
            "only the edge ingested before the pause is in the observed window"
        );

        let mut restored = checkpoint.restore();
        let h = restored.handles()[0];
        assert!(restored.is_paused(h).unwrap());
        // The pause time survives the restore (and a re-capture) verbatim.
        assert_eq!(
            restored.pause_time(h).unwrap(),
            Some(Timestamp::from_secs(10))
        );
        let recapture = restored.checkpoint();
        assert_eq!(recapture.paused_at, vec![Some(Timestamp::from_secs(10))]);
        assert_eq!(recapture.observed, vec![vec![0, 1]]);
        // Exactly the pre-pause prefix was replayed: the paused query holds
        // its pre-pause partial state (one embedding per leaf of the a1
        // edge) but never saw the later edges — not even the one sharing
        // its pause timestamp.
        let m = restored.metrics(h).unwrap();
        assert_eq!(m.edges_processed, 1, "only the pre-pause edge was replayed");
        assert_eq!(m.partial_matches_live, 2);

        // After a resume the rebuilt partial completes, exactly as an
        // in-process pause would have allowed.
        restored.resume(h).unwrap();
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 30)).unwrap();
        assert_eq!(matches.len(), 2, "pre-pause partial state completes");
    }

    #[test]
    fn legacy_checkpoints_without_pause_timestamps_skip_the_replay() {
        // A checkpoint written before `paused_at` existed restores with the
        // old conservative behaviour: the paused query observes nothing.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = register_stateful(&mut engine, "pair");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(handle).unwrap();

        let mut legacy = engine.checkpoint().to_json().unwrap();
        for field in ["paused_at", "observed"] {
            assert!(legacy.contains(&format!("\"{field}\"")));
            let start = legacy.find(&format!(",\"{field}\":[")).unwrap();
            // Skip to the matching close bracket (`observed` nests arrays).
            let mut depth = 0usize;
            let mut end = start;
            for (off, c) in legacy[start..].char_indices() {
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            end = start + off + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            legacy = format!("{}{}", &legacy[..start], &legacy[end..]);
            assert!(!legacy.contains(&format!("\"{field}\"")));
        }

        let checkpoint = EngineCheckpoint::from_json(&legacy).unwrap();
        assert!(checkpoint.paused_at.is_empty());
        assert!(checkpoint.observed.is_empty());
        let restored = checkpoint.restore();
        let h = restored.handles()[0];
        assert!(restored.is_paused(h).unwrap());
        let m = restored.metrics(h).unwrap();
        assert_eq!(m.edges_processed, 0, "legacy restore replays nothing");
        assert_eq!(m.partial_matches_live, 0);
    }

    #[test]
    fn multiple_pause_timestamps_split_the_replay_per_query() {
        // Leaf-only sharing: with subtree sharing on, "late"'s identical join
        // tree is served by "early"'s shared entry and its partials live in
        // the shared layer, not the private matcher this test inspects.
        let mut engine = ContinuousQueryEngine::builder()
            .subtree_sharing(false)
            .build()
            .unwrap();
        let early = register_stateful(&mut engine, "early");
        let late = register_stateful(&mut engine, "late");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(early).unwrap();
        engine.ingest(&ev("b1", "go", "mentions", 20)).unwrap();
        engine.pause(late).unwrap();
        engine.ingest(&ev("c1", "zig", "mentions", 30)).unwrap();

        let restored = engine.checkpoint().restore();
        let handles = restored.handles();
        let m_early = restored.metrics(handles[0]).unwrap();
        let m_late = restored.metrics(handles[1]).unwrap();
        assert_eq!(m_early.edges_processed, 1, "paused after ts=10");
        assert_eq!(m_late.edges_processed, 2, "paused after ts=20");
        // Both hold exactly their pre-pause partials (one per leaf per edge
        // they observed).
        assert_eq!(m_early.partial_matches_live, 2);
        assert_eq!(m_late.partial_matches_live, 4);
        // The restored engine matches what the never-restarted one reports.
        assert_eq!(
            engine.metrics(early).unwrap().partial_matches_live,
            m_early.partial_matches_live
        );
        assert_eq!(
            engine.metrics(late).unwrap().partial_matches_live,
            m_late.partial_matches_live
        );
    }

    #[test]
    fn late_registered_query_does_not_absorb_earlier_edges_on_restore() {
        // A query registered mid-stream never observed the edges that came
        // before it; the restore replay must not fabricate partial state
        // from them, even though they are retained for the graph.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine.ingest(&ev("a0", "rust", "mentions", 5)).unwrap();
        let handle = register_stateful(&mut engine, "pair");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(handle).unwrap();
        engine.ingest(&ev("b1", "go", "mentions", 20)).unwrap();

        let checkpoint = engine.checkpoint();
        assert_eq!(
            checkpoint.observed,
            vec![vec![1, 2]],
            "the query observed only the second retained edge"
        );
        let mut restored = checkpoint.restore();
        let h = restored.handles()[0];
        let m = restored.metrics(h).unwrap();
        assert_eq!(m.edges_processed, 1);
        assert_eq!(
            m.partial_matches_live, 2,
            "partials from a1 only; a0 predates the registration"
        );

        // A completing article pairs only with a1 — matching the live
        // engine, which never filed a partial for a0 either.
        restored.resume(h).unwrap();
        let from_restored = restored.ingest(&ev("a2", "rust", "mentions", 30)).unwrap();
        engine.resume(handle).unwrap();
        let from_live = engine.ingest(&ev("a2", "rust", "mentions", 30)).unwrap();
        assert_eq!(from_live.len(), 2);
        assert_eq!(from_restored.len(), from_live.len());
    }

    #[test]
    fn pause_resume_cycles_skip_exactly_the_gap_on_restore() {
        // A query that paused and resumed mid-stream missed the gap; the
        // restore replay must skip exactly those edges, not flatten the
        // history into one prefix.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = register_stateful(&mut engine, "pair");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(handle).unwrap();
        engine.ingest(&ev("g1", "rust", "mentions", 20)).unwrap(); // missed live
        engine.resume(handle).unwrap();
        engine.ingest(&ev("a2", "zig", "mentions", 30)).unwrap();

        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.paused, vec![false]);
        assert_eq!(
            checkpoint.observed,
            vec![vec![0, 1, 2]],
            "observed [0,1) and [2, open): the gap edge is excluded"
        );
        let mut restored = checkpoint.restore();
        let h = restored.handles()[0];
        assert!(!restored.is_paused(h).unwrap());
        let m = restored.metrics(h).unwrap();
        assert_eq!(m.edges_processed, 2, "the gap edge was not dispatched");
        assert_eq!(
            m.partial_matches_live,
            engine.metrics(handle).unwrap().partial_matches_live
        );

        // The never-restarted and restored engines agree on what completes:
        // a3 on rust pairs with a1 only (g1 was never observed by the query).
        let from_live = engine.ingest(&ev("a3", "rust", "mentions", 40)).unwrap();
        let from_restored = restored.ingest(&ev("a3", "rust", "mentions", 40)).unwrap();
        assert_eq!(from_live.len(), 2);
        assert_eq!(from_restored.len(), from_live.len());
    }

    #[test]
    fn replan_cuts_the_observed_window_so_restore_reproduces_the_gap() {
        // Replan discards the old plan's partial matches; a later restore
        // must not resurrect them from the replay.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = register_stateful(&mut engine, "pair");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        assert_eq!(engine.metrics(handle).unwrap().partial_matches_live, 2);
        engine
            .replan(
                handle,
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
                streamworks_query::TreeShapeKind::LeftDeep,
            )
            .unwrap();
        assert_eq!(engine.metrics(handle).unwrap().partial_matches_live, 0);

        let checkpoint = engine.checkpoint();
        assert_eq!(
            checkpoint.observed,
            vec![vec![1]],
            "the observed window restarts at the replan"
        );
        let mut restored = checkpoint.restore();
        let h = restored.handles()[0];
        assert_eq!(
            restored.metrics(h).unwrap().partial_matches_live,
            0,
            "the discarded partials stay discarded"
        );
        // Live and restored agree: the completing edge matches nothing,
        // because the a1 partial died at the replan in both worlds.
        let live = engine.ingest(&ev("a2", "rust", "mentions", 20)).unwrap();
        let replayed = restored.ingest(&ev("a2", "rust", "mentions", 20)).unwrap();
        assert_eq!(live.len(), 0);
        assert_eq!(replayed.len(), live.len());
    }

    #[test]
    fn checkpoints_without_paused_field_still_restore() {
        // A checkpoint written before the `paused` field existed has no such
        // key; it must deserialize to all-running.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        let json = engine.checkpoint().to_json().unwrap();
        assert!(json.contains("\"paused\""));
        let legacy = json.replace(",\"paused\":[false]", "");
        assert!(!legacy.contains("\"paused\""));
        let checkpoint = EngineCheckpoint::from_json(&legacy).unwrap();
        assert!(checkpoint.paused.is_empty());
        let restored = checkpoint.restore();
        assert!(!restored.is_paused(restored.handles()[0]).unwrap());
    }

    #[test]
    fn durable_cursors_round_trip_and_resume_after_the_acknowledged_match() {
        use crate::delivery::{memory_sink_contents, reset_memory_sink, SinkSpec};
        let key = "checkpoint_durable_resume";
        reset_memory_sink(key);
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = engine
            .register_query(pair_query(Duration::from_secs(1_000)))
            .unwrap();
        engine
            .subscribe_durable(handle, SinkSpec::Memory { key: key.into() })
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 1)).unwrap();
        engine.ingest(&ev("a2", "rust", "mentions", 2)).unwrap();
        assert_eq!(memory_sink_contents(key).len(), 2);

        // Through JSON, like a real restart.
        let json = engine.checkpoint().to_json().unwrap();
        let checkpoint = EngineCheckpoint::load(&json).unwrap();
        assert_eq!(checkpoint.durable.len(), 1);
        assert_eq!(checkpoint.durable[0].cursor, 2);
        assert!(checkpoint.durable[0].outbox.is_empty());

        let mut restored = checkpoint.try_restore().unwrap();
        // The replayed matches were suppressed: nothing was re-delivered.
        assert_eq!(memory_sink_contents(key).len(), 2);
        // A fresh match after the restore is delivered exactly once.
        restored.ingest(&ev("a3", "rust", "mentions", 3)).unwrap();
        let lines = memory_sink_contents(key);
        assert_eq!(lines.len(), 6, "2 checkpointed + 4 from the a3 pairings");
        let h = restored.handles()[0];
        assert_eq!(restored.metrics(h).unwrap().cursor_lag, 0);
        reset_memory_sink(key);
    }

    #[test]
    fn durable_cursors_survive_pause_resume_churn_across_the_restore() {
        use crate::delivery::{memory_sink_contents, reset_memory_sink, SinkSpec};
        let key = "checkpoint_durable_paused";
        reset_memory_sink(key);
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = engine
            .register_query(pair_query(Duration::from_secs(1_000)))
            .unwrap();
        engine
            .subscribe_durable(handle, SinkSpec::Memory { key: key.into() })
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 1)).unwrap();
        // Checkpoint while the query is paused: the durable cursor is
        // captured alongside the paused flag.
        engine.pause(handle).unwrap();
        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.durable.len(), 1);
        assert_eq!(checkpoint.durable[0].cursor, 0, "no match delivered yet");

        let mut restored = checkpoint.try_restore().unwrap();
        let h = restored.handles()[0];
        assert!(restored.is_paused(h).unwrap());
        assert_eq!(restored.subscription_count(h).unwrap(), 1);
        // While paused nothing is delivered; after the resume the pre-pause
        // partial completes and reaches the durable sink exactly once.
        restored.ingest(&ev("g1", "go", "mentions", 2)).unwrap();
        assert!(memory_sink_contents(key).is_empty());
        restored.resume(h).unwrap();
        restored.ingest(&ev("a2", "rust", "mentions", 3)).unwrap();
        assert_eq!(memory_sink_contents(key).len(), 2);
        reset_memory_sink(key);
    }

    #[test]
    fn legacy_checkpoints_without_the_durable_field_still_restore() {
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        engine
            .register_query(pair_query(Duration::from_secs(60)))
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 5)).unwrap();
        let json = engine.checkpoint().to_json().unwrap();
        assert!(json.contains("\"durable\""));
        let legacy = json.replace(",\"durable\":[]", "");
        assert!(!legacy.contains("\"durable\""));
        let checkpoint = EngineCheckpoint::load(&legacy).unwrap();
        assert!(checkpoint.durable.is_empty());
        // Both restore paths behave exactly as before the field existed.
        let restored = checkpoint.try_restore().unwrap();
        assert_eq!(restored.query_count(), 1);
        let restored = checkpoint.restore();
        assert_eq!(
            restored.subscription_count(restored.handles()[0]).unwrap(),
            0
        );
    }

    #[test]
    fn a_truncated_delivery_log_is_a_corrupt_checkpoint_with_a_byte_offset() {
        use crate::delivery::SinkSpec;
        let dir = std::env::temp_dir().join("sw_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join(format!("truncated_{}.log", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);

        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        let handle = engine
            .register_query(pair_query(Duration::from_secs(1_000)))
            .unwrap();
        engine
            .subscribe_durable(handle, SinkSpec::LogFile { path: path.clone() })
            .unwrap();
        engine.ingest(&ev("a1", "rust", "mentions", 1)).unwrap();
        engine.ingest(&ev("a2", "rust", "mentions", 2)).unwrap();
        let checkpoint = engine.checkpoint();
        assert_eq!(checkpoint.durable[0].cursor, 2);
        drop(engine);

        // An external actor truncates the delivery log to one line: the
        // acknowledged prefix is gone and cannot be reconstructed.
        let logged = std::fs::read_to_string(&path).unwrap();
        let first_line_end = logged.find('\n').unwrap() + 1;
        std::fs::write(&path, &logged[..first_line_end]).unwrap();

        let err = match checkpoint.try_restore() {
            Err(err) => err,
            Ok(_) => panic!("strict restore rejects the truncated delivery log"),
        };
        match err {
            EngineError::CorruptCheckpoint { offset, detail } => {
                assert_eq!(offset, Some(first_line_end));
                assert!(detail.contains("1 acknowledged lines"));
                assert!(detail.contains("expects 2"));
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
        // The non-strict path still restores; the subscription reports its
        // failure through the delivery state machine instead.
        let restored = checkpoint.restore();
        assert_eq!(
            restored.subscription_count(restored.handles()[0]).unwrap(),
            1
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_engine_round_trips() {
        let engine = ContinuousQueryEngine::builder().build().unwrap();
        let checkpoint = engine.checkpoint();
        assert!(checkpoint.plans.is_empty());
        assert!(checkpoint.live_edges.is_empty());
        let restored = checkpoint.restore();
        assert_eq!(restored.query_count(), 0);
        assert_eq!(restored.graph().live_edge_count(), 0);
    }

    /// A labelled tenant pair (both mention edges carry `eq("label", ..)`)
    /// with single-edge primitives: the lifted-coverable template shape.
    fn register_tenant(
        engine: &mut ContinuousQueryEngine,
        name: &str,
        label: &str,
    ) -> crate::QueryHandle {
        use streamworks_query::Predicate;
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_secs(1_000))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge_with("a1", "mentions", "k", vec![Predicate::eq("label", label)])
            .edge_with("a2", "mentions", "k", vec![Predicate::eq("label", label)])
            .build()
            .unwrap();
        engine
            .register_query_with(
                q,
                &streamworks_query::SelectivityOrdered {
                    max_primitive_size: 1,
                },
                streamworks_query::TreeShapeKind::LeftDeep,
            )
            .unwrap()
    }

    fn labelled_ev(src: &str, dst: &str, label: &str, t: i64) -> EdgeEvent {
        ev(src, dst, "mentions", t).with_attr("label", label)
    }

    #[test]
    fn restore_re_interns_shared_subtrees_and_lifted_entries() {
        // Two lifted constant-variants plus two exact structural copies:
        // after advertise-then-promote, one lifted entry (subscriber
        // t_sports) and one plain subtree entry (subscriber pair2).
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        register_tenant(&mut engine, "t_politics", "politics");
        register_tenant(&mut engine, "t_sports", "sports");
        register_stateful(&mut engine, "pair1");
        register_stateful(&mut engine, "pair2");
        engine
            .ingest(&labelled_ev("a1", "rust", "politics", 10))
            .unwrap();
        engine
            .ingest(&labelled_ev("s1", "football", "sports", 11))
            .unwrap();
        let before = engine.engine_metrics();
        assert_eq!(before.distinct_subtrees, 2);
        assert_eq!(before.subscribed_subtrees, 2);

        // Through JSON, like a real restart. Registration order is the
        // query-id order, so the advertise-then-promote choreography — and
        // with it every sharing role — reproduces exactly.
        let json = engine.checkpoint().to_json().unwrap();
        let mut restored = EngineCheckpoint::load(&json).unwrap().restore();
        let after = restored.engine_metrics();
        assert_eq!(
            after.distinct_subtrees, 2,
            "restore re-interns the shared subtree and lifted entries"
        );
        assert_eq!(after.subscribed_subtrees, 2);

        // The replayed partials live inside the restored entries' matchers:
        // the completing mentions produce identical matches on both engines,
        // and the covered tenant is served through lifted constant dispatch.
        let key = |ms: &[MatchEvent]| {
            let mut v: Vec<(String, Vec<u64>)> = ms
                .iter()
                .map(|m| (m.query_name.clone(), m.edges.iter().map(|e| e.0).collect()))
                .collect();
            v.sort();
            v
        };
        for complete in [
            labelled_ev("a2", "rust", "politics", 20),
            labelled_ev("s2", "football", "sports", 21),
        ] {
            let direct = key(&engine.ingest(&complete).unwrap());
            let replayed = key(&restored.ingest(&complete).unwrap());
            assert!(!direct.is_empty());
            assert_eq!(replayed, direct);
        }
        assert!(
            restored.engine_metrics().lifted_dispatch_hits > 0,
            "constant dispatch served the covered tenant"
        );
    }

    #[test]
    fn restore_re_interns_entries_with_paused_observation_intervals() {
        // The covered subscriber is paused across the checkpoint: restore
        // must rebuild the shared entry, keep the subscriber's observation
        // gap, and let post-resume matches join pre-checkpoint state.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        register_stateful(&mut engine, "pair1");
        let covered = register_stateful(&mut engine, "pair2");
        engine.ingest(&ev("a1", "rust", "mentions", 10)).unwrap();
        engine.pause(covered).unwrap();
        engine.ingest(&ev("g1", "go", "mentions", 20)).unwrap();

        let json = engine.checkpoint().to_json().unwrap();
        let mut restored = EngineCheckpoint::load(&json).unwrap().restore();
        assert_eq!(restored.engine_metrics().distinct_subtrees, 1);
        let h = restored
            .handles()
            .into_iter()
            .find(|&h| restored.plan(h).unwrap().query.name() == "pair2")
            .unwrap();
        assert!(restored.is_paused(h).unwrap());
        restored.resume(h).unwrap();

        // a2 completes the rust pair for both queries; the go mention from
        // pair2's gap completes only for pair1 — the restored entry serves
        // both, gated per subscriber.
        let matches = restored.ingest(&ev("a2", "rust", "mentions", 30)).unwrap();
        assert_eq!(
            matches.iter().filter(|m| m.query_name == "pair1").count(),
            2
        );
        assert_eq!(
            matches.iter().filter(|m| m.query_name == "pair2").count(),
            2,
            "the pre-pause rust partial completes for the resumed subscriber"
        );
        let gap = restored.ingest(&ev("g2", "go", "mentions", 31)).unwrap();
        assert_eq!(gap.iter().filter(|m| m.query_name == "pair1").count(), 2);
        assert_eq!(
            gap.iter().filter(|m| m.query_name == "pair2").count(),
            0,
            "the gap-anchored go partial stays invisible to the paused-then-resumed query"
        );
    }

    #[test]
    fn legacy_checkpoints_without_sharing_fields_stay_leaf_only() {
        // A checkpoint written by the leaf-only sharing release has no
        // `subtree_sharing` / `lifted_sharing` config fields: it must load
        // with both layers off and restore with leaf-level sharing only.
        let mut engine = ContinuousQueryEngine::builder().build().unwrap();
        register_tenant(&mut engine, "t_politics", "politics");
        register_tenant(&mut engine, "t_sports", "sports");
        engine
            .ingest(&labelled_ev("a1", "rust", "politics", 10))
            .unwrap();
        let mut legacy = engine.checkpoint().to_json().unwrap();
        for field in ["subtree_sharing", "lifted_sharing"] {
            let needle = format!("\"{field}\":true,");
            assert!(legacy.contains(&needle), "field {field} missing from JSON");
            legacy = legacy.replacen(&needle, "", 1);
        }

        let parsed = EngineCheckpoint::load(&legacy).unwrap();
        assert!(!parsed.config.subtree_sharing);
        assert!(!parsed.config.lifted_sharing);
        let mut restored = parsed.restore();
        let m = restored.engine_metrics();
        assert_eq!(
            m.distinct_subtrees, 0,
            "legacy snapshots keep leaf-only sharing"
        );
        assert!(
            m.distinct_primitives > 0,
            "the leaf-level index still interns"
        );
        // Exact-constant matching still works end to end.
        let matches = restored
            .ingest(&labelled_ev("a2", "rust", "politics", 20))
            .unwrap();
        assert_eq!(
            matches
                .iter()
                .filter(|m| m.query_name == "t_politics")
                .count(),
            2
        );
        assert!(matches.iter().all(|m| m.query_name == "t_politics"));
    }
}
