//! Multi-query sharing: the canonical primitive index.
//!
//! StreamWorks is a registry system — many standing queries watch one stream
//! — and registries built from shared templates contain many *structurally
//! identical* SJ-Tree leaf primitives. Without sharing, the engine's
//! per-event cost is `O(#queries)`: every registered query runs its own
//! anchored local search for every incoming edge, even when a thousand
//! queries would search for exactly the same shape.
//!
//! [`SharedPrimitiveIndex`] is the layer between registration and matching
//! that removes that multiplier:
//!
//! * At [`register_plan`](crate::ContinuousQueryEngine::register_plan) time,
//!   every leaf primitive of the query's SJ-Tree is canonicalized
//!   ([`streamworks_query::CanonicalPrimitive`]) and **interned** by its
//!   structural fingerprint. Isomorphic primitives (same typed edges,
//!   directions, predicates and window, under any query-vertex renaming)
//!   share one entry; an explicit canonical-form equality check behind the
//!   hash guarantees a fingerprint collision can never merge non-isomorphic
//!   primitives. Entries are refcounted by their subscriptions: the last
//!   deregistration frees the entry.
//! * Per event, the engine runs the anchored local search **once per
//!   distinct primitive** — against the entry's canonical pattern, through
//!   the same `find_primitive_matches_anchored` front end the per-query
//!   matchers use — and fans each embedding out to every *active* subscribing
//!   query's leaf, remapping bindings through the subscriber's precomputed
//!   vertex/edge permutation. Paused queries drop out of the fan-out (an
//!   entry whose subscribers are all paused is not searched at all).
//!
//! The index also keeps the engine-level dedup counters surfaced as
//! [`crate::EngineMetrics`], and per-subscription accounting that lets
//! [`crate::QueryMetrics::local_search_candidates`] stay exact per query even
//! though the search ran once for many queries.

use crate::anchors::AnchorIndex;
use crate::binding::{Binding, PartialMatch};
use crate::constraints::CompiledConstraints;
use crate::local_search::{find_primitive_matches_anchored, LocalSearchStats};
use crate::metrics::EngineMetrics;
use crate::sj_matcher::SjTreeMatcher;
use smallvec::SmallVec;
use streamworks_graph::hash::{FxHashMap, FxHashSet};
use streamworks_graph::{AttrValue, Duration, DynamicGraph, Edge, Timestamp};
use streamworks_query::{
    eq_constant_token, CanonicalPrimitive, LiftedPrimitive, Planner, QueryEdgeId, QueryGraph,
    QueryPlan, QueryVertexId, SjNodeId,
};

/// Translates a canonical-space match into a subscriber's query space:
/// bindings move through the vertex permutation, covered edges through the
/// edge permutation, timestamps are preserved. Shared by the leaf-level
/// [`Subscriber`] and the subtree-level [`SubtreeSubscriber`].
fn remap_match(
    vertex_map: &[QueryVertexId],
    edge_map: &[QueryEdgeId],
    vertex_count: usize,
    m: &PartialMatch,
) -> PartialMatch {
    let mut binding = Binding::new(vertex_count);
    for (canon_v, dv) in m.binding.iter() {
        let bound = binding.bind(vertex_map[canon_v.0], dv);
        debug_assert!(bound, "a bijective renaming preserves injectivity");
    }
    let mut edges: SmallVec<(QueryEdgeId, streamworks_graph::EdgeId), 6> = SmallVec::new();
    for &(qe, de) in &m.edges {
        edges.push((edge_map[qe.0], de));
    }
    edges.as_mut_slice().sort_unstable_by_key(|(q, _)| *q);
    PartialMatch {
        binding,
        edges,
        earliest: m.earliest,
        latest: m.latest,
    }
}

/// True when `anchor` (an arrival-order edge id) falls inside one of the
/// `[open, close)` observation intervals of a query's `observed` boundary
/// list (odd length = the final interval is still open). This is the gate
/// that makes shared subtree delivery exact under pause/resume and late
/// registration: a joined match is delivered only if every leaf embedding of
/// the *subscriber's own* partition was anchored at an edge the subscriber
/// observed — exactly the embeddings its private matcher would have formed.
pub(crate) fn anchor_in_observed(anchor: u64, observed: &[u64]) -> bool {
    let mut i = 0;
    while i < observed.len() {
        let open = observed[i];
        let close = observed.get(i + 1).copied();
        if anchor >= open && close.is_none_or(|c| anchor < c) {
            return true;
        }
        i += 2;
    }
    false
}

/// Deterministic FNV-1a over constant tokens: the O(1) prefilter key of
/// lifted constant dispatch (exact token equality decides behind it, so a
/// hash collision can never misroute an embedding).
fn tokens_hash(tokens: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in tokens {
        for b in t.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // token separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One query's subscription to a shared primitive entry: which SJ-Tree leaf
/// the embeddings feed, and how canonical-space bindings translate into the
/// subscriber's query-vertex space.
#[derive(Debug)]
pub(crate) struct Subscriber {
    /// The subscribing query's slot index.
    pub slot: u32,
    /// The SJ-Tree leaf of the subscriber that this primitive realises.
    pub leaf: SjNodeId,
    /// Canonical vertex id → subscriber query vertex.
    vertex_map: Vec<QueryVertexId>,
    /// Canonical edge position → subscriber query edge.
    edge_map: Vec<QueryEdgeId>,
    /// The subscriber query's total vertex count (binding slot table size).
    vertex_count: usize,
    /// False while the subscriber is paused: it drops out of the fan-out.
    active: bool,
    /// Entry candidate counter at the start of the current active interval.
    cand_base: u64,
    /// Candidates attributed over closed active intervals.
    cand_accum: u64,
}

impl Subscriber {
    /// Translates a canonical-space embedding into the subscriber's query
    /// space: bindings move through the vertex permutation, covered edges
    /// through the edge permutation, timestamps are preserved.
    pub fn remap(&self, m: &PartialMatch) -> PartialMatch {
        remap_match(&self.vertex_map, &self.edge_map, self.vertex_count, m)
    }
}

/// One interned distinct primitive.
#[derive(Debug)]
struct Entry {
    /// The canonical form (fingerprint + the equality check behind it).
    canon: CanonicalPrimitive,
    /// The canonical pattern the shared local search runs against
    /// (standalone query graph in canonical vertex/edge space, carrying the
    /// subscribers' common window).
    pattern: QueryGraph,
    /// All of `pattern`'s edge ids (the primitive-edge slice for the search).
    pattern_edges: Vec<QueryEdgeId>,
    /// Type constraints of `pattern`, resolved against the data graph.
    constraints: CompiledConstraints,
    /// Subscribing (query, leaf) pairs, refcounting the entry.
    subscribers: Vec<Subscriber>,
    /// Subscribers currently active (not paused).
    active_subs: usize,
    /// Cumulative local-search candidates examined by this entry's searches.
    candidates: u64,
    /// Embeddings found for the current event (canonical space).
    results: Vec<PartialMatch>,
    /// `shared_events` stamp of the last event that touched this entry.
    last_touched: u64,
}

/// A pending fan-out unit of one event: entry `entry`'s results go to
/// subscriber `sub` of that entry. Sort key fields first, so the engine can
/// deliver in deterministic (slot, leaf) order.
pub(crate) type Delivery = (u32, u32, u32, u32); // (slot, leaf, entry, sub)

/// The canonical primitive index (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct SharedPrimitiveIndex {
    /// Entry slots; freed entries are `None` and re-occupied via `free`.
    entries: Vec<Option<Entry>>,
    free: Vec<u32>,
    /// Fingerprint → entry indices. More than one index under a hash is a
    /// fingerprint collision: `CanonicalPrimitive::matches` decides.
    by_hash: FxHashMap<u64, Vec<u32>>,
    /// Query slot → entries it subscribes to (one per leaf; duplicates when
    /// several leaves of one query intern to the same entry).
    per_slot: FxHashMap<u32, Vec<u32>>,
    /// Per-type anchor dispatch (entry, canonical anchor edge) with the
    /// schema gate and dirty tracking — the same [`AnchorIndex`] the
    /// per-query matcher dispatches through, keyed by entry index.
    anchors: AnchorIndex<u32>,
    /// Entries touched (searched) by the current event.
    touched: Vec<u32>,
    /// Events processed through the shared dispatch path.
    shared_events: u64,
    /// Anchored searches actually run.
    searches_run: u64,
    /// Anchored searches saved vs. the per-query path (`active_subs - 1` per
    /// search run).
    searches_saved: u64,
    /// Embeddings produced by shared searches (pre-fan-out).
    embeddings_found: u64,
    /// Embeddings delivered to subscriber leaves (post-fan-out).
    deliveries: u64,
}

impl SharedPrimitiveIndex {
    /// Subscribes the given SJ-Tree leaves of `plan` under query slot `slot`,
    /// interning each leaf's canonical primitive. The engine passes every
    /// leaf *not* covered by a shared subtree subscription (with subtree
    /// sharing off that is all of them). Returns `false` — with no
    /// subscriptions left behind — if any listed leaf cannot be canonicalized
    /// (pathologically symmetric primitive); such a query is matched
    /// classically instead.
    pub fn subscribe_plan(
        &mut self,
        slot: u32,
        plan: &QueryPlan,
        leaves: &[SjNodeId],
        graph: &DynamicGraph,
    ) -> bool {
        debug_assert!(
            !self.per_slot.contains_key(&slot),
            "slot must be unsubscribed before re-subscribing"
        );
        let mut entries_of_slot = Vec::with_capacity(leaves.len());
        for &leaf in leaves {
            let edges = plan.shape.primitive_edges(leaf);
            let Some(canon) = CanonicalPrimitive::build(&plan.query, edges) else {
                // Roll back the leaves already subscribed for this slot.
                self.per_slot.insert(slot, entries_of_slot);
                self.unsubscribe_slot(slot);
                return false;
            };
            let entry_idx = self.intern(&canon, &plan.query, graph);
            let entry = self.entries[entry_idx as usize]
                .as_mut()
                .expect("interned entry is live");
            entry.subscribers.push(Subscriber {
                slot,
                leaf,
                vertex_map: canon.vertex_order().to_vec(),
                edge_map: canon.edge_order().to_vec(),
                vertex_count: plan.query.vertex_count(),
                active: true,
                cand_base: entry.candidates,
                cand_accum: 0,
            });
            entry.active_subs += 1;
            entries_of_slot.push(entry_idx);
        }
        self.per_slot.insert(slot, entries_of_slot);
        self.anchors.mark_dirty();
        true
    }

    /// Removes every subscription of `slot`. Entries left without
    /// subscribers are freed (the refcount discipline: the last
    /// deregistration releases the shared state).
    pub fn unsubscribe_slot(&mut self, slot: u32) {
        let Some(mut entry_indices) = self.per_slot.remove(&slot) else {
            return;
        };
        entry_indices.sort_unstable();
        entry_indices.dedup();
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            entry.subscribers.retain(|s| {
                if s.slot == slot {
                    if s.active {
                        entry.active_subs -= 1;
                    }
                    false
                } else {
                    true
                }
            });
            if entry.subscribers.is_empty() {
                let fingerprint = entry.canon.fingerprint();
                self.entries[idx as usize] = None;
                self.free.push(idx);
                if let Some(chain) = self.by_hash.get_mut(&fingerprint) {
                    chain.retain(|&i| i != idx);
                    if chain.is_empty() {
                        self.by_hash.remove(&fingerprint);
                    }
                }
            }
        }
        self.anchors.mark_dirty();
    }

    /// Activates or deactivates every subscription of `slot` (pause/resume).
    /// Inactive subscriptions drop out of the fan-out, and an entry with no
    /// active subscriber is not searched at all.
    pub fn set_active(&mut self, slot: u32, active: bool) {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return;
        };
        for &idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            let candidates = entry.candidates;
            for sub in entry.subscribers.iter_mut().filter(|s| s.slot == slot) {
                if sub.active == active {
                    continue;
                }
                sub.active = active;
                if active {
                    entry.active_subs += 1;
                    sub.cand_base = candidates;
                } else {
                    entry.active_subs -= 1;
                    sub.cand_accum += candidates - sub.cand_base;
                }
            }
        }
    }

    /// True if at least one entry fans out to two or more active
    /// subscriptions — the condition under which the shared dispatch path
    /// can save work over the per-query path.
    pub fn sharing_possible(&self) -> bool {
        self.entries.iter().flatten().any(|e| e.active_subs >= 2)
    }

    /// Events processed through the shared dispatch path so far (the basis
    /// of per-query `edges_processed` accounting in shared mode).
    pub fn shared_events(&self) -> u64 {
        self.shared_events
    }

    /// Local-search candidates attributable to `slot`: what its own searches
    /// would have examined, summed over its subscriptions' active intervals.
    pub fn slot_candidates(&self, slot: u32) -> u64 {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return 0;
        };
        // `per_slot` lists one entry per leaf, so an entry shared by several
        // leaves of this query appears several times; the inner loop already
        // sums every subscription of the slot, so visit each entry once.
        let mut entry_indices = entry_indices.clone();
        entry_indices.sort_unstable();
        entry_indices.dedup();
        let mut total = 0u64;
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("subscribed entry is live");
            for sub in entry.subscribers.iter().filter(|s| s.slot == slot) {
                total += sub.cand_accum;
                if sub.active {
                    total += entry.candidates - sub.cand_base;
                }
            }
        }
        total
    }

    /// Runs the shared local search for one incoming edge: every entry whose
    /// canonical pattern has an anchor compatible with the edge's type — and
    /// at least one active subscriber — is searched exactly once per anchor.
    /// Embeddings accumulate in the entries' result buffers until the engine
    /// fans them out; [`Self::collect_deliveries`] lists the pending work.
    pub fn search_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        self.shared_events += 1;
        self.touched.clear();

        if self.anchors.schema_changed(graph.schema_version()) {
            for entry in self.entries.iter_mut().flatten() {
                entry.constraints.refresh(&entry.pattern, graph);
            }
        }
        if self.anchors.is_dirty() {
            self.rebuild_anchors();
        }

        let anchors = self.anchors.take_for_type(edge.etype);

        for &(idx, anchor) in &anchors {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("anchor tables only reference live entries");
            if entry.active_subs == 0 {
                continue;
            }
            if entry.last_touched != self.shared_events {
                entry.last_touched = self.shared_events;
                entry.results.clear();
                self.touched.push(idx);
            }
            let mut stats = LocalSearchStats::default();
            find_primitive_matches_anchored(
                graph,
                &entry.pattern,
                &entry.constraints,
                &entry.pattern_edges,
                anchor,
                edge,
                entry.pattern.window(),
                &mut entry.results,
                &mut stats,
            );
            entry.candidates += stats.candidates_examined;
            self.searches_run += 1;
            self.searches_saved += (entry.active_subs - 1) as u64;
            self.embeddings_found += stats.matches_found;
        }
        self.anchors.give_back(anchors);
    }

    /// Appends one [`Delivery`] per (touched entry with embeddings, active
    /// subscriber) pair of the current event. The tuples sort by
    /// (slot, leaf), giving the engine the same per-event query order as the
    /// classic dispatch loop.
    pub fn collect_deliveries(&self, out: &mut Vec<Delivery>) {
        for &idx in &self.touched {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("touched entries are live");
            if entry.results.is_empty() {
                continue;
            }
            for (si, sub) in entry.subscribers.iter().enumerate() {
                if sub.active {
                    out.push((sub.slot, sub.leaf.0 as u32, idx, si as u32));
                }
            }
        }
    }

    /// Resolves one [`Delivery`] to the entry's canonical embeddings and the
    /// receiving subscription.
    pub fn delivery(&self, d: &Delivery) -> (&[PartialMatch], &Subscriber) {
        let entry = self.entries[d.2 as usize]
            .as_ref()
            .expect("deliveries reference live entries");
        (&entry.results, &entry.subscribers[d.3 as usize])
    }

    /// Accounts embeddings fanned out to subscriber leaves.
    pub fn add_deliveries(&mut self, n: u64) {
        self.deliveries += n;
    }

    /// Engine-level dedup counters (see [`EngineMetrics`]).
    pub fn metrics(&self) -> EngineMetrics {
        let mut distinct = 0u64;
        let mut subscribed = 0u64;
        for entry in self.entries.iter().flatten() {
            distinct += 1;
            subscribed += entry.subscribers.len() as u64;
        }
        EngineMetrics {
            distinct_primitives: distinct,
            subscribed_primitives: subscribed,
            shared_searches_run: self.searches_run,
            searches_saved: self.searches_saved,
            shared_embeddings: self.embeddings_found,
            fanout_deliveries: self.deliveries,
            ..Default::default()
        }
    }

    /// Interns a canonical primitive: returns the existing entry when an
    /// isomorphic one (same canonical form **and** window) is live, checking
    /// full canonical equality behind the fingerprint so hash collisions
    /// never merge distinct primitives.
    fn intern(
        &mut self,
        canon: &CanonicalPrimitive,
        query: &QueryGraph,
        graph: &DynamicGraph,
    ) -> u32 {
        if let Some(chain) = self.by_hash.get(&canon.fingerprint()) {
            for &idx in chain {
                let entry = self.entries[idx as usize]
                    .as_ref()
                    .expect("hash chains only reference live entries");
                if entry.pattern.window() == query.window() && entry.canon.matches(canon) {
                    return idx;
                }
            }
        }
        let pattern = canon.pattern(query);
        let pattern_edges: Vec<QueryEdgeId> = pattern.edge_ids().collect();
        let constraints = CompiledConstraints::compile(&pattern, graph);
        let entry = Entry {
            canon: canon.clone(),
            pattern,
            pattern_edges,
            constraints,
            subscribers: Vec::new(),
            active_subs: 0,
            candidates: 0,
            results: Vec::new(),
            last_touched: 0,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Some(entry);
                i
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        };
        self.by_hash
            .entry(canon.fingerprint())
            .or_default()
            .push(idx);
        idx
    }

    /// Rebuilds the per-type anchor dispatch tables from the live entries'
    /// resolved constraints.
    fn rebuild_anchors(&mut self) {
        self.anchors.begin_rebuild();
        for (idx, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            for &qe in &entry.pattern_edges {
                self.anchors
                    .add(entry.constraints.edge_type_filter(qe), idx as u32, qe);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared subtrees: interned join climbs
// ---------------------------------------------------------------------------

/// One query's subscription to a shared subtree entry: which SJ-Tree node of
/// the subscriber the entry's *joined* matches feed, how canonical-space
/// bindings translate into the subscriber's space, and the per-subscriber
/// state of constant dispatch and observation gating.
#[derive(Debug)]
pub(crate) struct SubtreeSubscriber {
    /// The subscribing query's slot index.
    pub slot: u32,
    /// The subscriber's SJ-Tree node this subtree realises: joined matches
    /// are absorbed here and the climb continues toward the root (for a
    /// whole-tree subscription this *is* the root and absorbed matches are
    /// complete).
    pub node: SjNodeId,
    /// Canonical vertex id → subscriber query vertex.
    vertex_map: Vec<QueryVertexId>,
    /// Canonical edge position → subscriber query edge.
    edge_map: Vec<QueryEdgeId>,
    /// The subscriber query's total vertex count (binding slot table size).
    vertex_count: usize,
    /// This query's registered constant tokens, in the entry's slot order
    /// (empty unless the entry is lifted).
    constants: Vec<String>,
    /// FNV prefilter key of `constants` (see [`tokens_hash`]).
    const_hash: u64,
    /// The *subscriber's own* leaf partition of the subtree, as groups of
    /// canonical edge positions: observation gating anchors each group at
    /// its max data-edge id. The partition must be the subscriber's — two
    /// decompositions of the same subtree partition the edges differently,
    /// and window acceptance is partition-independent but observation gating
    /// is not.
    gate_partition: Vec<Vec<u32>>,
    /// False while the subscriber is paused: it drops out of the fan-out.
    active: bool,
    /// Entry candidate counter at the start of the current active interval.
    cand_base: u64,
    /// Candidates attributed over closed active intervals.
    cand_accum: u64,
}

impl SubtreeSubscriber {
    /// Translates a canonical-space joined match into the subscriber's query
    /// space (see [`Subscriber::remap`]).
    pub fn remap(&self, m: &PartialMatch) -> PartialMatch {
        remap_match(&self.vertex_map, &self.edge_map, self.vertex_count, m)
    }

    /// The subscriber's registered constant tokens (entry slot order).
    pub fn constants(&self) -> &[String] {
        &self.constants
    }

    /// Observation gate: deliver a joined match to this subscriber only if
    /// every leaf of the subscriber's own partition is anchored (max
    /// data-edge id over the leaf's covered edges) inside the subscriber's
    /// observed intervals — exactly the leaf embeddings its private anchored
    /// search would have formed, so pause gaps and late registration behave
    /// identically to classic matching.
    pub fn admits(&self, m: &PartialMatch, observed: &[u64]) -> bool {
        self.gate_partition.iter().all(|leaf| {
            let mut anchor = 0u64;
            let mut found = false;
            for &pos in leaf {
                if let Some(&(_, de)) = m.edges.iter().find(|(qe, _)| qe.0 == pos as usize) {
                    found = true;
                    anchor = anchor.max(de.0);
                }
            }
            found && anchor_in_observed(anchor, observed)
        })
    }
}

/// One interned distinct subtree: a full internal SJ-Tree node's subtree of
/// typed, predicated edges, owning its own matcher over the (possibly
/// lifted) canonical pattern. The matcher runs the anchored searches *and*
/// the join climb once; complete matches of the entry are joined
/// subtree-root matches fanned out to every subscriber.
#[derive(Debug)]
struct SubtreeEntry {
    /// The lifted canonical form (fingerprint + exact isomorphism check +
    /// constant slot table).
    lifted: LiftedPrimitive,
    /// The entry's own matcher over the canonical search pattern (constants
    /// removed when lifted), fed every event the engine dispatches.
    matcher: SjTreeMatcher,
    /// Subscribing (query, node) pairs, refcounting the entry.
    subscribers: Vec<SubtreeSubscriber>,
    /// Subscribers currently active (not paused).
    active_subs: usize,
    /// `local_search_candidates` snapshot of the matcher (the attribution
    /// counter `cand_base`/`cand_accum` intervals are cut against).
    candidates: u64,
    /// `joins_attempted` snapshot of the matcher at the last event (for the
    /// per-event joins-run delta).
    joins_seen: u64,
    /// Joined (subtree-complete) matches of the current event.
    results: Vec<PartialMatch>,
    /// Per-result bound constant tokens (`None`: a slot attribute was
    /// missing, so no tenant's `eq` predicate can hold). Empty unless lifted.
    result_consts: Vec<Option<Vec<String>>>,
    /// Per-result constant hashes aligned with `result_consts` (prefilter).
    result_hashes: Vec<u64>,
    /// Per-slot union of subscribed constant tokens. The entry's search
    /// pattern carries an `InSet` filter per lifted slot, widened — never
    /// narrowed, see [`SharedSubtreeIndex::subscribe`] — as subscribers
    /// bring new constants, so the shared search stays as selective as the
    /// tenants' own `eq` predicates. Empty unless lifted.
    accepted: Vec<FxHashSet<String>>,
}

/// A pending advert: `slot` walked past this subtree form without finding a
/// live entry. When a *different* slot later walks past an isomorphic form,
/// the entry is created ("promoted") and the newcomer subscribes; the
/// advertiser keeps its classic/leaf-shared execution — retro-subscribing it
/// to a cold entry would lose the join state it has already accumulated.
#[derive(Debug)]
struct Advert {
    slot: u32,
    window: Duration,
    form: LiftedPrimitive,
}

/// The shared subtree index: interns maximal common SJ-Tree subtrees (and,
/// with lifting, constant-abstracted subtrees) so each shared subtree's
/// anchored searches *and* join climb run once per event, with joined
/// matches fanned out to every subscriber's parent node. The second layer of
/// multi-query sharing, above the leaf-level [`SharedPrimitiveIndex`].
///
/// A lifted entry's search pattern has the tenants' `eq` constants
/// abstracted away; searching it unconstrained would enumerate every
/// embedding of the bare shape. Each lifted slot therefore carries an
/// `InSet` predicate holding the **union of the subscribed constants**
/// (widened in [`Self::subscribe`]), so the shared search rejects exactly
/// the attribute values no tenant watches — as selective as the tenants' own
/// predicates, while still running once for all of them.
#[derive(Debug, Default)]
pub(crate) struct SharedSubtreeIndex {
    /// Lift `eq` constants to slots when canonicalizing (see
    /// [`LiftedPrimitive`]); set from `EngineConfig::lifted_sharing`.
    lift: bool,
    /// Per-node match cap handed to entry matchers (the engine's
    /// `max_matches_per_node`).
    match_cap: Option<usize>,
    /// Entry slots; freed entries are `None` and re-occupied via `free`.
    entries: Vec<Option<SubtreeEntry>>,
    free: Vec<u32>,
    /// Fingerprint → entry indices (collisions chain; `LiftedPrimitive::
    /// matches` decides).
    by_hash: FxHashMap<u64, Vec<u32>>,
    /// Query slot → entries it subscribes to.
    per_slot: FxHashMap<u32, Vec<u32>>,
    /// Fingerprint → adverts (purged when the advertising slot leaves).
    adverts: FxHashMap<u64, Vec<Advert>>,
    /// Entries with results in the current event.
    touched: Vec<u32>,
    /// Reusable buffer for entry matcher output.
    complete_scratch: Vec<PartialMatch>,
    /// Join-climb steps actually run inside entries.
    joins_run: u64,
    /// Join-climb steps saved vs. the per-query path.
    joins_saved: u64,
    /// Joined matches delivered through lifted constant dispatch.
    lifted_hits: u64,
}

impl SharedSubtreeIndex {
    /// Creates the index. `lift` enables constant lifting
    /// (`EngineConfig::lifted_sharing`); `match_cap` is forwarded to entry
    /// matchers.
    pub fn new(lift: bool, match_cap: Option<usize>) -> Self {
        SharedSubtreeIndex {
            lift,
            match_cap,
            ..Default::default()
        }
    }

    /// Walks `plan`'s SJ-Tree top-down from the root and subscribes `slot`
    /// at every *maximal* node whose subtree form matches a live entry or a
    /// pending advert from another slot (promotion). Nodes with no match are
    /// advertised and the walk descends. Returns the covered nodes; leaves
    /// below them must not be subscribed to the leaf-level index.
    ///
    /// Leaf nodes (including a single-primitive query's root) are coverable
    /// only when lifting actually abstracts a constant — an unlifted leaf is
    /// exactly what the leaf-level index already shares, cheaper.
    pub fn cover_plan(
        &mut self,
        slot: u32,
        plan: &QueryPlan,
        graph: &DynamicGraph,
    ) -> Vec<SjNodeId> {
        debug_assert!(
            !self.per_slot.contains_key(&slot),
            "slot must be unsubscribed before re-subscribing"
        );
        let window = plan.query.window();
        let mut covered = Vec::new();
        let mut stack = vec![plan.shape.root()];
        while let Some(node_id) = stack.pop() {
            let node = plan.shape.node(node_id);
            let descend = |stack: &mut Vec<SjNodeId>| {
                if let Some((l, r)) = node.children {
                    stack.push(l);
                    stack.push(r);
                }
            };
            let form = if node.children.is_some() || self.lift {
                LiftedPrimitive::build(&plan.query, &node.edges, self.lift)
            } else {
                None
            };
            let Some(form) = form else {
                descend(&mut stack);
                continue;
            };
            if node.children.is_none() && !form.is_lifted() {
                continue; // plain leaf: the leaf-level index's job
            }
            if let Some(idx) = self.find_entry(&form, window) {
                self.subscribe(idx, slot, node_id, plan, form);
                covered.push(node_id);
                continue;
            }
            if self.has_matching_advert(&form, window, slot) {
                if let Some(idx) = self.create_entry(&form, &plan.query, graph) {
                    self.subscribe(idx, slot, node_id, plan, form);
                    covered.push(node_id);
                    continue;
                }
            }
            self.adverts
                .entry(form.canon().fingerprint())
                .or_default()
                .push(Advert { slot, window, form });
            descend(&mut stack);
        }
        covered
    }

    /// Removes every subscription of `slot` and purges its adverts. Entries
    /// left without subscribers are freed; adverts of *other* slots persist,
    /// so a freed form can be promoted again later. A surviving entry keeps
    /// the departing slot's constants in its `InSet` search filter — the
    /// filter only ever widens while an entry is live (narrowing would
    /// invalidate stored partials); a freed entry starts over, dropping the
    /// stale constants.
    pub fn unsubscribe_slot(&mut self, slot: u32) {
        self.adverts.retain(|_, list| {
            list.retain(|a| a.slot != slot);
            !list.is_empty()
        });
        let Some(mut entry_indices) = self.per_slot.remove(&slot) else {
            return;
        };
        entry_indices.sort_unstable();
        entry_indices.dedup();
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            entry.subscribers.retain(|s| {
                if s.slot == slot {
                    if s.active {
                        entry.active_subs -= 1;
                    }
                    false
                } else {
                    true
                }
            });
            if entry.subscribers.is_empty() {
                let fingerprint = entry.lifted.canon().fingerprint();
                self.entries[idx as usize] = None;
                self.free.push(idx);
                if let Some(chain) = self.by_hash.get_mut(&fingerprint) {
                    chain.retain(|&i| i != idx);
                    if chain.is_empty() {
                        self.by_hash.remove(&fingerprint);
                    }
                }
            }
        }
    }

    /// Activates or deactivates every subscription of `slot` (pause/resume),
    /// cutting the candidate-attribution intervals exactly like the leaf
    /// index. Unlike the leaf index, an entry whose subscribers are all
    /// paused **keeps being fed** (see [`Self::search_edge`]): a pause-gap
    /// edge can anchor an *entry*-leaf partial that a post-resume match
    /// joins against, and whether the subscriber observed that match is
    /// decided per-leaf by its own gate partition — which can differ from
    /// the entry's decomposition.
    pub fn set_active(&mut self, slot: u32, active: bool) {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return;
        };
        for &idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            let candidates = entry.candidates;
            for sub in entry.subscribers.iter_mut().filter(|s| s.slot == slot) {
                if sub.active == active {
                    continue;
                }
                sub.active = active;
                if active {
                    entry.active_subs += 1;
                    sub.cand_base = candidates;
                } else {
                    entry.active_subs -= 1;
                    sub.cand_accum += candidates - sub.cand_base;
                }
            }
        }
    }

    /// True while any entry is live. Unlike the leaf index's
    /// `sharing_possible`, a single subscriber keeps the shared path active:
    /// a covered query's private matcher never sees the covered leaves, so
    /// its entry must keep being fed for as long as the subscription exists.
    pub fn has_entries(&self) -> bool {
        self.entries.iter().any(Option::is_some)
    }

    /// Local-search candidates attributable to `slot` across its subtree
    /// subscriptions' active intervals (see
    /// [`SharedPrimitiveIndex::slot_candidates`]).
    pub fn slot_candidates(&self, slot: u32) -> u64 {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return 0;
        };
        let mut entry_indices = entry_indices.clone();
        entry_indices.sort_unstable();
        entry_indices.dedup();
        let mut total = 0u64;
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("subscribed entry is live");
            for sub in entry.subscribers.iter().filter(|s| s.slot == slot) {
                total += sub.cand_accum;
                if sub.active {
                    total += entry.candidates - sub.cand_base;
                }
            }
        }
        total
    }

    /// Feeds one incoming edge to every live entry: the entry's matcher runs
    /// its anchored searches and join climb once, and complete
    /// (subtree-root) matches accumulate — with their bound constant tokens
    /// when lifted — until the engine fans them out.
    ///
    /// Entries are fed even while every subscriber is paused. Skipping such
    /// edges would be unsound: a leaf embedding is always anchored at its
    /// own max data edge, so a gap edge can anchor an *entry*-leaf partial
    /// that a post-resume joined match needs — while anchoring no leaf of
    /// the *subscriber's* partition, so [`SubtreeSubscriber::admits`] (which
    /// gates on the subscriber's partition, not the entry's) rightly admits
    /// the match.
    pub fn search_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        self.touched.clear();
        let mut complete = std::mem::take(&mut self.complete_scratch);
        for idx in 0..self.entries.len() {
            let Some(entry) = self.entries[idx].as_mut() else {
                continue;
            };
            complete.clear();
            entry.results.clear();
            entry.result_consts.clear();
            entry.result_hashes.clear();
            entry.matcher.process_edge(graph, edge, &mut complete);
            let m = entry.matcher.metrics();
            let joins_delta = m.joins_attempted - entry.joins_seen;
            entry.joins_seen = m.joins_attempted;
            entry.candidates = m.local_search_candidates;
            self.joins_run += joins_delta;
            self.joins_saved += joins_delta * (entry.active_subs as u64).saturating_sub(1);
            if complete.is_empty() {
                continue;
            }
            let lifted = entry.lifted.is_lifted();
            for joined in complete.drain(..) {
                if lifted {
                    match bound_constants(graph, &entry.lifted, &joined) {
                        Some(consts) => {
                            entry.result_hashes.push(tokens_hash(&consts));
                            entry.result_consts.push(Some(consts));
                        }
                        None => {
                            entry.result_hashes.push(0);
                            entry.result_consts.push(None);
                        }
                    }
                }
                entry.results.push(joined);
            }
            self.touched.push(idx as u32);
        }
        self.complete_scratch = complete;
    }

    /// Appends one [`Delivery`] per (touched entry with results, active
    /// subscriber) pair — for lifted entries only subscribers whose constant
    /// hash appears among the results (the exact token comparison happens at
    /// delivery). Tuples sort by (slot, node) for deterministic order.
    pub fn collect_deliveries(&self, out: &mut Vec<Delivery>) {
        for &idx in &self.touched {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("touched entries are live");
            if entry.results.is_empty() {
                continue;
            }
            let lifted = entry.lifted.is_lifted();
            for (si, sub) in entry.subscribers.iter().enumerate() {
                if !sub.active {
                    continue;
                }
                if lifted && !entry.result_hashes.contains(&sub.const_hash) {
                    continue;
                }
                out.push((sub.slot, sub.node.0 as u32, idx, si as u32));
            }
        }
    }

    /// Resolves one [`Delivery`]: the entry's joined matches, the per-match
    /// bound constants (empty slice when the entry is not lifted), the
    /// receiving subscription, and whether constant dispatch applies.
    pub fn delivery(
        &self,
        d: &Delivery,
    ) -> (
        &[PartialMatch],
        &[Option<Vec<String>>],
        &SubtreeSubscriber,
        bool,
    ) {
        let entry = self.entries[d.2 as usize]
            .as_ref()
            .expect("deliveries reference live entries");
        (
            &entry.results,
            &entry.result_consts,
            &entry.subscribers[d.3 as usize],
            entry.lifted.is_lifted(),
        )
    }

    /// Accounts joined matches delivered through lifted constant dispatch.
    pub fn add_lifted_hits(&mut self, n: u64) {
        self.lifted_hits += n;
    }

    /// Expires partial matches inside every entry's matcher.
    pub fn prune(&mut self, now: Timestamp) {
        for entry in self.entries.iter_mut().flatten() {
            entry.matcher.prune(now);
        }
    }

    /// Engine-level subtree counters (the subtree-specific fields of
    /// [`EngineMetrics`]; the engine merges them with the leaf index's).
    pub fn metrics(&self) -> EngineMetrics {
        let mut distinct = 0u64;
        let mut subscribed = 0u64;
        for entry in self.entries.iter().flatten() {
            distinct += 1;
            subscribed += entry.subscribers.len() as u64;
        }
        EngineMetrics {
            distinct_subtrees: distinct,
            subscribed_subtrees: subscribed,
            subtree_joins_run: self.joins_run,
            subtree_joins_saved: self.joins_saved,
            lifted_dispatch_hits: self.lifted_hits,
            ..Default::default()
        }
    }

    /// Finds a live entry isomorphic to `form` (same lifted canonical form
    /// **and** window), full equality checked behind the fingerprint.
    fn find_entry(&self, form: &LiftedPrimitive, window: Duration) -> Option<u32> {
        let chain = self.by_hash.get(&form.canon().fingerprint())?;
        for &idx in chain {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("hash chains only reference live entries");
            if entry.matcher.window() == window && entry.lifted.matches(form) {
                return Some(idx);
            }
        }
        None
    }

    /// True when another slot has advertised an isomorphic form with the
    /// same window — the promotion trigger. The advert stays in place: if
    /// the promoted entry is later freed, the advertiser's interest still
    /// stands.
    fn has_matching_advert(&self, form: &LiftedPrimitive, window: Duration, slot: u32) -> bool {
        self.adverts
            .get(&form.canon().fingerprint())
            .is_some_and(|list| {
                list.iter()
                    .any(|a| a.slot != slot && a.window == window && a.form.matches(form))
            })
    }

    /// Creates a cold entry for `form`: plans the canonical search pattern
    /// and builds the entry's own matcher. `None` when the pattern cannot be
    /// planned (the form is then advertised and the walk descends).
    fn create_entry(
        &mut self,
        form: &LiftedPrimitive,
        query: &QueryGraph,
        graph: &DynamicGraph,
    ) -> Option<u32> {
        let pattern = form.search_pattern(query);
        let plan = Planner::new().plan(pattern).ok()?;
        let matcher = SjTreeMatcher::new(plan, graph).with_match_cap(self.match_cap);
        let entry = SubtreeEntry {
            lifted: form.clone(),
            matcher,
            subscribers: Vec::new(),
            active_subs: 0,
            candidates: 0,
            joins_seen: 0,
            results: Vec::new(),
            result_consts: Vec::new(),
            result_hashes: Vec::new(),
            accepted: vec![FxHashSet::default(); form.slots().len()],
        };
        let fingerprint = form.canon().fingerprint();
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Some(entry);
                i
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        };
        self.by_hash.entry(fingerprint).or_default().push(idx);
        Some(idx)
    }

    /// Subscribes `slot` at `node_id` to entry `idx`, precomputing the remap
    /// permutations, the constant tokens, and the subscriber's own leaf
    /// partition (canonical edge positions) for observation gating.
    fn subscribe(
        &mut self,
        idx: u32,
        slot: u32,
        node_id: SjNodeId,
        plan: &QueryPlan,
        form: LiftedPrimitive,
    ) {
        let canon_pos: FxHashMap<QueryEdgeId, u32> = form
            .canon()
            .edge_order()
            .iter()
            .enumerate()
            .map(|(i, &qe)| (qe, i as u32))
            .collect();
        let mut gate_partition = Vec::new();
        let mut stack = vec![node_id];
        while let Some(n) = stack.pop() {
            let nd = plan.shape.node(n);
            match nd.children {
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
                None => gate_partition.push(
                    nd.edges
                        .iter()
                        .map(|qe| canon_pos[qe])
                        .collect::<Vec<u32>>(),
                ),
            }
        }
        let entry = self.entries[idx as usize]
            .as_mut()
            .expect("subscribe targets a live entry");
        // Widen the entry's per-slot constant filter with this subscriber's
        // tokens. The filter only ever grows while the entry is live (a
        // leaving subscriber does not retract its constants), so partials
        // stored under the old filter remain a valid subset of the new one.
        // An embedding dropped while its constant was unwatched can only be
        // needed by a later subscriber of that constant, whose observation
        // gate rejects matches anchored before it subscribed — the same
        // contract that makes cold-entry promotion exact.
        for (j, (pos, key)) in form.slots().iter().enumerate() {
            let tok = &form.constants()[j];
            if entry.accepted[j].insert(tok.clone()) {
                entry.matcher.query_mut().extend_in_set(
                    QueryEdgeId(*pos as usize),
                    key,
                    &token_values(tok),
                );
            }
        }
        entry.subscribers.push(SubtreeSubscriber {
            slot,
            node: node_id,
            vertex_map: form.canon().vertex_order().to_vec(),
            edge_map: form.canon().edge_order().to_vec(),
            vertex_count: plan.query.vertex_count(),
            const_hash: tokens_hash(form.constants()),
            constants: form.constants().to_vec(),
            gate_partition,
            active: true,
            cand_base: entry.candidates,
            cand_accum: 0,
        });
        entry.active_subs += 1;
        self.per_slot.entry(slot).or_default().push(idx);
    }
}

/// Reads the constant tokens a joined match actually bound at the entry's
/// slot positions: for each (canonical edge position, key) slot, the data
/// edge's attribute rendered through
/// [`streamworks_query::eq_constant_token`] (so integral floats dispatch to
/// integer-registered tenants exactly as `Predicate::matches` would accept
/// them). `None` when a slot attribute is missing — no tenant's `eq`
/// predicate can hold, so the match is dispatched nowhere.
fn bound_constants(
    graph: &DynamicGraph,
    lifted: &LiftedPrimitive,
    m: &PartialMatch,
) -> Option<Vec<String>> {
    let mut out = Vec::with_capacity(lifted.slots().len());
    for (pos, key) in lifted.slots() {
        let de = m
            .edges
            .iter()
            .find(|(qe, _)| qe.0 == *pos as usize)
            .map(|&(_, d)| d)?;
        let edge = graph.edge(de)?;
        out.push(eq_constant_token(edge.attrs.get(key)?));
    }
    Some(out)
}

/// Decodes an `eq` constant token (see
/// [`streamworks_query::eq_constant_token`]) back into the attribute values
/// a tenant's `eq` predicate accepts, for the entry's `InSet` search filter.
/// An `i` token covers both the integer and (when exactly representable) the
/// float spelling, mirroring `Eq`'s numeric coercion. Over-approximation is
/// safe — the filter is a prefilter, exact constant comparison happens at
/// dispatch — but under-approximation would drop embeddings a tenant is
/// owed.
fn token_values(tok: &str) -> Vec<AttrValue> {
    if let Some(rest) = tok.strip_prefix('i') {
        let Ok(n) = rest.parse::<i64>() else {
            return Vec::new();
        };
        let mut vals = vec![AttrValue::Int(n)];
        let f = n as f64;
        if f as i64 == n {
            vals.push(AttrValue::Float(f));
        }
        return vals;
    }
    if let Some(rest) = tok.strip_prefix('f') {
        let Ok(bits) = u64::from_str_radix(rest, 16) else {
            return Vec::new();
        };
        return vec![AttrValue::Float(f64::from_bits(bits))];
    }
    if let Some(rest) = tok.strip_prefix('s') {
        return match rest.split_once('#') {
            Some((_, text)) => vec![AttrValue::Str(text.to_owned())],
            None => Vec::new(),
        };
    }
    if let Some(rest) = tok.strip_prefix('b') {
        return vec![AttrValue::Bool(rest == "1")];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{Duration, EdgeEvent, Timestamp};
    use streamworks_query::{Planner, QueryGraphBuilder, SelectivityOrdered};

    fn pair_plan(name: &str, a1: &str, a2: &str) -> QueryPlan {
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex("k", "Keyword")
            .edge(a1, "mentions", "k")
            .edge(a2, "mentions", "k")
            .build()
            .unwrap();
        Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    #[test]
    fn isomorphic_leaves_intern_to_one_entry() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        // Two queries × two isomorphic single-edge leaves each: one entry,
        // four subscriptions.
        let p0 = pair_plan("q0", "a1", "a2");
        let p1 = pair_plan("q1", "x", "y");
        assert!(index.subscribe_plan(0, &p0, p0.shape.leaves(), &graph));
        assert!(index.subscribe_plan(1, &p1, p1.shape.leaves(), &graph));
        let m = index.metrics();
        assert_eq!(m.distinct_primitives, 1);
        assert_eq!(m.subscribed_primitives, 4);
        assert!(index.sharing_possible());

        // Last unsubscription frees the entry.
        index.unsubscribe_slot(0);
        assert_eq!(index.metrics().distinct_primitives, 1);
        index.unsubscribe_slot(1);
        let m = index.metrics();
        assert_eq!(m.distinct_primitives, 0);
        assert_eq!(m.subscribed_primitives, 0);
        assert!(!index.sharing_possible());
    }

    #[test]
    fn different_windows_do_not_share() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let p0 = pair_plan("q0", "a1", "a2");
        index.subscribe_plan(0, &p0, p0.shape.leaves(), &graph);
        let q = QueryGraphBuilder::new("q1")
            .window(Duration::from_secs(30))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        let plan = Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap();
        index.subscribe_plan(1, &plan, plan.shape.leaves(), &graph);
        // Same structure, different window: two distinct entries.
        assert_eq!(index.metrics().distinct_primitives, 2);
    }

    #[test]
    fn forced_fingerprint_collisions_stay_separate_entries() {
        // Adversarial case: two non-isomorphic primitives forced onto one
        // fingerprint must chain under the hash, never merge.
        let path = QueryGraphBuilder::new("p")
            .window(Duration::from_secs(60))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .build()
            .unwrap();
        let fan = QueryGraphBuilder::new("f")
            .window(Duration::from_secs(60))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("a", "flow", "c")
            .build()
            .unwrap();
        let edges: Vec<QueryEdgeId> = path.edge_ids().collect();
        let cp = CanonicalPrimitive::build(&path, &edges).unwrap();
        let mut cf = CanonicalPrimitive::build(&fan, &edges).unwrap();
        cf.force_fingerprint_for_tests(cp.fingerprint());

        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let e1 = index.intern(&cp, &path, &graph);
        let e2 = index.intern(&cf, &fan, &graph);
        assert_ne!(e1, e2, "collision must not merge non-isomorphic entries");
        assert_eq!(index.by_hash[&cp.fingerprint()].len(), 2);
        // Re-interning either finds its own entry.
        assert_eq!(index.intern(&cp, &path, &graph), e1);
        assert_eq!(index.intern(&cf, &fan, &graph), e2);
    }

    #[test]
    fn search_runs_once_and_fans_out_remapped_embeddings() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let plan0 = pair_plan("q0", "a1", "a2");
        let plan1 = pair_plan("q1", "x", "y");
        index.subscribe_plan(0, &plan0, plan0.shape.leaves(), &graph);
        index.subscribe_plan(1, &plan1, plan1.shape.leaves(), &graph);

        let r = graph.ingest(&EdgeEvent::new(
            "art",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(1),
        ));
        let edge = graph.edge(r.edge).unwrap().clone();
        index.search_edge(&graph, &edge);

        let m = index.metrics();
        // One entry, two anchors (the two canonical... single-edge leaves
        // collapse to one canonical edge), searched once per anchor with 4
        // subscriptions active: 3 searches saved per search run.
        assert_eq!(m.shared_searches_run, 1);
        assert_eq!(m.searches_saved, 3);
        assert_eq!(m.shared_embeddings, 1);

        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        assert_eq!(deliveries.len(), 4, "one delivery per subscription");
        deliveries.sort_unstable();
        // Remap lands the embedding in each subscriber's own vertex space.
        let (results, sub) = index.delivery(&deliveries[0]);
        assert_eq!(results.len(), 1);
        let remapped = sub.remap(&results[0]);
        assert_eq!(remapped.edge_count(), 1);
        assert_eq!(remapped.binding.bound_count(), 2);
        assert_eq!(remapped.earliest, Timestamp::from_secs(1));
        // The two leaves of q0 bind different query edges after remap.
        let (_, sub_a) = index.delivery(&deliveries[0]);
        let (_, sub_b) = index.delivery(&deliveries[1]);
        assert_eq!(sub_a.slot, 0);
        assert_eq!(sub_b.slot, 0);
        let ra = sub_a.remap(&results[0]);
        let rb = sub_b.remap(&results[0]);
        assert_ne!(ra.edges[0].0, rb.edges[0].0);
    }

    /// Default (2-edge-primitive) decomposition: the pair query collapses to
    /// one leaf whose search genuinely walks the neighbourhood, so candidate
    /// attribution is observable.
    fn pair_plan_wide(name: &str, a1: &str, a2: &str) -> QueryPlan {
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex("k", "Keyword")
            .edge(a1, "mentions", "k")
            .edge(a2, "mentions", "k")
            .build()
            .unwrap();
        Planner::new().plan(q).unwrap()
    }

    #[test]
    fn candidate_attribution_counts_each_subscription_once() {
        // One query whose two leaves intern to the SAME entry (two isomorphic
        // article wedges): per_slot lists the entry twice, and attribution
        // must still charge each subscription exactly once per search.
        use streamworks_query::ManualDecomposition;
        let wedge_pair = QueryGraphBuilder::new("wedges")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k") // 0
            .edge("a2", "mentions", "k") // 1
            .edge("a1", "located", "l") // 2
            .edge("a2", "located", "l") // 3
            .build()
            .unwrap();
        let plan = Planner::new()
            .plan_with(
                wedge_pair,
                &ManualDecomposition::new(vec![
                    vec![QueryEdgeId(0), QueryEdgeId(2)],
                    vec![QueryEdgeId(1), QueryEdgeId(3)],
                ]),
            )
            .unwrap();
        // Reference: a single-wedge query — the same canonical primitive,
        // subscribed once.
        let single = QueryGraphBuilder::new("wedge")
            .window(Duration::from_hours(1))
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a", "mentions", "k")
            .edge("a", "located", "l")
            .build()
            .unwrap();
        let single_plan = Planner::new().plan(single).unwrap();

        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        assert!(index.subscribe_plan(0, &plan, plan.shape.leaves(), &graph));
        assert!(index.subscribe_plan(1, &single_plan, single_plan.shape.leaves(), &graph));
        assert_eq!(index.metrics().distinct_primitives, 1);
        assert_eq!(index.metrics().subscribed_primitives, 3);

        for (i, (dst, dtype, etype)) in [
            ("rust", "Keyword", "mentions"),
            ("paris", "Location", "located"),
            ("go", "Keyword", "mentions"),
        ]
        .iter()
        .enumerate()
        {
            let r = graph.ingest(&EdgeEvent::new(
                "art",
                "Article",
                *dst,
                *dtype,
                *etype,
                Timestamp::from_secs(i as i64),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(&graph, &edge);
        }
        let pair_share = index.slot_candidates(0);
        let single_share = index.slot_candidates(1);
        assert!(single_share > 0, "the wedge search walks the neighbourhood");
        assert_eq!(
            pair_share,
            2 * single_share,
            "two subscriptions of one entry are charged exactly twice the \
             single subscription's share, not four times"
        );
    }

    /// Like [`pair_plan`] but with a lifted-coverable `eq` constant on both
    /// mention edges.
    fn labelled_pair_plan(name: &str, label: &str) -> QueryPlan {
        use streamworks_query::Predicate;
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge_with("a1", "mentions", "k", vec![Predicate::eq("label", label)])
            .edge_with("a2", "mentions", "k", vec![Predicate::eq("label", label)])
            .build()
            .unwrap();
        Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    #[test]
    fn subtree_advert_promotion_and_refcount_lifecycle() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedSubtreeIndex::new(false, None);
        let plans: Vec<QueryPlan> = (0..4)
            .map(|i| pair_plan(&format!("q{i}"), "a1", "a2"))
            .collect();

        // First query of a form only advertises: no entry, nothing covered.
        assert!(index.cover_plan(0, &plans[0], &graph).is_empty());
        assert_eq!(index.metrics().distinct_subtrees, 0);
        assert!(!index.has_entries());

        // The second query promotes the advert into a cold entry and
        // subscribes at its root; the advertiser stays on its classic path.
        let covered = index.cover_plan(1, &plans[1], &graph);
        assert_eq!(covered, vec![plans[1].shape.root()]);
        let m = index.metrics();
        assert_eq!(m.distinct_subtrees, 1);
        assert_eq!(m.subscribed_subtrees, 1);

        // A third query joins the live entry directly.
        assert_eq!(index.cover_plan(2, &plans[2], &graph).len(), 1);
        assert_eq!(index.metrics().subscribed_subtrees, 2);

        // The last unsubscription frees the entry, but the advertiser's
        // interest persists: a newcomer re-promotes the same form.
        index.unsubscribe_slot(1);
        index.unsubscribe_slot(2);
        assert!(!index.has_entries());
        assert_eq!(index.cover_plan(3, &plans[3], &graph).len(), 1);
        assert_eq!(index.metrics().distinct_subtrees, 1);

        // Once the advertiser leaves too, its advert is purged: a fresh
        // slot starts the advertise-then-promote cycle over.
        index.unsubscribe_slot(3);
        index.unsubscribe_slot(0);
        assert!(index.cover_plan(0, &plans[0], &graph).is_empty());
    }

    #[test]
    fn subtree_entries_with_different_windows_stay_separate() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedSubtreeIndex::new(false, None);
        let p0 = pair_plan("q0", "a1", "a2");
        let p1 = pair_plan("q1", "x", "y");
        assert!(index.cover_plan(0, &p0, &graph).is_empty());
        assert_eq!(index.cover_plan(1, &p1, &graph).len(), 1);
        let q = QueryGraphBuilder::new("q2")
            .window(Duration::from_secs(30))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        let p2 = Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap();
        // Same structure, different window: the live entry does not match,
        // and the pending adverts (both 1h) do not promote it either.
        assert!(index.cover_plan(2, &p2, &graph).is_empty());
        assert_eq!(index.metrics().distinct_subtrees, 1);
    }

    #[test]
    fn plain_leaves_are_left_to_the_leaf_index_but_lifted_ones_are_not() {
        let graph = DynamicGraph::unbounded();
        // Single-primitive queries (root == leaf). Unlifted: never covered,
        // even after two walk-bys — that is the leaf index's job.
        let mut plain = SharedSubtreeIndex::new(true, None);
        let q = |name: &str| {
            Planner::new()
                .plan(
                    QueryGraphBuilder::new(name)
                        .window(Duration::from_hours(1))
                        .vertex("a", "Article")
                        .vertex("k", "Keyword")
                        .edge("a", "mentions", "k")
                        .build()
                        .unwrap(),
                )
                .unwrap()
        };
        assert!(plain.cover_plan(0, &q("q0"), &graph).is_empty());
        assert!(plain.cover_plan(1, &q("q1"), &graph).is_empty());
        assert!(!plain.has_entries());

        // With a lifted constant the same single-leaf shape is coverable:
        // constant dispatch is something the leaf index cannot do.
        let lifted = |name: &str, label: &str| {
            use streamworks_query::Predicate;
            Planner::new()
                .plan(
                    QueryGraphBuilder::new(name)
                        .window(Duration::from_hours(1))
                        .vertex("a", "Article")
                        .vertex("k", "Keyword")
                        .edge_with("a", "mentions", "k", vec![Predicate::eq("label", label)])
                        .build()
                        .unwrap(),
                )
                .unwrap()
        };
        let mut index = SharedSubtreeIndex::new(true, None);
        assert!(index
            .cover_plan(0, &lifted("t0", "politics"), &graph)
            .is_empty());
        assert_eq!(
            index.cover_plan(1, &lifted("t1", "sports"), &graph).len(),
            1
        );
        assert_eq!(index.metrics().distinct_subtrees, 1);
    }

    #[test]
    fn lifted_subtree_dispatches_by_bound_constant() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedSubtreeIndex::new(true, None);
        // Three constant-variant tenants: t0 advertises, t1 promotes, t2
        // joins — one entry, two subscribers (politics and sports).
        assert!(index
            .cover_plan(0, &labelled_pair_plan("t0", "culture"), &graph)
            .is_empty());
        let politics = labelled_pair_plan("t1", "politics");
        let sports = labelled_pair_plan("t2", "sports");
        assert_eq!(index.cover_plan(1, &politics, &graph).len(), 1);
        assert_eq!(index.cover_plan(2, &sports, &graph).len(), 1);
        assert_eq!(index.metrics().distinct_subtrees, 1);
        assert_eq!(index.metrics().subscribed_subtrees, 2);

        // Two politics-labelled mentions of one keyword complete the pair
        // inside the entry's own matcher.
        for (i, src) in ["art1", "art2"].iter().enumerate() {
            let r = graph.ingest(
                &EdgeEvent::new(
                    *src,
                    "Article",
                    "election",
                    "Keyword",
                    "mentions",
                    Timestamp::from_secs(i as i64),
                )
                .with_attr("label", "politics"),
            );
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(&graph, &edge);
        }
        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        // The constant-hash prefilter already routes the joined match to the
        // politics tenant only.
        assert_eq!(deliveries.len(), 1, "{deliveries:?}");
        let (results, consts, sub, lifted) = index.delivery(&deliveries[0]);
        assert!(lifted);
        assert_eq!(sub.slot, 1);
        // The symmetric pair admits both article assignments, exactly like a
        // private matcher would.
        assert_eq!(results.len(), 2);
        for c in consts {
            assert_eq!(
                c.as_deref().unwrap(),
                sub.constants(),
                "the bound constants equal the tenant's registered tokens"
            );
        }
        // Remap lands the joined pair in the subscriber's own space: two
        // covered edges, three bound vertices.
        let remapped = sub.remap(&results[0]);
        assert_eq!(remapped.edge_count(), 2);
        assert_eq!(remapped.binding.bound_count(), 3);
    }

    #[test]
    fn token_values_cover_every_eq_accepted_spelling() {
        // Ints cover both numeric spellings `Eq` coerces across.
        assert_eq!(
            token_values("i3"),
            vec![AttrValue::Int(3), AttrValue::Float(3.0)]
        );
        // Non-integral floats round-trip through their bit pattern.
        let bits = 0.5f64.to_bits();
        assert_eq!(
            token_values(&format!("f{bits:016x}")),
            vec![AttrValue::Float(0.5)]
        );
        assert_eq!(
            token_values("s8#politics"),
            vec![AttrValue::Str("politics".into())]
        );
        assert_eq!(token_values("b1"), vec![AttrValue::Bool(true)]);
        // Malformed tokens decode to nothing (the filter then rejects, like
        // the unsatisfiable `eq` it mirrors).
        assert!(token_values("x?").is_empty());
    }

    #[test]
    fn lifted_entry_search_filters_unsubscribed_constants() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedSubtreeIndex::new(true, None);
        assert!(index
            .cover_plan(0, &labelled_pair_plan("t0", "politics"), &graph)
            .is_empty());
        assert_eq!(
            index
                .cover_plan(1, &labelled_pair_plan("t1", "sports"), &graph)
                .len(),
            1
        );
        assert_eq!(
            index
                .cover_plan(2, &labelled_pair_plan("t2", "culture"), &graph)
                .len(),
            1
        );

        let mention = |src: &str, label: &str, t: i64| {
            EdgeEvent::new(src, "Article", "fair", "Keyword", "mentions", {
                Timestamp::from_secs(t)
            })
            .with_attr("label", label)
        };
        let feed = |graph: &mut DynamicGraph, index: &mut SharedSubtreeIndex, ev| {
            let r = graph.ingest(&ev);
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(graph, &edge);
        };

        // "weather" is watched by no subscriber: the InSet filter rejects
        // the mentions at the anchor check, so the entry enumerates no
        // embeddings at all for them.
        feed(&mut graph, &mut index, mention("w1", "weather", 0));
        feed(&mut graph, &mut index, mention("w2", "weather", 1));
        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        assert!(deliveries.is_empty());
        let entry = index.entries[0].as_ref().unwrap();
        assert_eq!(entry.matcher.metrics().primitive_matches, 0);

        // A watched constant still flows end to end.
        feed(&mut graph, &mut index, mention("c1", "culture", 2));
        feed(&mut graph, &mut index, mention("c2", "culture", 3));
        index.collect_deliveries(&mut deliveries);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(index.delivery(&deliveries[0]).2.slot, 2);

        // A late subscriber widens the filter from its subscription on. The
        // next weather mention completes pairs against the earlier w1/w2
        // edges re-read from the graph — exactly what the tenant's own
        // just-registered matcher would find; the engine's observation gate
        // (not the index) is what filters pre-subscription anchors.
        assert_eq!(
            index
                .cover_plan(3, &labelled_pair_plan("t3", "weather"), &graph)
                .len(),
            1
        );
        feed(&mut graph, &mut index, mention("w3", "weather", 4));
        deliveries.clear();
        index.collect_deliveries(&mut deliveries);
        assert_eq!(deliveries.len(), 1, "{deliveries:?}");
        let (results, consts, sub, _) = index.delivery(&deliveries[0]);
        assert_eq!(sub.slot, 3);
        // Partners w1, w2 (weather) and c1, c2 (culture) each pair with w3
        // in both edge assignments; only the all-weather tuples carry t3's
        // constants and survive its dispatch.
        assert_eq!(results.len(), 8);
        let weather: Vec<_> = consts
            .iter()
            .filter(|c| c.as_deref() == Some(sub.constants()))
            .collect();
        assert_eq!(weather.len(), 4);
    }

    #[test]
    fn admits_gates_each_subscriber_leaf_on_its_own_anchor() {
        use smallvec::SmallVec;
        use streamworks_graph::EdgeId;
        // A synthetic subscriber whose partition splits three canonical
        // edges into leaves {0,1} and {2}; leaf anchors are the max data
        // edge ids: 50 and 20.
        let sub = SubtreeSubscriber {
            slot: 0,
            node: SjNodeId(0),
            vertex_map: Vec::new(),
            edge_map: Vec::new(),
            vertex_count: 0,
            constants: Vec::new(),
            const_hash: 0,
            gate_partition: vec![vec![0, 1], vec![2]],
            active: true,
            cand_base: 0,
            cand_accum: 0,
        };
        let mut edges: SmallVec<(QueryEdgeId, EdgeId), 6> = SmallVec::new();
        edges.push((QueryEdgeId(0), EdgeId(10)));
        edges.push((QueryEdgeId(1), EdgeId(50)));
        edges.push((QueryEdgeId(2), EdgeId(20)));
        let m = PartialMatch {
            binding: Binding::new(0),
            edges,
            earliest: Timestamp::from_secs(0),
            latest: Timestamp::from_secs(0),
        };
        // Observed from edge 0 onward: both anchors inside.
        assert!(sub.admits(&m, &[0]));
        // Interval closed at 30: anchor 50 falls outside.
        assert!(!sub.admits(&m, &[0, 30]));
        // Pause gap [30, 40): anchor 50 lands in the reopened interval,
        // anchor 20 in the first — admitted. Note edge 10 sits in the gap:
        // non-anchor edges need not be observed.
        assert!(sub.admits(&m, &[0, 30, 40]));
        // Late registration at 25: anchor 20 was never observed.
        assert!(!sub.admits(&m, &[25]));
        // A partition leaf with no covered edge never admits.
        let missing = SubtreeSubscriber {
            gate_partition: vec![vec![0], vec![7]],
            constants: Vec::new(),
            vertex_map: Vec::new(),
            edge_map: Vec::new(),
            ..sub
        };
        assert!(!missing.admits(&m, &[0]));
    }

    #[test]
    fn paused_subscribers_drop_out_of_search_and_fanout() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let p0 = pair_plan_wide("q0", "a1", "a2");
        let p1 = pair_plan_wide("q1", "x", "y");
        index.subscribe_plan(0, &p0, p0.shape.leaves(), &graph);
        index.subscribe_plan(1, &p1, p1.shape.leaves(), &graph);
        index.set_active(0, false);

        let feed = |graph: &mut DynamicGraph,
                    index: &mut SharedPrimitiveIndex,
                    src: &str,
                    dst: &str,
                    t: i64| {
            let r = graph.ingest(&EdgeEvent::new(
                src,
                "Article",
                dst,
                "Keyword",
                "mentions",
                Timestamp::from_secs(t),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(graph, &edge);
        };
        feed(&mut graph, &mut index, "art1", "rust", 1);
        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        feed(&mut graph, &mut index, "art2", "rust", 2);
        index.collect_deliveries(&mut deliveries);
        assert!(
            !deliveries.is_empty(),
            "the second mention completes a pair"
        );
        assert!(
            deliveries.iter().all(|d| d.0 == 1),
            "only the active subscriber receives: {deliveries:?}"
        );
        // Candidate attribution: the paused slot accrues nothing, the active
        // one is charged the search's neighbourhood walk.
        assert_eq!(index.slot_candidates(0), 0);
        assert!(index.slot_candidates(1) > 0);

        // With every subscriber paused the entry is not searched at all.
        index.set_active(1, false);
        let before = index.metrics().shared_searches_run;
        feed(&mut graph, &mut index, "art3", "go", 3);
        assert_eq!(index.metrics().shared_searches_run, before);
        assert!(!index.sharing_possible());

        // Resuming re-opens the attribution interval without re-charging
        // searches run while paused.
        index.set_active(0, true);
        let paused_share = index.slot_candidates(0);
        assert_eq!(paused_share, 0);
        feed(&mut graph, &mut index, "art4", "rust", 4);
        assert!(index.slot_candidates(0) > 0);
    }
}
