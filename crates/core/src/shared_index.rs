//! Multi-query sharing: the canonical primitive index.
//!
//! StreamWorks is a registry system — many standing queries watch one stream
//! — and registries built from shared templates contain many *structurally
//! identical* SJ-Tree leaf primitives. Without sharing, the engine's
//! per-event cost is `O(#queries)`: every registered query runs its own
//! anchored local search for every incoming edge, even when a thousand
//! queries would search for exactly the same shape.
//!
//! [`SharedPrimitiveIndex`] is the layer between registration and matching
//! that removes that multiplier:
//!
//! * At [`register_plan`](crate::ContinuousQueryEngine::register_plan) time,
//!   every leaf primitive of the query's SJ-Tree is canonicalized
//!   ([`streamworks_query::CanonicalPrimitive`]) and **interned** by its
//!   structural fingerprint. Isomorphic primitives (same typed edges,
//!   directions, predicates and window, under any query-vertex renaming)
//!   share one entry; an explicit canonical-form equality check behind the
//!   hash guarantees a fingerprint collision can never merge non-isomorphic
//!   primitives. Entries are refcounted by their subscriptions: the last
//!   deregistration frees the entry.
//! * Per event, the engine runs the anchored local search **once per
//!   distinct primitive** — against the entry's canonical pattern, through
//!   the same `find_primitive_matches_anchored` front end the per-query
//!   matchers use — and fans each embedding out to every *active* subscribing
//!   query's leaf, remapping bindings through the subscriber's precomputed
//!   vertex/edge permutation. Paused queries drop out of the fan-out (an
//!   entry whose subscribers are all paused is not searched at all).
//!
//! The index also keeps the engine-level dedup counters surfaced as
//! [`crate::EngineMetrics`], and per-subscription accounting that lets
//! [`crate::QueryMetrics::local_search_candidates`] stay exact per query even
//! though the search ran once for many queries.

use crate::anchors::AnchorIndex;
use crate::binding::{Binding, PartialMatch};
use crate::constraints::CompiledConstraints;
use crate::local_search::{find_primitive_matches_anchored, LocalSearchStats};
use crate::metrics::EngineMetrics;
use smallvec::SmallVec;
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{DynamicGraph, Edge};
use streamworks_query::{
    CanonicalPrimitive, QueryEdgeId, QueryGraph, QueryPlan, QueryVertexId, SjNodeId,
};

/// One query's subscription to a shared primitive entry: which SJ-Tree leaf
/// the embeddings feed, and how canonical-space bindings translate into the
/// subscriber's query-vertex space.
#[derive(Debug)]
pub(crate) struct Subscriber {
    /// The subscribing query's slot index.
    pub slot: u32,
    /// The SJ-Tree leaf of the subscriber that this primitive realises.
    pub leaf: SjNodeId,
    /// Canonical vertex id → subscriber query vertex.
    vertex_map: Vec<QueryVertexId>,
    /// Canonical edge position → subscriber query edge.
    edge_map: Vec<QueryEdgeId>,
    /// The subscriber query's total vertex count (binding slot table size).
    vertex_count: usize,
    /// False while the subscriber is paused: it drops out of the fan-out.
    active: bool,
    /// Entry candidate counter at the start of the current active interval.
    cand_base: u64,
    /// Candidates attributed over closed active intervals.
    cand_accum: u64,
}

impl Subscriber {
    /// Translates a canonical-space embedding into the subscriber's query
    /// space: bindings move through the vertex permutation, covered edges
    /// through the edge permutation, timestamps are preserved.
    pub fn remap(&self, m: &PartialMatch) -> PartialMatch {
        let mut binding = Binding::new(self.vertex_count);
        for (canon_v, dv) in m.binding.iter() {
            let bound = binding.bind(self.vertex_map[canon_v.0], dv);
            debug_assert!(bound, "a bijective renaming preserves injectivity");
        }
        let mut edges: SmallVec<(QueryEdgeId, streamworks_graph::EdgeId), 6> = SmallVec::new();
        for &(qe, de) in &m.edges {
            edges.push((self.edge_map[qe.0], de));
        }
        edges.as_mut_slice().sort_unstable_by_key(|(q, _)| *q);
        PartialMatch {
            binding,
            edges,
            earliest: m.earliest,
            latest: m.latest,
        }
    }
}

/// One interned distinct primitive.
#[derive(Debug)]
struct Entry {
    /// The canonical form (fingerprint + the equality check behind it).
    canon: CanonicalPrimitive,
    /// The canonical pattern the shared local search runs against
    /// (standalone query graph in canonical vertex/edge space, carrying the
    /// subscribers' common window).
    pattern: QueryGraph,
    /// All of `pattern`'s edge ids (the primitive-edge slice for the search).
    pattern_edges: Vec<QueryEdgeId>,
    /// Type constraints of `pattern`, resolved against the data graph.
    constraints: CompiledConstraints,
    /// Subscribing (query, leaf) pairs, refcounting the entry.
    subscribers: Vec<Subscriber>,
    /// Subscribers currently active (not paused).
    active_subs: usize,
    /// Cumulative local-search candidates examined by this entry's searches.
    candidates: u64,
    /// Embeddings found for the current event (canonical space).
    results: Vec<PartialMatch>,
    /// `shared_events` stamp of the last event that touched this entry.
    last_touched: u64,
}

/// A pending fan-out unit of one event: entry `entry`'s results go to
/// subscriber `sub` of that entry. Sort key fields first, so the engine can
/// deliver in deterministic (slot, leaf) order.
pub(crate) type Delivery = (u32, u32, u32, u32); // (slot, leaf, entry, sub)

/// The canonical primitive index (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct SharedPrimitiveIndex {
    /// Entry slots; freed entries are `None` and re-occupied via `free`.
    entries: Vec<Option<Entry>>,
    free: Vec<u32>,
    /// Fingerprint → entry indices. More than one index under a hash is a
    /// fingerprint collision: `CanonicalPrimitive::matches` decides.
    by_hash: FxHashMap<u64, Vec<u32>>,
    /// Query slot → entries it subscribes to (one per leaf; duplicates when
    /// several leaves of one query intern to the same entry).
    per_slot: FxHashMap<u32, Vec<u32>>,
    /// Per-type anchor dispatch (entry, canonical anchor edge) with the
    /// schema gate and dirty tracking — the same [`AnchorIndex`] the
    /// per-query matcher dispatches through, keyed by entry index.
    anchors: AnchorIndex<u32>,
    /// Entries touched (searched) by the current event.
    touched: Vec<u32>,
    /// Events processed through the shared dispatch path.
    shared_events: u64,
    /// Anchored searches actually run.
    searches_run: u64,
    /// Anchored searches saved vs. the per-query path (`active_subs - 1` per
    /// search run).
    searches_saved: u64,
    /// Embeddings produced by shared searches (pre-fan-out).
    embeddings_found: u64,
    /// Embeddings delivered to subscriber leaves (post-fan-out).
    deliveries: u64,
}

impl SharedPrimitiveIndex {
    /// Subscribes every SJ-Tree leaf of `plan` under query slot `slot`,
    /// interning each leaf's canonical primitive. Returns `false` — with no
    /// subscriptions left behind — if any leaf cannot be canonicalized
    /// (pathologically symmetric primitive); such a query is matched
    /// classically instead.
    pub fn subscribe_plan(&mut self, slot: u32, plan: &QueryPlan, graph: &DynamicGraph) -> bool {
        debug_assert!(
            !self.per_slot.contains_key(&slot),
            "slot must be unsubscribed before re-subscribing"
        );
        let mut entries_of_slot = Vec::with_capacity(plan.shape.leaves().len());
        for &leaf in plan.shape.leaves() {
            let edges = plan.shape.primitive_edges(leaf);
            let Some(canon) = CanonicalPrimitive::build(&plan.query, edges) else {
                // Roll back the leaves already subscribed for this slot.
                self.per_slot.insert(slot, entries_of_slot);
                self.unsubscribe_slot(slot);
                return false;
            };
            let entry_idx = self.intern(&canon, &plan.query, graph);
            let entry = self.entries[entry_idx as usize]
                .as_mut()
                .expect("interned entry is live");
            entry.subscribers.push(Subscriber {
                slot,
                leaf,
                vertex_map: canon.vertex_order().to_vec(),
                edge_map: canon.edge_order().to_vec(),
                vertex_count: plan.query.vertex_count(),
                active: true,
                cand_base: entry.candidates,
                cand_accum: 0,
            });
            entry.active_subs += 1;
            entries_of_slot.push(entry_idx);
        }
        self.per_slot.insert(slot, entries_of_slot);
        self.anchors.mark_dirty();
        true
    }

    /// Removes every subscription of `slot`. Entries left without
    /// subscribers are freed (the refcount discipline: the last
    /// deregistration releases the shared state).
    pub fn unsubscribe_slot(&mut self, slot: u32) {
        let Some(mut entry_indices) = self.per_slot.remove(&slot) else {
            return;
        };
        entry_indices.sort_unstable();
        entry_indices.dedup();
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            entry.subscribers.retain(|s| {
                if s.slot == slot {
                    if s.active {
                        entry.active_subs -= 1;
                    }
                    false
                } else {
                    true
                }
            });
            if entry.subscribers.is_empty() {
                let fingerprint = entry.canon.fingerprint();
                self.entries[idx as usize] = None;
                self.free.push(idx);
                if let Some(chain) = self.by_hash.get_mut(&fingerprint) {
                    chain.retain(|&i| i != idx);
                    if chain.is_empty() {
                        self.by_hash.remove(&fingerprint);
                    }
                }
            }
        }
        self.anchors.mark_dirty();
    }

    /// Activates or deactivates every subscription of `slot` (pause/resume).
    /// Inactive subscriptions drop out of the fan-out, and an entry with no
    /// active subscriber is not searched at all.
    pub fn set_active(&mut self, slot: u32, active: bool) {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return;
        };
        for &idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("subscribed entry is live");
            let candidates = entry.candidates;
            for sub in entry.subscribers.iter_mut().filter(|s| s.slot == slot) {
                if sub.active == active {
                    continue;
                }
                sub.active = active;
                if active {
                    entry.active_subs += 1;
                    sub.cand_base = candidates;
                } else {
                    entry.active_subs -= 1;
                    sub.cand_accum += candidates - sub.cand_base;
                }
            }
        }
    }

    /// True if at least one entry fans out to two or more active
    /// subscriptions — the condition under which the shared dispatch path
    /// can save work over the per-query path.
    pub fn sharing_possible(&self) -> bool {
        self.entries.iter().flatten().any(|e| e.active_subs >= 2)
    }

    /// Events processed through the shared dispatch path so far (the basis
    /// of per-query `edges_processed` accounting in shared mode).
    pub fn shared_events(&self) -> u64 {
        self.shared_events
    }

    /// Local-search candidates attributable to `slot`: what its own searches
    /// would have examined, summed over its subscriptions' active intervals.
    pub fn slot_candidates(&self, slot: u32) -> u64 {
        let Some(entry_indices) = self.per_slot.get(&slot) else {
            return 0;
        };
        // `per_slot` lists one entry per leaf, so an entry shared by several
        // leaves of this query appears several times; the inner loop already
        // sums every subscription of the slot, so visit each entry once.
        let mut entry_indices = entry_indices.clone();
        entry_indices.sort_unstable();
        entry_indices.dedup();
        let mut total = 0u64;
        for idx in entry_indices {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("subscribed entry is live");
            for sub in entry.subscribers.iter().filter(|s| s.slot == slot) {
                total += sub.cand_accum;
                if sub.active {
                    total += entry.candidates - sub.cand_base;
                }
            }
        }
        total
    }

    /// Runs the shared local search for one incoming edge: every entry whose
    /// canonical pattern has an anchor compatible with the edge's type — and
    /// at least one active subscriber — is searched exactly once per anchor.
    /// Embeddings accumulate in the entries' result buffers until the engine
    /// fans them out; [`Self::collect_deliveries`] lists the pending work.
    pub fn search_edge(&mut self, graph: &DynamicGraph, edge: &Edge) {
        self.shared_events += 1;
        self.touched.clear();

        if self.anchors.schema_changed(graph.schema_version()) {
            for entry in self.entries.iter_mut().flatten() {
                entry.constraints.refresh(&entry.pattern, graph);
            }
        }
        if self.anchors.is_dirty() {
            self.rebuild_anchors();
        }

        let anchors = self.anchors.take_for_type(edge.etype);

        for &(idx, anchor) in &anchors {
            let entry = self.entries[idx as usize]
                .as_mut()
                .expect("anchor tables only reference live entries");
            if entry.active_subs == 0 {
                continue;
            }
            if entry.last_touched != self.shared_events {
                entry.last_touched = self.shared_events;
                entry.results.clear();
                self.touched.push(idx);
            }
            let mut stats = LocalSearchStats::default();
            find_primitive_matches_anchored(
                graph,
                &entry.pattern,
                &entry.constraints,
                &entry.pattern_edges,
                anchor,
                edge,
                entry.pattern.window(),
                &mut entry.results,
                &mut stats,
            );
            entry.candidates += stats.candidates_examined;
            self.searches_run += 1;
            self.searches_saved += (entry.active_subs - 1) as u64;
            self.embeddings_found += stats.matches_found;
        }
        self.anchors.give_back(anchors);
    }

    /// Appends one [`Delivery`] per (touched entry with embeddings, active
    /// subscriber) pair of the current event. The tuples sort by
    /// (slot, leaf), giving the engine the same per-event query order as the
    /// classic dispatch loop.
    pub fn collect_deliveries(&self, out: &mut Vec<Delivery>) {
        for &idx in &self.touched {
            let entry = self.entries[idx as usize]
                .as_ref()
                .expect("touched entries are live");
            if entry.results.is_empty() {
                continue;
            }
            for (si, sub) in entry.subscribers.iter().enumerate() {
                if sub.active {
                    out.push((sub.slot, sub.leaf.0 as u32, idx, si as u32));
                }
            }
        }
    }

    /// Resolves one [`Delivery`] to the entry's canonical embeddings and the
    /// receiving subscription.
    pub fn delivery(&self, d: &Delivery) -> (&[PartialMatch], &Subscriber) {
        let entry = self.entries[d.2 as usize]
            .as_ref()
            .expect("deliveries reference live entries");
        (&entry.results, &entry.subscribers[d.3 as usize])
    }

    /// Accounts embeddings fanned out to subscriber leaves.
    pub fn add_deliveries(&mut self, n: u64) {
        self.deliveries += n;
    }

    /// Engine-level dedup counters (see [`EngineMetrics`]).
    pub fn metrics(&self) -> EngineMetrics {
        let mut distinct = 0u64;
        let mut subscribed = 0u64;
        for entry in self.entries.iter().flatten() {
            distinct += 1;
            subscribed += entry.subscribers.len() as u64;
        }
        EngineMetrics {
            distinct_primitives: distinct,
            subscribed_primitives: subscribed,
            shared_searches_run: self.searches_run,
            searches_saved: self.searches_saved,
            shared_embeddings: self.embeddings_found,
            fanout_deliveries: self.deliveries,
        }
    }

    /// Interns a canonical primitive: returns the existing entry when an
    /// isomorphic one (same canonical form **and** window) is live, checking
    /// full canonical equality behind the fingerprint so hash collisions
    /// never merge distinct primitives.
    fn intern(
        &mut self,
        canon: &CanonicalPrimitive,
        query: &QueryGraph,
        graph: &DynamicGraph,
    ) -> u32 {
        if let Some(chain) = self.by_hash.get(&canon.fingerprint()) {
            for &idx in chain {
                let entry = self.entries[idx as usize]
                    .as_ref()
                    .expect("hash chains only reference live entries");
                if entry.pattern.window() == query.window() && entry.canon.matches(canon) {
                    return idx;
                }
            }
        }
        let pattern = canon.pattern(query);
        let pattern_edges: Vec<QueryEdgeId> = pattern.edge_ids().collect();
        let constraints = CompiledConstraints::compile(&pattern, graph);
        let entry = Entry {
            canon: canon.clone(),
            pattern,
            pattern_edges,
            constraints,
            subscribers: Vec::new(),
            active_subs: 0,
            candidates: 0,
            results: Vec::new(),
            last_touched: 0,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Some(entry);
                i
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        };
        self.by_hash
            .entry(canon.fingerprint())
            .or_default()
            .push(idx);
        idx
    }

    /// Rebuilds the per-type anchor dispatch tables from the live entries'
    /// resolved constraints.
    fn rebuild_anchors(&mut self) {
        self.anchors.begin_rebuild();
        for (idx, entry) in self.entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            for &qe in &entry.pattern_edges {
                self.anchors
                    .add(entry.constraints.edge_type_filter(qe), idx as u32, qe);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::{Duration, EdgeEvent, Timestamp};
    use streamworks_query::{Planner, QueryGraphBuilder, SelectivityOrdered};

    fn pair_plan(name: &str, a1: &str, a2: &str) -> QueryPlan {
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex("k", "Keyword")
            .edge(a1, "mentions", "k")
            .edge(a2, "mentions", "k")
            .build()
            .unwrap();
        Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap()
    }

    #[test]
    fn isomorphic_leaves_intern_to_one_entry() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        // Two queries × two isomorphic single-edge leaves each: one entry,
        // four subscriptions.
        assert!(index.subscribe_plan(0, &pair_plan("q0", "a1", "a2"), &graph));
        assert!(index.subscribe_plan(1, &pair_plan("q1", "x", "y"), &graph));
        let m = index.metrics();
        assert_eq!(m.distinct_primitives, 1);
        assert_eq!(m.subscribed_primitives, 4);
        assert!(index.sharing_possible());

        // Last unsubscription frees the entry.
        index.unsubscribe_slot(0);
        assert_eq!(index.metrics().distinct_primitives, 1);
        index.unsubscribe_slot(1);
        let m = index.metrics();
        assert_eq!(m.distinct_primitives, 0);
        assert_eq!(m.subscribed_primitives, 0);
        assert!(!index.sharing_possible());
    }

    #[test]
    fn different_windows_do_not_share() {
        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        index.subscribe_plan(0, &pair_plan("q0", "a1", "a2"), &graph);
        let q = QueryGraphBuilder::new("q1")
            .window(Duration::from_secs(30))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .edge("a1", "mentions", "k")
            .edge("a2", "mentions", "k")
            .build()
            .unwrap();
        let plan = Planner::new()
            .plan_with(
                q,
                &SelectivityOrdered {
                    max_primitive_size: 1,
                },
            )
            .unwrap();
        index.subscribe_plan(1, &plan, &graph);
        // Same structure, different window: two distinct entries.
        assert_eq!(index.metrics().distinct_primitives, 2);
    }

    #[test]
    fn forced_fingerprint_collisions_stay_separate_entries() {
        // Adversarial case: two non-isomorphic primitives forced onto one
        // fingerprint must chain under the hash, never merge.
        let path = QueryGraphBuilder::new("p")
            .window(Duration::from_secs(60))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("b", "flow", "c")
            .build()
            .unwrap();
        let fan = QueryGraphBuilder::new("f")
            .window(Duration::from_secs(60))
            .vertex("a", "IP")
            .vertex("b", "IP")
            .vertex("c", "IP")
            .edge("a", "flow", "b")
            .edge("a", "flow", "c")
            .build()
            .unwrap();
        let edges: Vec<QueryEdgeId> = path.edge_ids().collect();
        let cp = CanonicalPrimitive::build(&path, &edges).unwrap();
        let mut cf = CanonicalPrimitive::build(&fan, &edges).unwrap();
        cf.force_fingerprint_for_tests(cp.fingerprint());

        let graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let e1 = index.intern(&cp, &path, &graph);
        let e2 = index.intern(&cf, &fan, &graph);
        assert_ne!(e1, e2, "collision must not merge non-isomorphic entries");
        assert_eq!(index.by_hash[&cp.fingerprint()].len(), 2);
        // Re-interning either finds its own entry.
        assert_eq!(index.intern(&cp, &path, &graph), e1);
        assert_eq!(index.intern(&cf, &fan, &graph), e2);
    }

    #[test]
    fn search_runs_once_and_fans_out_remapped_embeddings() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        let plan0 = pair_plan("q0", "a1", "a2");
        let plan1 = pair_plan("q1", "x", "y");
        index.subscribe_plan(0, &plan0, &graph);
        index.subscribe_plan(1, &plan1, &graph);

        let r = graph.ingest(&EdgeEvent::new(
            "art",
            "Article",
            "rust",
            "Keyword",
            "mentions",
            Timestamp::from_secs(1),
        ));
        let edge = graph.edge(r.edge).unwrap().clone();
        index.search_edge(&graph, &edge);

        let m = index.metrics();
        // One entry, two anchors (the two canonical... single-edge leaves
        // collapse to one canonical edge), searched once per anchor with 4
        // subscriptions active: 3 searches saved per search run.
        assert_eq!(m.shared_searches_run, 1);
        assert_eq!(m.searches_saved, 3);
        assert_eq!(m.shared_embeddings, 1);

        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        assert_eq!(deliveries.len(), 4, "one delivery per subscription");
        deliveries.sort_unstable();
        // Remap lands the embedding in each subscriber's own vertex space.
        let (results, sub) = index.delivery(&deliveries[0]);
        assert_eq!(results.len(), 1);
        let remapped = sub.remap(&results[0]);
        assert_eq!(remapped.edge_count(), 1);
        assert_eq!(remapped.binding.bound_count(), 2);
        assert_eq!(remapped.earliest, Timestamp::from_secs(1));
        // The two leaves of q0 bind different query edges after remap.
        let (_, sub_a) = index.delivery(&deliveries[0]);
        let (_, sub_b) = index.delivery(&deliveries[1]);
        assert_eq!(sub_a.slot, 0);
        assert_eq!(sub_b.slot, 0);
        let ra = sub_a.remap(&results[0]);
        let rb = sub_b.remap(&results[0]);
        assert_ne!(ra.edges[0].0, rb.edges[0].0);
    }

    /// Default (2-edge-primitive) decomposition: the pair query collapses to
    /// one leaf whose search genuinely walks the neighbourhood, so candidate
    /// attribution is observable.
    fn pair_plan_wide(name: &str, a1: &str, a2: &str) -> QueryPlan {
        let q = QueryGraphBuilder::new(name)
            .window(Duration::from_hours(1))
            .vertex(a1, "Article")
            .vertex(a2, "Article")
            .vertex("k", "Keyword")
            .edge(a1, "mentions", "k")
            .edge(a2, "mentions", "k")
            .build()
            .unwrap();
        Planner::new().plan(q).unwrap()
    }

    #[test]
    fn candidate_attribution_counts_each_subscription_once() {
        // One query whose two leaves intern to the SAME entry (two isomorphic
        // article wedges): per_slot lists the entry twice, and attribution
        // must still charge each subscription exactly once per search.
        use streamworks_query::ManualDecomposition;
        let wedge_pair = QueryGraphBuilder::new("wedges")
            .window(Duration::from_hours(1))
            .vertex("a1", "Article")
            .vertex("a2", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a1", "mentions", "k") // 0
            .edge("a2", "mentions", "k") // 1
            .edge("a1", "located", "l") // 2
            .edge("a2", "located", "l") // 3
            .build()
            .unwrap();
        let plan = Planner::new()
            .plan_with(
                wedge_pair,
                &ManualDecomposition::new(vec![
                    vec![QueryEdgeId(0), QueryEdgeId(2)],
                    vec![QueryEdgeId(1), QueryEdgeId(3)],
                ]),
            )
            .unwrap();
        // Reference: a single-wedge query — the same canonical primitive,
        // subscribed once.
        let single = QueryGraphBuilder::new("wedge")
            .window(Duration::from_hours(1))
            .vertex("a", "Article")
            .vertex("k", "Keyword")
            .vertex("l", "Location")
            .edge("a", "mentions", "k")
            .edge("a", "located", "l")
            .build()
            .unwrap();
        let single_plan = Planner::new().plan(single).unwrap();

        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        assert!(index.subscribe_plan(0, &plan, &graph));
        assert!(index.subscribe_plan(1, &single_plan, &graph));
        assert_eq!(index.metrics().distinct_primitives, 1);
        assert_eq!(index.metrics().subscribed_primitives, 3);

        for (i, (dst, dtype, etype)) in [
            ("rust", "Keyword", "mentions"),
            ("paris", "Location", "located"),
            ("go", "Keyword", "mentions"),
        ]
        .iter()
        .enumerate()
        {
            let r = graph.ingest(&EdgeEvent::new(
                "art",
                "Article",
                *dst,
                *dtype,
                *etype,
                Timestamp::from_secs(i as i64),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(&graph, &edge);
        }
        let pair_share = index.slot_candidates(0);
        let single_share = index.slot_candidates(1);
        assert!(single_share > 0, "the wedge search walks the neighbourhood");
        assert_eq!(
            pair_share,
            2 * single_share,
            "two subscriptions of one entry are charged exactly twice the \
             single subscription's share, not four times"
        );
    }

    #[test]
    fn paused_subscribers_drop_out_of_search_and_fanout() {
        let mut graph = DynamicGraph::unbounded();
        let mut index = SharedPrimitiveIndex::default();
        index.subscribe_plan(0, &pair_plan_wide("q0", "a1", "a2"), &graph);
        index.subscribe_plan(1, &pair_plan_wide("q1", "x", "y"), &graph);
        index.set_active(0, false);

        let feed = |graph: &mut DynamicGraph,
                    index: &mut SharedPrimitiveIndex,
                    src: &str,
                    dst: &str,
                    t: i64| {
            let r = graph.ingest(&EdgeEvent::new(
                src,
                "Article",
                dst,
                "Keyword",
                "mentions",
                Timestamp::from_secs(t),
            ));
            let edge = graph.edge(r.edge).unwrap().clone();
            index.search_edge(graph, &edge);
        };
        feed(&mut graph, &mut index, "art1", "rust", 1);
        let mut deliveries = Vec::new();
        index.collect_deliveries(&mut deliveries);
        feed(&mut graph, &mut index, "art2", "rust", 2);
        index.collect_deliveries(&mut deliveries);
        assert!(
            !deliveries.is_empty(),
            "the second mention completes a pair"
        );
        assert!(
            deliveries.iter().all(|d| d.0 == 1),
            "only the active subscriber receives: {deliveries:?}"
        );
        // Candidate attribution: the paused slot accrues nothing, the active
        // one is charged the search's neighbourhood walk.
        assert_eq!(index.slot_candidates(0), 0);
        assert!(index.slot_candidates(1) > 0);

        // With every subscriber paused the entry is not searched at all.
        index.set_active(1, false);
        let before = index.metrics().shared_searches_run;
        feed(&mut graph, &mut index, "art3", "go", 3);
        assert_eq!(index.metrics().shared_searches_run, before);
        assert!(!index.sharing_possible());

        // Resuming re-opens the attribution interval without re-charging
        // searches run while paused.
        index.set_active(0, true);
        let paused_share = index.slot_candidates(0);
        assert_eq!(paused_share, 0);
        feed(&mut graph, &mut index, "art4", "rust", 4);
        assert!(index.slot_candidates(0) > 0);
    }
}
