//! Bindings and partial matches.
//!
//! A [`PartialMatch`] is the runtime object tracked in the SJ-Tree's match
//! collections (paper property 3): an injective assignment of *some* query
//! vertices to data vertices together with the data edges realising the query
//! edges covered so far, plus the earliest/latest timestamps needed to enforce
//! the query window `τ(g) < tW`.
//!
//! Both structures are tuned for the matcher hot path, which clones a partial
//! match per candidate extension and per successful join:
//!
//! * [`Binding`] keeps its slots in a [`SmallVec`] (inline up to 8 query
//!   vertices — larger queries spill transparently), a `mask` bitset of bound
//!   query vertices, and a `bloom` filter over bound *data* vertex ids. The
//!   bloom makes the injectivity check in [`Binding::bind`] /
//!   [`Binding::merge`] O(1) in the common no-collision case instead of an
//!   O(k) scan per bind (O(k²) per merge).
//! * [`PartialMatch::edges`] stores its `(query edge, data edge)` pairs inline
//!   (up to 6), so cloning a match during local search allocates nothing for
//!   typical query sizes.

use serde::{Deserialize, Serialize};
use smallvec::SmallVec;
use streamworks_graph::{Duration, EdgeId, Timestamp, VertexId};
use streamworks_query::{QueryEdgeId, QueryVertexId};

/// Inline capacity of a binding: queries with at most this many vertices
/// never heap-allocate their slot table.
pub const INLINE_VERTICES: usize = 8;

/// Inline capacity of a partial match's edge list.
pub const INLINE_EDGES: usize = 6;

#[inline]
fn bloom_bit(dv: VertexId) -> u64 {
    1u64 << (dv.0 & 63)
}

/// Slot sentinel for "unbound" (vertex ids are dense from zero, so
/// `u32::MAX` can never name a real vertex). Packing slots as bare `u32`s
/// halves the binding's size versus `Option<VertexId>`, and the binding is
/// the most-copied structure on the hot path.
const UNBOUND: u32 = u32::MAX;

/// A partial assignment of query vertices to data vertices.
///
/// Stored as a dense slot table indexed by query-vertex id (query graphs are
/// small), which makes projection and merging cheap. `mask` mirrors which
/// slots are bound (bit `i` ⇔ slot `i`, for the first 64 vertices); `bloom`
/// over-approximates the set of bound data vertices for fast injectivity
/// rejection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binding {
    slots: SmallVec<u32, INLINE_VERTICES>,
    mask: u64,
    bloom: u64,
}

impl Binding {
    /// An empty binding for a query with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        let mut slots = SmallVec::new();
        for _ in 0..vertex_count {
            slots.push(UNBOUND);
        }
        Binding {
            slots,
            mask: 0,
            bloom: 0,
        }
    }

    /// The data vertex bound to `qv`, if any.
    #[inline]
    pub fn get(&self, qv: QueryVertexId) -> Option<VertexId> {
        match self.slots.as_slice().get(qv.0) {
            Some(&raw) if raw != UNBOUND => Some(VertexId(raw)),
            _ => None,
        }
    }

    /// True if `dv` is the image of some bound query vertex.
    #[inline]
    fn maps_to(&self, dv: VertexId) -> bool {
        if self.bloom & bloom_bit(dv) == 0 {
            return false; // definite miss: dv never bound
        }
        self.slots.iter().any(|s| *s == dv.0)
    }

    /// Binds `qv` to `dv`. Returns `false` (and leaves the binding unchanged)
    /// if `qv` is already bound to a different vertex or if `dv` is already
    /// the image of a different query vertex (injectivity).
    #[inline]
    pub fn bind(&mut self, qv: QueryVertexId, dv: VertexId) -> bool {
        debug_assert_ne!(dv.0, UNBOUND, "vertex id reserved as the unbound sentinel");
        let existing = self.slots[qv.0];
        if existing != UNBOUND {
            return existing == dv.0;
        }
        if self.maps_to(dv) {
            return false;
        }
        self.slots[qv.0] = dv.0;
        if qv.0 < 64 {
            self.mask |= 1 << qv.0;
        }
        self.bloom |= bloom_bit(dv);
        true
    }

    /// Number of bound query vertices.
    #[inline]
    pub fn bound_count(&self) -> usize {
        if self.slots.len() <= 64 {
            self.mask.count_ones() as usize
        } else {
            self.slots.iter().filter(|s| **s != UNBOUND).count()
        }
    }

    /// Iterates `(query vertex, data vertex)` pairs in query-vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryVertexId, VertexId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != UNBOUND)
            .map(|(i, &s)| (QueryVertexId(i), VertexId(s)))
    }

    /// Projects the binding onto a list of query vertices. Returns `None` if
    /// any of them is unbound.
    pub fn project(&self, vertices: &[QueryVertexId]) -> Option<Vec<VertexId>> {
        vertices.iter().map(|&v| self.get(v)).collect()
    }

    /// Projects the binding onto `vertices`, appending to `out` (which is
    /// *not* cleared). Returns `false` — leaving `out` partially filled — if
    /// any vertex is unbound. The allocation-free twin of [`Self::project`].
    #[inline]
    pub fn project_into<const N: usize>(
        &self,
        vertices: &[QueryVertexId],
        out: &mut SmallVec<VertexId, N>,
    ) -> bool {
        for &v in vertices {
            match self.get(v) {
                Some(dv) => out.push(dv),
                None => return false,
            }
        }
        true
    }

    /// True if the slot table has outgrown its inline capacity
    /// ([`INLINE_VERTICES`]) and lives on the heap.
    #[inline]
    pub fn spilled(&self) -> bool {
        !self.slots.is_inline()
    }

    /// Merges `other` into a copy of `self`. Returns `None` on any conflict:
    /// a query vertex bound to different data vertices, or two query vertices
    /// bound to the same data vertex (injectivity across the merged binding).
    pub fn merge(&self, other: &Binding) -> Option<Binding> {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut merged = self.clone();
        if other.slots.len() <= 64 {
            // Walk only the bound slots of `other` via its mask.
            let mut remaining = other.mask;
            while remaining != 0 {
                let i = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let dv = other.slots[i];
                debug_assert_ne!(dv, UNBOUND, "mask bit set for bound slot");
                if !merged.merge_slot(i, VertexId(dv)) {
                    return None;
                }
            }
        } else {
            for (i, &slot) in other.slots.iter().enumerate() {
                if slot != UNBOUND && !merged.merge_slot(i, VertexId(slot)) {
                    return None;
                }
            }
        }
        Some(merged)
    }

    /// Binds slot `i` to `dv` during a merge; `false` on conflict.
    #[inline]
    fn merge_slot(&mut self, i: usize, dv: VertexId) -> bool {
        let existing = self.slots[i];
        if existing != UNBOUND {
            return existing == dv.0;
        }
        if self.maps_to(dv) {
            return false; // injectivity: dv already used elsewhere
        }
        self.slots[i] = dv.0;
        if i < 64 {
            self.mask |= 1 << i;
        }
        self.bloom |= bloom_bit(dv);
        true
    }
}

/// A partial (or complete) match tracked at one SJ-Tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialMatch {
    /// The vertex binding.
    pub binding: Binding,
    /// The data edge realising each covered query edge, sorted by query edge id.
    pub edges: SmallVec<(QueryEdgeId, EdgeId), INLINE_EDGES>,
    /// Earliest data-edge timestamp in the match.
    pub earliest: Timestamp,
    /// Latest data-edge timestamp in the match.
    pub latest: Timestamp,
}

impl PartialMatch {
    /// Creates a match covering a single data edge.
    pub fn seed(vertex_count: usize, qe: QueryEdgeId, edge: EdgeId, ts: Timestamp) -> Self {
        let mut edges = SmallVec::new();
        edges.push((qe, edge));
        PartialMatch {
            binding: Binding::new(vertex_count),
            edges,
            earliest: ts,
            latest: ts,
        }
    }

    /// Number of query edges covered.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if either inline hot-path structure (the binding's slot table or
    /// the edge list) has spilled to the heap — i.e. the query exceeds
    /// [`INLINE_VERTICES`] vertices or [`INLINE_EDGES`] edges. Surfaced per
    /// query as [`crate::QueryMetrics::binding_spills`].
    #[inline]
    pub fn spilled(&self) -> bool {
        self.binding.spilled() || !self.edges.is_inline()
    }

    /// The time span `τ(g)` of the match.
    #[inline]
    pub fn span(&self) -> Duration {
        self.latest - self.earliest
    }

    /// True if the span is strictly below the window (paper: `τ(g) < tW`).
    #[inline]
    pub fn within_window(&self, window: Duration) -> bool {
        self.span().as_micros() < window.as_micros()
    }

    /// The data edge bound to a query edge, if covered.
    pub fn data_edge(&self, qe: QueryEdgeId) -> Option<EdgeId> {
        self.edges.iter().find(|(q, _)| *q == qe).map(|(_, e)| *e)
    }

    /// True if `edge` is one of the data edges of this match.
    #[inline]
    pub fn uses_data_edge(&self, edge: EdgeId) -> bool {
        self.edges.iter().any(|(_, e)| *e == edge)
    }

    /// Records that `qe` is realised by `edge` with timestamp `ts`, keeping the
    /// edge list sorted. Returns `false` if `qe` is already covered or `edge`
    /// is already used for another query edge.
    pub fn add_edge(&mut self, qe: QueryEdgeId, edge: EdgeId, ts: Timestamp) -> bool {
        if self.edges.iter().any(|(q, e)| *q == qe || *e == edge) {
            return false;
        }
        let pos = self.edges.as_slice().partition_point(|(q, _)| *q < qe);
        self.edges.insert(pos, (qe, edge));
        if ts < self.earliest {
            self.earliest = ts;
        }
        if ts > self.latest {
            self.latest = ts;
        }
        true
    }

    /// Attempts to merge two matches covering disjoint query-edge sets into one.
    ///
    /// Fails (returns `None`) if the bindings conflict, if the query-edge sets
    /// overlap, or if the same data edge realises two different query edges.
    pub fn merge(&self, other: &PartialMatch) -> Option<PartialMatch> {
        let binding = self.binding.merge(&other.binding)?;
        // Merge sorted edge lists, rejecting duplicates.
        let mut edges: SmallVec<(QueryEdgeId, EdgeId), INLINE_EDGES> = SmallVec::new();
        let (a, b) = (self.edges.as_slice(), other.edges.as_slice());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (qa, ea) = a[i];
            let (qb, eb) = b[j];
            if qa == qb {
                return None; // overlapping query edges
            }
            if qa < qb {
                edges.push((qa, ea));
                i += 1;
            } else {
                edges.push((qb, eb));
                j += 1;
            }
        }
        edges.extend_from_slice(&a[i..]);
        edges.extend_from_slice(&b[j..]);
        // A data edge may realise only one query edge. The list is short
        // (bounded by the query size), so a pairwise scan beats sorting a
        // scratch vector.
        for (i, (_, e1)) in edges.iter().enumerate() {
            for (_, e2) in &edges[i + 1..] {
                if e1 == e2 {
                    return None;
                }
            }
        }
        Some(PartialMatch {
            binding,
            edges,
            earliest: self.earliest.min(other.earliest),
            latest: self.latest.max(other.latest),
        })
    }

    /// A stable 64-bit signature of the (query edge → data edge) assignment,
    /// used for deduplication checks in tests and reports.
    pub fn signature(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = streamworks_graph::hash::FxHasher::default();
        for (q, e) in &self.edges {
            q.0.hash(&mut hasher);
            e.0.hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn bind_enforces_consistency_and_injectivity() {
        let mut b = Binding::new(3);
        assert!(b.bind(QueryVertexId(0), v(10)));
        // Re-binding the same pair is fine.
        assert!(b.bind(QueryVertexId(0), v(10)));
        // Conflicting rebind fails.
        assert!(!b.bind(QueryVertexId(0), v(11)));
        // Injectivity: another query vertex cannot map to v10.
        assert!(!b.bind(QueryVertexId(1), v(10)));
        assert!(b.bind(QueryVertexId(1), v(11)));
        assert_eq!(b.bound_count(), 2);
        assert_eq!(b.get(QueryVertexId(2)), None);
    }

    #[test]
    fn bind_rejects_bloom_collisions_correctly() {
        // v(1) and v(65) share a bloom bit (65 & 63 == 1): the filter must
        // fall back to the exact scan and still allow the non-conflicting bind.
        let mut b = Binding::new(3);
        assert!(b.bind(QueryVertexId(0), v(1)));
        assert!(
            b.bind(QueryVertexId(1), v(65)),
            "bloom collision is not a conflict"
        );
        // A genuine duplicate is still rejected.
        assert!(!b.bind(QueryVertexId(2), v(1)));
        assert!(!b.bind(QueryVertexId(2), v(65)));
    }

    #[test]
    fn projection_requires_all_vertices_bound() {
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(0), v(5));
        b.bind(QueryVertexId(2), v(7));
        assert_eq!(
            b.project(&[QueryVertexId(0), QueryVertexId(2)]),
            Some(vec![v(5), v(7)])
        );
        assert_eq!(b.project(&[QueryVertexId(1)]), None);
        assert_eq!(b.project(&[]), Some(vec![]));
    }

    #[test]
    fn project_into_fills_without_allocating() {
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(0), v(5));
        b.bind(QueryVertexId(2), v(7));
        let mut key: SmallVec<VertexId, 4> = SmallVec::new();
        assert!(b.project_into(&[QueryVertexId(2), QueryVertexId(0)], &mut key));
        assert!(key.is_inline());
        assert_eq!(key.as_slice(), &[v(7), v(5)]);
        key.clear();
        assert!(!b.project_into(&[QueryVertexId(1)], &mut key));
    }

    #[test]
    fn merge_bindings_detects_conflicts() {
        let mut a = Binding::new(3);
        a.bind(QueryVertexId(0), v(1));
        a.bind(QueryVertexId(1), v(2));
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(1), v(2));
        b.bind(QueryVertexId(2), v(3));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.bound_count(), 3);

        // Conflict: same query vertex, different data vertices.
        let mut c = Binding::new(3);
        c.bind(QueryVertexId(0), v(9));
        assert!(a.merge(&c).is_none());

        // Injectivity violation: different query vertices, same data vertex.
        let mut d = Binding::new(3);
        d.bind(QueryVertexId(2), v(1));
        assert!(a.merge(&d).is_none());
    }

    #[test]
    fn merge_handles_bloom_aliased_vertices() {
        // v(2) and v(66) alias in the bloom but are distinct vertices; the
        // merge must accept them and still reject a true duplicate.
        let mut a = Binding::new(3);
        a.bind(QueryVertexId(0), v(2));
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(1), v(66));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.bound_count(), 2);

        let mut c = Binding::new(3);
        c.bind(QueryVertexId(2), v(2));
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn merge_walks_masks_beyond_inline_capacity() {
        // Exercise the spilled-slot path (> INLINE_VERTICES vertices).
        let n = INLINE_VERTICES + 4;
        let mut a = Binding::new(n);
        a.bind(QueryVertexId(0), v(100));
        let mut b = Binding::new(n);
        b.bind(QueryVertexId(n - 1), v(200));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.get(QueryVertexId(0)), Some(v(100)));
        assert_eq!(merged.get(QueryVertexId(n - 1)), Some(v(200)));
        assert_eq!(merged.bound_count(), 2);
    }

    #[test]
    fn partial_match_window_and_span() {
        let mut m = PartialMatch::seed(3, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(100));
        assert!(m.add_edge(QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(130)));
        assert_eq!(m.span(), Duration::from_secs(30));
        assert!(m.within_window(Duration::from_secs(31)));
        assert!(!m.within_window(Duration::from_secs(30)));
        assert!(!m.within_window(Duration::from_secs(10)));
    }

    #[test]
    fn add_edge_rejects_duplicates() {
        let mut m = PartialMatch::seed(3, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(1));
        assert!(!m.add_edge(QueryEdgeId(0), EdgeId(5), Timestamp::from_secs(2)));
        assert!(!m.add_edge(QueryEdgeId(1), EdgeId(1), Timestamp::from_secs(2)));
        assert!(m.add_edge(QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(2)));
        assert_eq!(m.edge_count(), 2);
        assert_eq!(m.data_edge(QueryEdgeId(1)), Some(EdgeId(2)));
        assert!(m.uses_data_edge(EdgeId(1)));
        assert!(!m.uses_data_edge(EdgeId(9)));
    }

    #[test]
    fn merge_matches_combines_edges_and_times() {
        let mut a = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(10));
        a.binding.bind(QueryVertexId(0), v(100));
        a.binding.bind(QueryVertexId(1), v(101));
        let mut b = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(20));
        b.binding.bind(QueryVertexId(1), v(101));
        b.binding.bind(QueryVertexId(2), v(102));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.edge_count(), 2);
        assert_eq!(m.earliest, Timestamp::from_secs(10));
        assert_eq!(m.latest, Timestamp::from_secs(20));
        assert_eq!(m.binding.bound_count(), 3);
    }

    #[test]
    fn merge_matches_rejects_overlap_and_shared_data_edges() {
        let a = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(10));
        let b = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(2), Timestamp::from_secs(20));
        assert!(a.merge(&b).is_none(), "overlapping query edges");
        let c = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(1), Timestamp::from_secs(20));
        assert!(a.merge(&c).is_none(), "same data edge for two query edges");
    }

    #[test]
    fn signatures_distinguish_different_assignments() {
        let a = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(1));
        let b = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(2), Timestamp::from_secs(1));
        let a2 = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(9));
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), a2.signature());
    }

    #[test]
    fn hot_path_structures_stay_inline_for_small_queries() {
        // The zero-allocation guarantee of the hot path: bindings and edge
        // lists of paper-sized queries never touch the heap.
        let mut m = PartialMatch::seed(
            INLINE_VERTICES,
            QueryEdgeId(0),
            EdgeId(1),
            Timestamp::from_secs(1),
        );
        for i in 0..INLINE_VERTICES {
            m.binding.bind(QueryVertexId(i), v(1000 + i as u32));
        }
        for q in 1..INLINE_EDGES {
            assert!(m.add_edge(
                QueryEdgeId(q),
                EdgeId(1 + q as u64),
                Timestamp::from_secs(1)
            ));
        }
        assert!(m.edges.is_inline());
        assert!(!m.spilled());
    }

    #[test]
    fn oversized_queries_report_their_spill() {
        // One vertex over the inline capacity: the slot table heap-allocates.
        let big_binding = PartialMatch::seed(
            INLINE_VERTICES + 1,
            QueryEdgeId(0),
            EdgeId(1),
            Timestamp::from_secs(1),
        );
        assert!(big_binding.binding.spilled());
        assert!(big_binding.spilled());

        // One edge over the inline capacity: the edge list heap-allocates.
        let mut big_edges =
            PartialMatch::seed(4, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(1));
        for q in 1..=INLINE_EDGES {
            big_edges.add_edge(
                QueryEdgeId(q),
                EdgeId(1 + q as u64),
                Timestamp::from_secs(1),
            );
        }
        assert!(!big_edges.binding.spilled());
        assert!(big_edges.spilled());
    }
}
