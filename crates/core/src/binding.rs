//! Bindings and partial matches.
//!
//! A [`PartialMatch`] is the runtime object tracked in the SJ-Tree's match
//! collections (paper property 3): an injective assignment of *some* query
//! vertices to data vertices together with the data edges realising the query
//! edges covered so far, plus the earliest/latest timestamps needed to enforce
//! the query window `τ(g) < tW`.

use serde::{Deserialize, Serialize};
use streamworks_graph::{Duration, EdgeId, Timestamp, VertexId};
use streamworks_query::{QueryEdgeId, QueryVertexId};

/// A partial assignment of query vertices to data vertices.
///
/// Stored as a dense vector indexed by query-vertex id (query graphs are
/// small), which makes projection and merging cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binding {
    slots: Vec<Option<VertexId>>,
}

impl Binding {
    /// An empty binding for a query with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        Binding {
            slots: vec![None; vertex_count],
        }
    }

    /// The data vertex bound to `qv`, if any.
    pub fn get(&self, qv: QueryVertexId) -> Option<VertexId> {
        self.slots.get(qv.0).copied().flatten()
    }

    /// Binds `qv` to `dv`. Returns `false` (and leaves the binding unchanged)
    /// if `qv` is already bound to a different vertex or if `dv` is already
    /// the image of a different query vertex (injectivity).
    pub fn bind(&mut self, qv: QueryVertexId, dv: VertexId) -> bool {
        match self.slots[qv.0] {
            Some(existing) => existing == dv,
            None => {
                if self.slots.iter().any(|s| *s == Some(dv)) {
                    return false;
                }
                self.slots[qv.0] = dv.into();
                true
            }
        }
    }

    /// Number of bound query vertices.
    pub fn bound_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates `(query vertex, data vertex)` pairs in query-vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryVertexId, VertexId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|v| (QueryVertexId(i), v)))
    }

    /// Projects the binding onto a list of query vertices. Returns `None` if
    /// any of them is unbound.
    pub fn project(&self, vertices: &[QueryVertexId]) -> Option<Vec<VertexId>> {
        vertices.iter().map(|&v| self.get(v)).collect()
    }

    /// Merges `other` into a copy of `self`. Returns `None` on any conflict:
    /// a query vertex bound to different data vertices, or two query vertices
    /// bound to the same data vertex (injectivity across the merged binding).
    pub fn merge(&self, other: &Binding) -> Option<Binding> {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut merged = self.clone();
        for (i, slot) in other.slots.iter().enumerate() {
            if let Some(dv) = slot {
                match merged.slots[i] {
                    Some(existing) if existing != *dv => return None,
                    Some(_) => {}
                    None => {
                        if merged
                            .slots
                            .iter()
                            .enumerate()
                            .any(|(j, s)| j != i && *s == Some(*dv))
                        {
                            return None;
                        }
                        merged.slots[i] = Some(*dv);
                    }
                }
            }
        }
        Some(merged)
    }
}

/// A partial (or complete) match tracked at one SJ-Tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialMatch {
    /// The vertex binding.
    pub binding: Binding,
    /// The data edge realising each covered query edge, sorted by query edge id.
    pub edges: Vec<(QueryEdgeId, EdgeId)>,
    /// Earliest data-edge timestamp in the match.
    pub earliest: Timestamp,
    /// Latest data-edge timestamp in the match.
    pub latest: Timestamp,
}

impl PartialMatch {
    /// Creates a match covering a single data edge.
    pub fn seed(
        vertex_count: usize,
        qe: QueryEdgeId,
        edge: EdgeId,
        ts: Timestamp,
    ) -> Self {
        PartialMatch {
            binding: Binding::new(vertex_count),
            edges: vec![(qe, edge)],
            earliest: ts,
            latest: ts,
        }
    }

    /// Number of query edges covered.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The time span `τ(g)` of the match.
    pub fn span(&self) -> Duration {
        self.latest - self.earliest
    }

    /// True if the span is strictly below the window (paper: `τ(g) < tW`).
    pub fn within_window(&self, window: Duration) -> bool {
        self.span().as_micros() < window.as_micros()
    }

    /// The data edge bound to a query edge, if covered.
    pub fn data_edge(&self, qe: QueryEdgeId) -> Option<EdgeId> {
        self.edges
            .iter()
            .find(|(q, _)| *q == qe)
            .map(|(_, e)| *e)
    }

    /// True if `edge` is one of the data edges of this match.
    pub fn uses_data_edge(&self, edge: EdgeId) -> bool {
        self.edges.iter().any(|(_, e)| *e == edge)
    }

    /// Records that `qe` is realised by `edge` with timestamp `ts`, keeping the
    /// edge list sorted. Returns `false` if `qe` is already covered or `edge`
    /// is already used for another query edge.
    pub fn add_edge(&mut self, qe: QueryEdgeId, edge: EdgeId, ts: Timestamp) -> bool {
        if self.edges.iter().any(|(q, e)| *q == qe || *e == edge) {
            return false;
        }
        let pos = self.edges.partition_point(|(q, _)| *q < qe);
        self.edges.insert(pos, (qe, edge));
        if ts < self.earliest {
            self.earliest = ts;
        }
        if ts > self.latest {
            self.latest = ts;
        }
        true
    }

    /// Attempts to merge two matches covering disjoint query-edge sets into one.
    ///
    /// Fails (returns `None`) if the bindings conflict, if the query-edge sets
    /// overlap, or if the same data edge realises two different query edges.
    pub fn merge(&self, other: &PartialMatch) -> Option<PartialMatch> {
        let binding = self.binding.merge(&other.binding)?;
        // Merge sorted edge lists, rejecting duplicates.
        let mut edges = Vec::with_capacity(self.edges.len() + other.edges.len());
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() && j < other.edges.len() {
            let (qa, ea) = self.edges[i];
            let (qb, eb) = other.edges[j];
            if qa == qb {
                return None; // overlapping query edges
            }
            if qa < qb {
                edges.push((qa, ea));
                i += 1;
            } else {
                edges.push((qb, eb));
                j += 1;
            }
        }
        edges.extend_from_slice(&self.edges[i..]);
        edges.extend_from_slice(&other.edges[j..]);
        // A data edge may realise only one query edge.
        let mut data_edges: Vec<EdgeId> = edges.iter().map(|(_, e)| *e).collect();
        data_edges.sort_unstable();
        if data_edges.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(PartialMatch {
            binding,
            edges,
            earliest: self.earliest.min(other.earliest),
            latest: self.latest.max(other.latest),
        })
    }

    /// A stable 64-bit signature of the (query edge → data edge) assignment,
    /// used for deduplication checks in tests and reports.
    pub fn signature(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = streamworks_graph::hash::FxHasher::default();
        for (q, e) in &self.edges {
            q.0.hash(&mut hasher);
            e.0.hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn bind_enforces_consistency_and_injectivity() {
        let mut b = Binding::new(3);
        assert!(b.bind(QueryVertexId(0), v(10)));
        // Re-binding the same pair is fine.
        assert!(b.bind(QueryVertexId(0), v(10)));
        // Conflicting rebind fails.
        assert!(!b.bind(QueryVertexId(0), v(11)));
        // Injectivity: another query vertex cannot map to v10.
        assert!(!b.bind(QueryVertexId(1), v(10)));
        assert!(b.bind(QueryVertexId(1), v(11)));
        assert_eq!(b.bound_count(), 2);
        assert_eq!(b.get(QueryVertexId(2)), None);
    }

    #[test]
    fn projection_requires_all_vertices_bound() {
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(0), v(5));
        b.bind(QueryVertexId(2), v(7));
        assert_eq!(
            b.project(&[QueryVertexId(0), QueryVertexId(2)]),
            Some(vec![v(5), v(7)])
        );
        assert_eq!(b.project(&[QueryVertexId(1)]), None);
        assert_eq!(b.project(&[]), Some(vec![]));
    }

    #[test]
    fn merge_bindings_detects_conflicts() {
        let mut a = Binding::new(3);
        a.bind(QueryVertexId(0), v(1));
        a.bind(QueryVertexId(1), v(2));
        let mut b = Binding::new(3);
        b.bind(QueryVertexId(1), v(2));
        b.bind(QueryVertexId(2), v(3));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.bound_count(), 3);

        // Conflict: same query vertex, different data vertices.
        let mut c = Binding::new(3);
        c.bind(QueryVertexId(0), v(9));
        assert!(a.merge(&c).is_none());

        // Injectivity violation: different query vertices, same data vertex.
        let mut d = Binding::new(3);
        d.bind(QueryVertexId(2), v(1));
        assert!(a.merge(&d).is_none());
    }

    #[test]
    fn partial_match_window_and_span() {
        let mut m = PartialMatch::seed(3, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(100));
        assert!(m.add_edge(QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(130)));
        assert_eq!(m.span(), Duration::from_secs(30));
        assert!(m.within_window(Duration::from_secs(31)));
        assert!(!m.within_window(Duration::from_secs(30)));
        assert!(!m.within_window(Duration::from_secs(10)));
    }

    #[test]
    fn add_edge_rejects_duplicates() {
        let mut m = PartialMatch::seed(3, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(1));
        assert!(!m.add_edge(QueryEdgeId(0), EdgeId(5), Timestamp::from_secs(2)));
        assert!(!m.add_edge(QueryEdgeId(1), EdgeId(1), Timestamp::from_secs(2)));
        assert!(m.add_edge(QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(2)));
        assert_eq!(m.edge_count(), 2);
        assert_eq!(m.data_edge(QueryEdgeId(1)), Some(EdgeId(2)));
        assert!(m.uses_data_edge(EdgeId(1)));
        assert!(!m.uses_data_edge(EdgeId(9)));
    }

    #[test]
    fn merge_matches_combines_edges_and_times() {
        let mut a = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(10));
        a.binding.bind(QueryVertexId(0), v(100));
        a.binding.bind(QueryVertexId(1), v(101));
        let mut b = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(2), Timestamp::from_secs(20));
        b.binding.bind(QueryVertexId(1), v(101));
        b.binding.bind(QueryVertexId(2), v(102));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.edge_count(), 2);
        assert_eq!(m.earliest, Timestamp::from_secs(10));
        assert_eq!(m.latest, Timestamp::from_secs(20));
        assert_eq!(m.binding.bound_count(), 3);
    }

    #[test]
    fn merge_matches_rejects_overlap_and_shared_data_edges() {
        let a = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(10));
        let b = PartialMatch::seed(4, QueryEdgeId(0), EdgeId(2), Timestamp::from_secs(20));
        assert!(a.merge(&b).is_none(), "overlapping query edges");
        let c = PartialMatch::seed(4, QueryEdgeId(1), EdgeId(1), Timestamp::from_secs(20));
        assert!(a.merge(&c).is_none(), "same data edge for two query edges");
    }

    #[test]
    fn signatures_distinguish_different_assignments() {
        let a = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(1));
        let b = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(2), Timestamp::from_secs(1));
        let a2 = PartialMatch::seed(2, QueryEdgeId(0), EdgeId(1), Timestamp::from_secs(9));
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), a2.signature());
    }
}
