//! Schema-gated per-type anchor dispatch, shared by every local-search front
//! end.
//!
//! Both the per-query [`SjTreeMatcher`](crate::SjTreeMatcher) and the
//! cross-query `SharedPrimitiveIndex` answer the same question on every
//! incoming edge: *which (owner, anchor query edge) pairs could this edge
//! realise?* The answer is a hash lookup on the edge's resolved type plus the
//! anchors whose query edge carries no type constraint — and it has to be
//! recomputed whenever the graph interns a new type name (constraints resolve
//! against the live schema) or the owning pattern set changes.
//!
//! [`AnchorIndex`] owns that dispatch table, the schema-version gate, the
//! dirty flag, and the per-event scratch buffer, generically over the owner
//! key `K` (an SJ-Tree leaf id for the matcher, an entry index for the shared
//! index). ROADMAP groundwork: subtree sharing will add a third front end,
//! which now costs a type parameter instead of a third copy of this code.

use streamworks_graph::hash::FxHashMap;
use streamworks_graph::TypeId;
use streamworks_query::QueryEdgeId;

/// The per-type anchor dispatch table of one local-search front end.
///
/// `K` identifies the owner of an anchor (leaf, entry index, ...). The table
/// is rebuilt lazily: callers mark it dirty on membership changes, check
/// [`Self::schema_changed`] per event (refreshing their compiled constraints
/// when it fires), and rebuild through [`Self::begin_rebuild`] + [`Self::add`]
/// when [`Self::is_dirty`] reports stale tables.
#[derive(Debug)]
pub(crate) struct AnchorIndex<K> {
    /// For each resolved data edge type, the `(owner, anchor query edge)`
    /// pairs a new edge of that type could realise.
    by_type: FxHashMap<TypeId, Vec<(K, QueryEdgeId)>>,
    /// Anchors whose query edge has no type constraint (probed for every
    /// edge).
    any_type: Vec<(K, QueryEdgeId)>,
    /// Graph schema version the tables were resolved against.
    seen_schema: u64,
    /// Tables stale (membership or schema changed since the last rebuild).
    dirty: bool,
    /// Per-event scratch list, recycled so the steady-state path performs no
    /// transient allocations once warm.
    scratch: Vec<(K, QueryEdgeId)>,
}

impl<K> Default for AnchorIndex<K> {
    fn default() -> Self {
        AnchorIndex {
            by_type: FxHashMap::default(),
            any_type: Vec::new(),
            seen_schema: 0,
            dirty: false,
            scratch: Vec::new(),
        }
    }
}

impl<K: Copy> AnchorIndex<K> {
    /// An empty, clean index pinned to `schema` (the version the owner's
    /// constraints were just compiled against).
    pub fn new(schema: u64) -> Self {
        AnchorIndex {
            seen_schema: schema,
            ..AnchorIndex::default()
        }
    }

    /// Marks the tables stale (owner set changed: subscribe/unsubscribe,
    /// plan swap, ...).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// True if a rebuild is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Schema-version gate, one integer compare on the steady-state path.
    /// Returns `true` — exactly once per version bump — when the graph has
    /// interned new type names since the last call; the caller must then
    /// refresh its compiled constraints before the next rebuild. The tables
    /// are marked dirty automatically.
    pub fn schema_changed(&mut self, schema: u64) -> bool {
        if self.seen_schema == schema {
            return false;
        }
        self.seen_schema = schema;
        self.dirty = true;
        true
    }

    /// Clears the tables and the dirty flag; follow with [`Self::add`] for
    /// every anchor.
    pub fn begin_rebuild(&mut self) {
        self.by_type.clear();
        self.any_type.clear();
        self.dirty = false;
    }

    /// Files one anchor under the outcome of its owner's
    /// `edge_type_filter`: `Err(())` = type unseen by the graph (nothing can
    /// match yet, dropped), `Ok(Some(t))` = dispatched on type `t`,
    /// `Ok(None)` = unconstrained (probed for every edge).
    pub fn add(&mut self, filter: Result<Option<TypeId>, ()>, owner: K, anchor: QueryEdgeId) {
        match filter {
            Err(()) => {}
            Ok(Some(t)) => self.by_type.entry(t).or_default().push((owner, anchor)),
            Ok(None) => self.any_type.push((owner, anchor)),
        }
    }

    /// The anchors a data edge of type `etype` dispatches to: the typed
    /// bucket followed by the unconstrained anchors, in the recycled scratch
    /// buffer. Return it through [`Self::give_back`] after the event.
    pub fn take_for_type(&mut self, etype: TypeId) -> Vec<(K, QueryEdgeId)> {
        let mut anchors = std::mem::take(&mut self.scratch);
        anchors.clear();
        if let Some(typed) = self.by_type.get(&etype) {
            anchors.extend_from_slice(typed);
        }
        anchors.extend_from_slice(&self.any_type);
        anchors
    }

    /// Returns the scratch buffer taken by [`Self::take_for_type`].
    pub fn give_back(&mut self, scratch: Vec<(K, QueryEdgeId)>) {
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_typed_and_any_anchors() {
        let mut idx: AnchorIndex<u32> = AnchorIndex::new(1);
        idx.begin_rebuild();
        idx.add(Ok(Some(TypeId(7))), 0, QueryEdgeId(0));
        idx.add(Ok(None), 1, QueryEdgeId(1));
        idx.add(Err(()), 2, QueryEdgeId(2)); // unseen type: dropped

        let hits = idx.take_for_type(TypeId(7));
        assert_eq!(hits, vec![(0, QueryEdgeId(0)), (1, QueryEdgeId(1))]);
        idx.give_back(hits);

        let misses = idx.take_for_type(TypeId(9));
        assert_eq!(misses, vec![(1, QueryEdgeId(1))]);
        idx.give_back(misses);
    }

    #[test]
    fn schema_gate_fires_once_per_version() {
        let mut idx: AnchorIndex<u32> = AnchorIndex::new(1);
        assert!(!idx.schema_changed(1));
        assert!(!idx.is_dirty());
        assert!(idx.schema_changed(2));
        assert!(idx.is_dirty());
        assert!(!idx.schema_changed(2));
        assert!(idx.is_dirty()); // stays dirty until rebuilt
        idx.begin_rebuild();
        assert!(!idx.is_dirty());
    }

    #[test]
    fn mark_dirty_survives_until_rebuild() {
        let mut idx: AnchorIndex<u8> = AnchorIndex::default();
        idx.mark_dirty();
        assert!(idx.is_dirty());
        idx.begin_rebuild();
        assert!(!idx.is_dirty());
    }
}
