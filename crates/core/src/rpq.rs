//! Incremental windowed-RPQ evaluation on the product graph.
//!
//! The second query class behind the engine (see `streamworks_query::rpq`
//! for the compilation pipeline): a [`RpqMatcher`] evaluates one regular
//! path query incrementally in the style of S-Graffito, on the *product
//! graph* whose nodes are `(graph vertex, DFA state)` pairs.
//!
//! For every source vertex that can start a path, the matcher maintains a
//! **spanning tree** rooted at `(source, start state)`. A tree node `(v, s)`
//! stores the best *window timestamp* of any path from the root that reaches
//! `v` reading a label string driving the DFA into `s`: the maximum over
//! such paths of the path's oldest edge. A node is live while that timestamp
//! is inside the query window — and because the stored value is the max over
//! path bottlenecks, a node expires exactly when its *last* supporting path
//! leaves the window, so removal is sound without recounting alternatives.
//!
//! Per inserted edge `(u, l, v)` the matcher relaxes: every live `(u, s)`
//! with a DFA transition `s --l--> s'` proposes `min(ts(u,s), ts(edge))` for
//! `(v, s')`; strict improvements update the node (recording the parent
//! product node and the realising edge as the witness pointer) and propagate
//! breadth-first through the *live graph adjacency*, which transparently
//! handles out-of-order arrival: an old edge splicing two existing subtrees
//! re-relaxes everything downstream. Strict improvement bounds the work and
//! — because a node's timestamp can only rise, and a child's stored
//! timestamp never exceeds its witness parent's — keeps witness chains
//! acyclic and parents alive at least as long as their children.
//!
//! A match `(source, target)` is **emitted when the pair enters the live
//! result set**: the first accepting product node at `target` is created
//! (or re-created after expiry). Refinements of an already-live pair do not
//! re-emit. Expiry is scheduled through a min-heap keyed by node timestamp
//! with lazy stale-entry deletion — the discipline of
//! `crate::match_store::SharedJoinStore` — and drained to the current
//! horizon before every event and on every prune, so windowed semantics are
//! exact and tree state reads 0 after a full-window drain.

use crate::metrics::QueryMetrics;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use streamworks_graph::hash::FxHashMap;
use streamworks_graph::{
    Direction, Duration, DynamicGraph, Edge, EdgeId, Timestamp, TypeId, VertexId,
};
use streamworks_query::{RpqDfa, RpqQuery};

/// One emitted path match: the pair that just entered the live result set,
/// plus the witness path (tree branch) that realised it.
#[derive(Debug, Clone)]
pub(crate) struct RpqPathMatch {
    /// Path start vertex (the tree root).
    pub source: VertexId,
    /// Path end vertex (where an accepting state was reached).
    pub target: VertexId,
    /// Witness edges in path order, `source` to `target`.
    pub edges: Vec<EdgeId>,
}

/// A product-graph tree node: best window timestamp and witness pointer.
#[derive(Debug, Clone, Copy)]
struct NodeInfo {
    /// Max over supporting paths of the path's oldest edge timestamp; the
    /// root holds `Timestamp(i64::MAX)` (a zero-hop path never ages out).
    ts: Timestamp,
    /// `(parent vertex, parent state, realising edge)`; `None` at the root.
    parent: Option<(VertexId, u32, EdgeId)>,
}

/// One spanning tree, rooted at `(root, start state)`.
#[derive(Debug, Default)]
struct Tree {
    /// Product nodes keyed by `(vertex, DFA state)`.
    nodes: FxHashMap<(VertexId, u32), NodeInfo>,
    /// Number of states stored per vertex (drives the containment index).
    states_at: FxHashMap<VertexId, u32>,
    /// Number of *accepting* states stored per vertex; the `0 -> 1`
    /// transition is the emission edge of the live result set.
    accepting_at: FxHashMap<VertexId, u32>,
}

/// Incremental matcher for one windowed regular path query.
#[derive(Debug)]
pub(crate) struct RpqMatcher {
    rpq: RpqQuery,
    dfa: RpqDfa,
    /// Spanning trees by root vertex, created lazily when an edge matching a
    /// start transition leaves the root, dropped when their last non-root
    /// node expires.
    trees: FxHashMap<VertexId, Tree>,
    /// Vertex -> roots of the trees holding at least one product node there
    /// (the index that finds the trees an incoming edge can extend).
    containing: FxHashMap<VertexId, Vec<VertexId>>,
    /// Min-heap expiry schedule over `(ts, root, vertex, state)`; entries
    /// whose `ts` no longer matches the node are stale and skipped (lazy
    /// deletion — refinements push a new entry instead of rescheduling).
    expiry: BinaryHeap<Reverse<(Timestamp, VertexId, VertexId, u32)>>,
    /// DFA symbol per graph edge type, refreshed on schema-version bumps.
    symbol_of_type: FxHashMap<TypeId, u32>,
    /// Graph edge type per DFA symbol (`None` until the graph interns the
    /// label), same refresh discipline.
    type_of_symbol: Vec<Option<TypeId>>,
    seen_schema: Option<u64>,
    metrics: QueryMetrics,
    /// Live non-root product nodes across all trees.
    nodes_live: u64,
    /// BFS scratch queue, recycled across events.
    queue: VecDeque<(VertexId, u32)>,
}

impl RpqMatcher {
    /// Creates a matcher, compiling the query's pattern to its minimized DFA.
    pub fn new(rpq: RpqQuery, graph: &DynamicGraph) -> Self {
        let dfa = rpq.compile();
        let mut matcher = RpqMatcher {
            dfa,
            trees: FxHashMap::default(),
            containing: FxHashMap::default(),
            expiry: BinaryHeap::new(),
            symbol_of_type: FxHashMap::default(),
            type_of_symbol: Vec::new(),
            seen_schema: None,
            metrics: QueryMetrics::default(),
            nodes_live: 0,
            queue: VecDeque::new(),
            rpq,
        };
        matcher.refresh_symbols(graph);
        matcher
    }

    /// The query this matcher executes.
    pub fn query(&self) -> &RpqQuery {
        &self.rpq
    }

    /// The query window `tW`.
    pub fn window(&self) -> Duration {
        self.rpq.window()
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> QueryMetrics {
        let mut m = self.metrics;
        m.rpq_tree_nodes_live = self.nodes_live;
        // Spanning-tree nodes are this query class's partial matches; mirror
        // them into the shared gauge so dashboards read both kinds alike.
        m.partial_matches_live = self.nodes_live;
        m
    }

    /// Resolves the DFA alphabet against the graph's interned edge types.
    /// Gated on the schema version: one integer compare per event steady
    /// state, same discipline as `crate::anchors::AnchorIndex`.
    fn refresh_symbols(&mut self, graph: &DynamicGraph) {
        let schema = graph.schema_version();
        if self.seen_schema == Some(schema) {
            return;
        }
        self.seen_schema = Some(schema);
        self.symbol_of_type.clear();
        self.type_of_symbol.clear();
        for (sym, label) in self.dfa.labels().iter().enumerate() {
            let t = graph.edge_type_id(label);
            if let Some(t) = t {
                self.symbol_of_type.insert(t, sym as u32);
            }
            self.type_of_symbol.push(t);
        }
    }

    /// Drains the expiry schedule up to `now - tW`: every product node whose
    /// last supporting path has left the window is removed, trees reduced to
    /// their root are dropped. Called before each event and on every prune,
    /// so the live counters are exact at observation points.
    fn expire_until(&mut self, now: Timestamp) {
        let cutoff = now.minus(self.window());
        while let Some(Reverse((ts, root, v, s))) = self.expiry.peek().copied() {
            if ts > cutoff {
                break;
            }
            self.expiry.pop();
            let Some(tree) = self.trees.get_mut(&root) else {
                continue; // whole tree already dropped
            };
            let stale = tree.nodes.get(&(v, s)).map(|n| n.ts != ts).unwrap_or(true);
            if stale {
                continue; // refined after this entry was scheduled
            }
            tree.nodes.remove(&(v, s));
            self.nodes_live -= 1;
            self.metrics.partial_matches_expired += 1;
            if self.dfa.is_accepting(s) {
                let count = tree
                    .accepting_at
                    .get_mut(&v)
                    .expect("accepting node was counted");
                *count -= 1;
                if *count == 0 {
                    tree.accepting_at.remove(&v);
                }
            }
            let states = tree.states_at.get_mut(&v).expect("stored node was counted");
            *states -= 1;
            if *states == 0 {
                tree.states_at.remove(&v);
                detach(&mut self.containing, v, root);
            }
            if tree.nodes.len() == 1 {
                // Only the eternal root is left: drop the tree. A later edge
                // matching a start transition recreates it lazily.
                self.trees.remove(&root);
                detach(&mut self.containing, root, root);
            }
        }
    }

    /// Processes one newly inserted data edge; emitted path matches are
    /// appended to `out` in discovery order.
    pub fn process_edge(&mut self, graph: &DynamicGraph, edge: &Edge, out: &mut Vec<RpqPathMatch>) {
        self.metrics.edges_processed += 1;
        self.refresh_symbols(graph);
        let now = graph.now();
        self.expire_until(now);
        let Some(&sym) = self.symbol_of_type.get(&edge.etype) else {
            return; // label not in the query alphabet
        };
        let cutoff = now.minus(self.window());
        if edge.timestamp <= cutoff {
            return; // arrived so late it is already outside the window
        }

        // Extend every tree that holds a product node at the edge's source.
        // The root list is snapshotted: relaxation below mutates the
        // containment index for other vertices.
        let roots: Vec<VertexId> = self.containing.get(&edge.src).cloned().unwrap_or_default();
        for root in roots {
            self.extend_tree(root, graph, edge, sym, cutoff, out);
        }

        // Lazily root a new tree when the edge can begin a path and no tree
        // is rooted at its source yet.
        if self.dfa.step(self.dfa.start(), sym).is_some() && !self.trees.contains_key(&edge.src) {
            let mut tree = Tree::default();
            tree.nodes.insert(
                (edge.src, self.dfa.start()),
                NodeInfo {
                    ts: Timestamp(i64::MAX),
                    parent: None,
                },
            );
            tree.states_at.insert(edge.src, 1);
            self.trees.insert(edge.src, tree);
            self.containing.entry(edge.src).or_default().push(edge.src);
            self.extend_tree(edge.src, graph, edge, sym, cutoff, out);
        }
    }

    /// Relaxes one tree against the new edge, then propagates improvements
    /// breadth-first through the live graph adjacency.
    fn extend_tree(
        &mut self,
        root: VertexId,
        graph: &DynamicGraph,
        edge: &Edge,
        sym: u32,
        cutoff: Timestamp,
        out: &mut Vec<RpqPathMatch>,
    ) {
        // The tree is detached from the map for the duration of the walk so
        // field-level borrows of the scheduler/index/metrics stay disjoint.
        let Some(mut tree) = self.trees.remove(&root) else {
            return;
        };
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();

        // Seed: every live (src, s) with a transition on the edge's label.
        for s in 0..self.dfa.state_count() as u32 {
            let Some(node) = tree.nodes.get(&(edge.src, s)) else {
                continue;
            };
            let Some(next) = self.dfa.step(s, sym) else {
                continue;
            };
            let cand = node.ts.min(edge.timestamp);
            if cand > cutoff {
                self.update_node(
                    &mut tree,
                    root,
                    edge.dst,
                    next,
                    cand,
                    (edge.src, s, edge.id),
                    cutoff,
                    &mut queue,
                    out,
                );
            }
        }

        // Propagate through edges already in the graph: an out-of-order edge
        // that spliced into existing structure re-relaxes its downstream.
        while let Some((v, s)) = queue.pop_front() {
            let Some(&NodeInfo { ts, .. }) = tree.nodes.get(&(v, s)) else {
                continue;
            };
            for sym2 in 0..self.type_of_symbol.len() as u32 {
                let Some(next) = self.dfa.step(s, sym2) else {
                    continue;
                };
                let Some(etype) = self.type_of_symbol[sym2 as usize] else {
                    continue;
                };
                // Collected first: update_node needs the tree mutably.
                let hops: Vec<(VertexId, Timestamp, EdgeId)> = graph
                    .incident_edges(v, Direction::Out, etype)
                    .map(|e| (e.dst, e.timestamp, e.id))
                    .collect();
                for (dst, ets, eid) in hops {
                    let cand = ts.min(ets);
                    if cand > cutoff {
                        self.update_node(
                            &mut tree,
                            root,
                            dst,
                            next,
                            cand,
                            (v, s, eid),
                            cutoff,
                            &mut queue,
                            out,
                        );
                    }
                }
            }
        }

        self.queue = queue;
        self.trees.insert(root, tree);
    }

    /// Offers `cand` as the window timestamp of product node `(v, s)`.
    /// Creations (including re-creations after expiry) of accepting nodes
    /// emit when the `(root, v)` pair enters the live result set; strict
    /// refinements update the witness pointer silently; everything else is a
    /// no-op.
    #[allow(clippy::too_many_arguments)]
    fn update_node(
        &mut self,
        tree: &mut Tree,
        root: VertexId,
        v: VertexId,
        s: u32,
        cand: Timestamp,
        parent: (VertexId, u32, EdgeId),
        _cutoff: Timestamp,
        queue: &mut VecDeque<(VertexId, u32)>,
        out: &mut Vec<RpqPathMatch>,
    ) {
        match tree.nodes.get_mut(&(v, s)) {
            Some(node) if node.ts >= cand => return, // no improvement
            Some(node) => {
                node.ts = cand;
                node.parent = Some(parent);
            }
            None => {
                tree.nodes.insert(
                    (v, s),
                    NodeInfo {
                        ts: cand,
                        parent: Some(parent),
                    },
                );
                self.nodes_live += 1;
                self.metrics.partial_matches_inserted += 1;
                let states = tree.states_at.entry(v).or_insert(0);
                *states += 1;
                if *states == 1 {
                    self.containing.entry(v).or_default().push(root);
                }
                if self.dfa.is_accepting(s) {
                    let acc = tree.accepting_at.entry(v).or_insert(0);
                    *acc += 1;
                    if *acc == 1 {
                        // The (root, v) pair just entered the live result
                        // set: emit with this branch as the witness.
                        out.push(witness(tree, root, v, s));
                        self.metrics.rpq_accepts += 1;
                        self.metrics.complete_matches += 1;
                    }
                }
            }
        }
        self.metrics.rpq_expansions += 1;
        self.expiry.push(Reverse((cand, root, v, s)));
        queue.push_back((v, s));
    }

    /// Removes every product node whose window timestamp has left the
    /// window as of `now` (the engine's prune entry point).
    pub fn prune(&mut self, now: Timestamp) {
        self.expire_until(now);
    }
}

/// Removes `root` from the containment list of `v`.
fn detach(containing: &mut FxHashMap<VertexId, Vec<VertexId>>, v: VertexId, root: VertexId) {
    if let Some(roots) = containing.get_mut(&v) {
        if let Some(pos) = roots.iter().position(|&r| r == root) {
            roots.swap_remove(pos);
        }
        if roots.is_empty() {
            containing.remove(&v);
        }
    }
}

/// Builds the witness path for the accepting node `(target, state)` by
/// walking parent pointers to the root. Chains are acyclic and every parent
/// outlives its children (see the module docs), so the walk terminates.
fn witness(tree: &Tree, root: VertexId, target: VertexId, state: u32) -> RpqPathMatch {
    let mut edges = Vec::new();
    let mut cursor = (target, state);
    while let Some(&NodeInfo { parent, .. }) = tree.nodes.get(&cursor) {
        let Some((pv, ps, eid)) = parent else {
            break; // reached the root
        };
        edges.push(eid);
        cursor = (pv, ps);
    }
    edges.reverse();
    RpqPathMatch {
        source: root,
        target,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamworks_graph::EdgeEvent;
    use streamworks_query::parse_rpq;

    fn graph() -> DynamicGraph {
        let mut g = DynamicGraph::unbounded();
        g.set_retention(Some(Duration::from_secs(1_000_000)));
        g
    }

    fn feed(
        g: &mut DynamicGraph,
        m: &mut RpqMatcher,
        src: &str,
        dst: &str,
        label: &str,
        at: i64,
    ) -> Vec<RpqPathMatch> {
        let ev = EdgeEvent::new(src, "V", dst, "V", label, Timestamp::from_secs(at));
        let result = g.ingest(&ev);
        let edge = g.edge(result.edge).expect("edge is live").clone();
        let mut out = Vec::new();
        m.process_edge(g, &edge, &mut out);
        out
    }

    fn matcher(g: &DynamicGraph, text: &str) -> RpqMatcher {
        RpqMatcher::new(parse_rpq(text).unwrap(), g)
    }

    fn key(g: &DynamicGraph, v: VertexId) -> String {
        g.vertex_key(v).unwrap().to_owned()
    }

    #[test]
    fn two_hop_path_emits_once() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 1h PATH a b");
        assert!(feed(&mut g, &mut m, "u", "x", "a", 10).is_empty());
        let matches = feed(&mut g, &mut m, "x", "v", "b", 20);
        assert_eq!(matches.len(), 1);
        assert_eq!(key(&g, matches[0].source), "u");
        assert_eq!(key(&g, matches[0].target), "v");
        assert_eq!(matches[0].edges.len(), 2);
        // A second b-edge to a different vertex emits a second pair.
        let more = feed(&mut g, &mut m, "x", "w", "b", 21);
        assert_eq!(more.len(), 1);
        assert_eq!(key(&g, more[0].target), "w");
    }

    #[test]
    fn out_of_order_arrival_still_matches() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 1h PATH a b");
        // The second hop arrives first.
        assert!(feed(&mut g, &mut m, "x", "v", "b", 20).is_empty());
        let matches = feed(&mut g, &mut m, "u", "x", "a", 10);
        assert_eq!(matches.len(), 1);
        assert_eq!(key(&g, matches[0].source), "u");
        assert_eq!(key(&g, matches[0].target), "v");
    }

    #[test]
    fn kleene_star_closes_over_cycles_without_diverging() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 1h PATH a+");
        feed(&mut g, &mut m, "u", "v", "a", 1);
        feed(&mut g, &mut m, "v", "u", "a", 2); // cycle u -> v -> u
        let before = m.metrics().rpq_expansions;
        feed(&mut g, &mut m, "v", "w", "a", 3);
        assert!(
            m.metrics().rpq_expansions - before < 100,
            "relaxation diverged"
        );
        // Live pairs: (u,v) (u,u) (u,w) (v,u) (v,v) (v,w).
        let live: u64 = m.trees.values().map(|t| t.accepting_at.len() as u64).sum();
        assert_eq!(live, 6);
    }

    #[test]
    fn expiry_drains_all_tree_state() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 30s PATH a b");
        feed(&mut g, &mut m, "u", "x", "a", 10);
        feed(&mut g, &mut m, "x", "v", "b", 20);
        assert!(m.metrics().rpq_tree_nodes_live > 0);
        // Advance far past the window.
        g.advance_time(Timestamp::from_secs(1000));
        m.prune(g.now());
        assert_eq!(m.metrics().rpq_tree_nodes_live, 0);
        assert!(m.trees.is_empty());
        assert!(m.containing.is_empty());
    }

    #[test]
    fn pair_reentry_after_expiry_reemits() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 30s PATH a");
        assert_eq!(feed(&mut g, &mut m, "u", "v", "a", 0).len(), 1);
        // Refinement while still live: no re-emission.
        assert_eq!(feed(&mut g, &mut m, "u", "v", "a", 10).len(), 0);
        // Expire (now=100 -> cutoff=70), then a fresh edge re-enters the pair.
        assert_eq!(feed(&mut g, &mut m, "u", "v", "a", 100).len(), 1);
    }

    #[test]
    fn late_edge_outside_window_is_ignored() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 30s PATH a");
        feed(&mut g, &mut m, "x", "y", "a", 100);
        // ts=50 against now=100, window 30: dead on arrival.
        assert_eq!(feed(&mut g, &mut m, "u", "v", "a", 50).len(), 0);
        assert_eq!(m.metrics().edges_processed, 2);
    }

    #[test]
    fn witness_bottleneck_is_exact_under_refinement() {
        let mut g = graph();
        let mut m = matcher(&g, "RPQ p WINDOW 100s PATH a b");
        feed(&mut g, &mut m, "u", "x", "a", 10);
        feed(&mut g, &mut m, "x", "v", "b", 20); // pair (u,v) live, bottleneck 10
                                                 // A fresher a-edge refines (x, s1) from 10 to 90.
        feed(&mut g, &mut m, "u", "x", "a", 90);
        // Expire the old bottleneck: now=130, cutoff=30. Path via ts 90/20...
        // the b-edge (20) is the bottleneck now, so the pair dies with it.
        g.advance_time(Timestamp::from_secs(130));
        m.prune(g.now());
        let live: u64 = m.trees.values().map(|t| t.accepting_at.len() as u64).sum();
        assert_eq!(live, 0);
        // But a fresh b-edge revives it through the refined (x, s1)=90.
        let matches = feed(&mut g, &mut m, "x", "v", "b", 131);
        assert_eq!(matches.len(), 1);
    }
}
